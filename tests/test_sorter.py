"""Tests for the pivot tree and the budget-bounded progressive sorter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import Predicate
from repro.progressive.pivot_tree import NodeState, PivotNode, PivotTree
from repro.progressive.sorter import ProgressiveSorter

from tests.conftest import brute_force


class TestPivotNode:
    def test_trivial_ranges_are_sorted(self):
        assert PivotNode(0, 0, 0, 10).is_sorted
        assert PivotNode(0, 1, 0, 10).is_sorted
        assert not PivotNode(0, 2, 0, 10).is_sorted

    def test_pivot_is_midpoint(self):
        node = PivotNode(0, 10, 0, 100)
        assert node.pivot == pytest.approx(50)

    def test_children_listing(self):
        node = PivotNode(0, 10, 0, 100)
        assert node.children() == []
        node.left = PivotNode(0, 5, 0, 50, depth=1, parent=node)
        assert len(node.children()) == 1


class TestPivotTree:
    def test_mark_sorted_propagates_and_prunes(self):
        root = PivotNode(0, 10, 0, 100)
        tree = PivotTree(root)
        left = PivotNode(0, 5, 0, 50, depth=1, parent=root)
        right = PivotNode(5, 10, 50, 100, depth=1, parent=root)
        root.left, root.right = left, right
        root.state = NodeState.PARTITIONED
        tree.register_child(left)
        tree.register_child(right)
        tree.mark_sorted(left)
        assert not tree.is_sorted
        tree.mark_sorted(right)
        assert tree.is_sorted
        assert root.left is None and root.right is None

    def test_lookup_routes_through_pivot(self):
        root = PivotNode(0, 10, 0, 100)
        tree = PivotTree(root)
        left = PivotNode(0, 5, 0, 50, depth=1, parent=root)
        right = PivotNode(5, 10, 50, 100, depth=1, parent=root)
        root.left, root.right = left, right
        root.state = NodeState.PARTITIONED
        root.pivot = 50
        assert tree.lookup_nodes(0, 10) == [left]
        assert tree.lookup_nodes(60, 70) == [right]
        assert tree.lookup_nodes(40, 60) == [left, right]

    def test_height_tracking(self):
        root = PivotNode(0, 100, 0, 100)
        tree = PivotTree(root)
        child = PivotNode(0, 50, 0, 50, depth=1, parent=root)
        tree.register_child(child)
        assert tree.height == 2
        assert tree.n_nodes == 2


class TestProgressiveSorter:
    def make_sorter(self, data, threshold=8):
        array = np.array(data, dtype=np.int64)
        return array, ProgressiveSorter(array, sort_threshold=threshold)

    def test_small_range_sorted_in_one_call(self):
        array, sorter = self.make_sorter([5, 3, 8, 1], threshold=8)
        processed = sorter.refine(100)
        assert processed == 4
        assert sorter.is_sorted
        assert array.tolist() == [1, 3, 5, 8]

    def test_refine_respects_budget(self):
        rng = np.random.default_rng(0)
        array = rng.integers(0, 10_000, size=5_000)
        sorter = ProgressiveSorter(array, sort_threshold=64)
        processed = sorter.refine(500)
        assert processed <= 500 + 64  # at most one threshold-sized overshoot
        assert not sorter.is_sorted

    def test_eventual_convergence(self):
        rng = np.random.default_rng(1)
        array = rng.integers(0, 1_000, size=3_000)
        reference = np.sort(array.copy())
        sorter = ProgressiveSorter(array, sort_threshold=32)
        iterations = 0
        while not sorter.is_sorted:
            sorter.refine(200)
            iterations += 1
            assert iterations < 10_000, "sorter failed to converge"
        assert array.tolist() == reference.tolist()

    def test_queries_exact_during_refinement(self):
        rng = np.random.default_rng(2)
        original = rng.integers(0, 5_000, size=4_000)
        array = original.copy()
        sorter = ProgressiveSorter(array, sort_threshold=64)
        for _ in range(30):
            sorter.refine(150)
            low = int(rng.integers(0, 4_500))
            predicate = Predicate(low, low + 500)
            result = sorter.query(predicate)
            expected = brute_force(original, predicate)
            assert result.count == expected.count
            assert result.value_sum == expected.value_sum

    def test_query_on_sorted_leaf_uses_binary_search(self):
        array, sorter = self.make_sorter(list(range(100)), threshold=128)
        sorter.refine(1_000)
        result = sorter.query(Predicate(10, 19))
        assert result.count == 10
        assert result.value_sum == sum(range(10, 20))

    def test_all_equal_values_converge(self):
        array = np.full(2_000, 7, dtype=np.int64)
        sorter = ProgressiveSorter(array, sort_threshold=32)
        iterations = 0
        while not sorter.is_sorted:
            sorter.refine(400)
            iterations += 1
            assert iterations < 1_000
        assert sorter.query(Predicate(7, 7)).count == 2_000

    def test_from_partitioned_continues_creation_state(self):
        rng = np.random.default_rng(3)
        original = rng.integers(0, 1_000, size=2_000)
        pivot = 500
        lows = original[original < pivot]
        highs = original[original >= pivot]
        array = np.concatenate([lows, highs])
        sorter = ProgressiveSorter.from_partitioned(
            array,
            boundary=lows.size,
            pivot=pivot,
            value_low=float(original.min()),
            value_high=float(original.max()),
            sort_threshold=64,
        )
        # Queries entirely below the pivot only touch the low side.
        assert sorter.query(Predicate(0, 499)).count == lows.size
        while not sorter.is_sorted:
            sorter.refine(500)
        assert np.all(array[:-1] <= array[1:])

    def test_prioritize_moves_relevant_work_first(self):
        rng = np.random.default_rng(4)
        array = rng.integers(0, 10_000, size=8_000)
        sorter = ProgressiveSorter(array, sort_threshold=64)
        sorter.refine(8_000)  # finish the root partition, creating children
        predicate = Predicate(0, 100)
        sorter.prioritize(predicate)
        front = sorter._worklist[0]
        assert front.value_low <= predicate.high and front.value_high >= predicate.low

    def test_remaining_work_decreases(self):
        rng = np.random.default_rng(5)
        array = rng.integers(0, 10_000, size=4_000)
        sorter = ProgressiveSorter(array, sort_threshold=64)
        before = sorter.remaining_work()
        sorter.refine(1_000)
        assert sorter.remaining_work() <= before

    def test_scanned_fraction_shrinks_as_sorting_progresses(self):
        rng = np.random.default_rng(6)
        array = rng.integers(0, 10_000, size=6_000)
        sorter = ProgressiveSorter(array, sort_threshold=64)
        predicate = Predicate(100, 1_100)
        initial = sorter.scanned_fraction(predicate)
        while not sorter.is_sorted:
            sorter.refine(2_000)
        final = sorter.scanned_fraction(predicate)
        assert final <= initial

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            ProgressiveSorter(np.arange(10), start=5, end=2)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(min_value=-1_000, max_value=1_000), min_size=2, max_size=400),
        st.integers(min_value=1, max_value=200),
    )
    def test_property_sorting_is_a_permutation(self, values, budget):
        array = np.array(values, dtype=np.int64)
        expected = np.sort(array.copy())
        sorter = ProgressiveSorter(array, sort_threshold=16)
        iterations = 0
        while not sorter.is_sorted:
            sorter.refine(budget)
            iterations += 1
            assert iterations < 10_000
        assert array.tolist() == expected.tolist()
