"""Differential oracle for the out-of-core substrate.

Every registry algorithm answers over a block-compressed column under a
memory budget far below the dataset size, and every answer — before
convergence, after convergence, and across mid-stream writes that cross
the delta-spill boundary — must equal both a :class:`FullScan` oracle over
the same compressed column and plain NumPy over the raw values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policy import FixedDelta
from repro.core.query import Predicate
from repro.engine.registry import ALGORITHMS, create_index
from repro.engine.session import IndexingSession
from repro.persist.compress import write_compressed_column
from repro.persist.pager import map_column_file
from repro.storage.column import Column
from repro.storage.membudget import MemoryBudget
from repro.storage.table import Table

ROWS = 6000
DOMAIN = 40_000
BLOCK_ROWS = 512


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    """One compressed column file shared by every parametrized case."""
    path = str(tmp_path_factory.mktemp("outofcore") / "v.col")
    data = np.random.default_rng(11).integers(0, DOMAIN, ROWS).astype(np.int64)
    write_compressed_column(path, data, block_rows=BLOCK_ROWS)
    return path, data


def _tiny_budget(tmp_path) -> MemoryBudget:
    # Clamped up to the 1 MiB floor — still far below what the engine
    # would like (index array + scratch + copies of a 6000-row column all
    # compete inside it), so the spill paths genuinely engage.
    return MemoryBudget(1, spill_dir=str(tmp_path))


def _predicates(seed: int, count: int = 20):
    rng = np.random.default_rng(seed)
    lows = rng.integers(0, DOMAIN - 2000, size=count)
    return [(int(low), int(low) + 2000) for low in lows.tolist()]


def _check(result, data, low, high, context):
    mask = (data >= low) & (data <= high)
    assert result.count == int(mask.sum()), context
    assert int(result.value_sum) == int(data[mask].sum(dtype=np.int64)), context


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_algorithm_matches_oracle_under_budget(algorithm, dataset, tmp_path):
    path, data = dataset
    column = Column.from_file(path, name="v", memory_budget=_tiny_budget(tmp_path))
    oracle_column = Column.from_file(
        path, name="v", memory_budget=_tiny_budget(tmp_path / "oracle")
    )
    index = create_index(algorithm, column, budget=FixedDelta(0.25))
    oracle = create_index("FS", oracle_column)

    # Pre-convergence: the construction kernels stream under the budget.
    for number, (low, high) in enumerate(_predicates(1)):
        mine = index.query(Predicate(low, high))
        theirs = oracle.query(Predicate(low, high))
        assert mine.count == theirs.count
        assert int(mine.value_sum) == int(theirs.value_sum)
        _check(mine, data, low, high, f"{algorithm} pre-convergence #{number}")

    # Drive construction; the progressive families must fully converge
    # even though the dataset never fits the budget's scratch allowance.
    for low, high in _predicates(2, count=60):
        index.query(Predicate(low, high))
        if index.converged:
            break

    for number, (low, high) in enumerate(_predicates(3)):
        _check(index.query(Predicate(low, high)), data, low, high,
               f"{algorithm} post-drive #{number}")


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_algorithm_absorbs_spilled_writes(algorithm, dataset, tmp_path):
    """Mid-stream inserts crossing the delta-spill boundary stay exact."""
    path, data = dataset
    budget = _tiny_budget(tmp_path)
    table = Table({"v": Column.from_file(path, name="v", memory_budget=budget)})
    session = IndexingSession(table)
    session.create_index("v", method=algorithm, fixed_delta=0.25)

    for low, high in _predicates(4, count=6):
        _check(session.between("v", low, high), data, low, high,
               f"{algorithm} before writes")

    # Far more rows than the in-memory delta-log allowance of the clamped
    # 1 MiB budget: the logs must seal into on-disk runs mid-stream.
    rng = np.random.default_rng(5)
    inserted = rng.integers(0, DOMAIN, size=20_000).astype(np.int64)
    session.insert({"v": inserted})
    full = np.concatenate([data, inserted])
    delta = table.column("v").delta
    assert delta is not None and delta.memory_budget is budget

    for number, (low, high) in enumerate(_predicates(6, count=12)):
        _check(session.between("v", low, high), full, low, high,
               f"{algorithm} after spilled inserts #{number}")


@pytest.mark.parametrize("algorithm", ["PQ", "STC"])
def test_deletes_after_spill_stay_exact(algorithm, dataset, tmp_path):
    path, data = dataset
    table = Table(
        {"v": Column.from_file(path, name="v", memory_budget=_tiny_budget(tmp_path))}
    )
    session = IndexingSession(table)
    session.create_index("v", method=algorithm, fixed_delta=0.25)

    inserted = np.random.default_rng(7).integers(0, DOMAIN, 15_000).astype(np.int64)
    session.insert({"v": inserted})
    full = np.concatenate([data, inserted])
    removed = session.delete("v", 1000, 3000)
    full = full[(full < 1000) | (full > 3000)]
    assert removed == ROWS + 15_000 - full.size

    for low, high in _predicates(8, count=12):
        _check(session.between("v", low, high), full, low, high,
               f"{algorithm} after delete")


def test_session_budget_attaches_to_columns(dataset, tmp_path):
    """IndexingSession(memory_budget=...) covers budget-less columns."""
    path, data = dataset
    budget = _tiny_budget(tmp_path)
    session = IndexingSession(
        Table({"v": Column.from_file(path, name="v")}), memory_budget=budget
    )
    assert session.table.column("v").memory_budget is budget
    session.create_index("v", method="PQ", fixed_delta=0.5)
    for low, high in _predicates(9, count=8):
        _check(session.between("v", low, high), data, low, high, "session budget")
    status = session.memory_status()
    assert status is not None and status["total_bytes"] == budget.total_bytes
