"""Equivalence tests for the construction-kernel layer.

The three partition kernels (branched single-pass loop, predicated mask,
in-place two-sided swaps) must agree on the partition boundary and produce
valid partitions of the same multiset on adversarial inputs: all-equal
values, already partitioned data, reverse-sorted data, empty and
single-element pieces, and both integer and floating point dtypes.
``choose_kernel`` must honor the decision boundaries, and the grouped
argsort+bincount scatter must be bucket-for-bucket identical (including
within-bucket order) to the masked reference scatter.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.cracking.kernels import (
    BRANCHED_PIECE_LIMIT,
    TWO_SIDED_PIECE_LIMIT,
    choose_kernel,
    partition_branched,
    partition_predicated,
    partition_two_sided,
)
from repro.progressive.blocks import BucketSet

KERNELS = {
    "branched": partition_branched,
    "predicated": partition_predicated,
    "two_sided": partition_two_sided,
}

ADVERSARIAL_CASES = {
    "all_equal_below": (np.full(50, 3, dtype=np.int64), 10),
    "all_equal_above": (np.full(50, 30, dtype=np.int64), 10),
    "all_equal_at_pivot": (np.full(50, 10, dtype=np.int64), 10),
    "already_partitioned": (np.concatenate([np.arange(25), np.arange(100, 125)]).astype(np.int64), 50),
    "reverse_sorted": (np.arange(60, 0, -1).astype(np.int64), 30),
    "empty": (np.empty(0, dtype=np.int64), 5),
    "single_below": (np.array([1], dtype=np.int64), 5),
    "single_above": (np.array([9], dtype=np.int64), 5),
    "random_ints": (np.random.default_rng(0).integers(0, 100, 200), 50),
    "random_floats": (np.random.default_rng(1).uniform(0, 100, 200), 50.5),
    "duplicates_around_pivot": (np.array([5, 5, 5, 4, 6, 5, 4, 6], dtype=np.int64), 5),
    "pivot_outside_range": (np.arange(40, dtype=np.int64), 1_000),
    "negative_values": (np.array([-5, 3, -2, 0, 7, -9], dtype=np.int64), 0),
}


@pytest.mark.parametrize("case", sorted(ADVERSARIAL_CASES))
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_partition_property_holds(kernel_name, case):
    values, pivot = ADVERSARIAL_CASES[case]
    working = values.copy()
    boundary = KERNELS[kernel_name](working, pivot)
    assert boundary == int(np.sum(values < pivot))
    assert np.all(working[:boundary] < pivot)
    assert np.all(working[boundary:] >= pivot)
    # The partition is a permutation: same multiset before and after.
    assert Counter(working.tolist()) == Counter(values.tolist())


@pytest.mark.parametrize("case", sorted(ADVERSARIAL_CASES))
def test_kernels_agree_on_boundary(case):
    values, pivot = ADVERSARIAL_CASES[case]
    boundaries = set()
    partitions = []
    for kernel in KERNELS.values():
        working = values.copy()
        boundaries.add(kernel(working, pivot))
        partitions.append(working)
    assert len(boundaries) == 1
    # All kernels produce the same low-side and high-side multisets.
    boundary = boundaries.pop()
    reference_low = Counter(partitions[0][:boundary].tolist())
    reference_high = Counter(partitions[0][boundary:].tolist())
    for partition in partitions[1:]:
        assert Counter(partition[:boundary].tolist()) == reference_low
        assert Counter(partition[boundary:].tolist()) == reference_high


class TestChooseKernel:
    def test_small_piece_mid_selectivity_is_branched(self):
        assert choose_kernel(BRANCHED_PIECE_LIMIT, 0.5) is partition_branched
        assert choose_kernel(1, 0.1) is partition_branched

    def test_small_piece_extreme_selectivity_is_predicated(self):
        assert choose_kernel(BRANCHED_PIECE_LIMIT, 0.01) is partition_predicated
        assert choose_kernel(BRANCHED_PIECE_LIMIT, 0.99) is partition_predicated

    def test_limit_boundary_is_honored(self):
        # One past the limit must no longer use the branched reference loop.
        assert choose_kernel(BRANCHED_PIECE_LIMIT + 1, 0.5) is partition_predicated
        assert choose_kernel(BRANCHED_PIECE_LIMIT, 0.5) is partition_branched

    def test_huge_pieces_use_two_sided(self):
        threshold = TWO_SIDED_PIECE_LIMIT
        assert threshold == BRANCHED_PIECE_LIMIT * 1024
        assert choose_kernel(threshold, 0.5) is partition_predicated
        assert choose_kernel(threshold + 1, 0.5) is partition_two_sided

    def test_large_piece_extreme_selectivity_is_two_sided(self):
        # Few misplaced elements: the in-place swap kernel barely touches the
        # piece while the predicated kernel would copy all of it.
        assert choose_kernel(10_000, 0.01) is partition_two_sided
        assert choose_kernel(10_000, 0.99) is partition_two_sided
        assert choose_kernel(10_000, 0.5) is partition_predicated

    def test_chosen_kernels_all_agree(self):
        rng = np.random.default_rng(2)
        for piece_size in (8, BRANCHED_PIECE_LIMIT, 500, BRANCHED_PIECE_LIMIT * 1024 + 1):
            values = rng.integers(0, 1_000, min(piece_size, 2_000))
            pivot = 500
            kernel = choose_kernel(piece_size, 0.5)
            working = values.copy()
            boundary = kernel(working, pivot)
            assert boundary == int(np.sum(values < pivot))
            assert np.all(working[:boundary] < pivot)
            assert np.all(working[boundary:] >= pivot)


class TestGroupedScatterEquivalence:
    """``BucketSet.scatter`` vs. the masked reference ``scatter_masked``."""

    def assert_bucket_sets_identical(self, left: BucketSet, right: BucketSet):
        assert left.n_buckets == right.n_buckets
        for bucket_id in range(left.n_buckets):
            assert np.array_equal(
                left[bucket_id].to_array(), right[bucket_id].to_array()
            ), f"bucket {bucket_id} differs"

    @pytest.mark.parametrize("dtype", [np.int64, np.float64])
    def test_matches_masked_reference(self, dtype, rng):
        values = rng.integers(0, 10_000, size=5_000).astype(dtype)
        bucket_ids = rng.integers(0, 16, size=5_000)
        grouped = BucketSet(16, block_size=128, dtype=dtype)
        reference = BucketSet(16, block_size=128, dtype=dtype)
        # Split into uneven chunks: tail blocks must keep filling correctly.
        for start, stop in ((0, 700), (700, 701), (701, 3_000), (3_000, 5_000)):
            grouped.scatter(values[start:stop], bucket_ids[start:stop])
            reference.scatter_masked(values[start:stop], bucket_ids[start:stop])
        self.assert_bucket_sets_identical(grouped, reference)

    def test_preserves_within_bucket_order(self, rng):
        buckets = BucketSet(4, block_size=8)
        values = np.arange(100)
        buckets.scatter(values, values % 4)
        for bucket_id in range(4):
            expected = values[values % 4 == bucket_id]
            assert np.array_equal(buckets[bucket_id].to_array(), expected)

    def test_empty_and_single_element_chunks(self):
        buckets = BucketSet(4, block_size=8)
        buckets.scatter(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        buckets.scatter(np.array([42]), np.array([3]))
        assert len(buckets) == 1
        assert np.array_equal(buckets[3].to_array(), [42])

    def test_skewed_single_bucket_chunk(self, rng):
        buckets = BucketSet(8, block_size=64)
        values = rng.integers(0, 100, size=1_000)
        buckets.scatter(values, np.full(1_000, 5))
        assert np.array_equal(buckets[5].to_array(), values)
        assert all(len(buckets[i]) == 0 for i in range(8) if i != 5)

    def test_fanout_beyond_uint16_is_not_truncated(self):
        # The id-narrowing fast path must not wrap ids when the fan-out
        # exceeds the narrow dtype's range.
        buckets = BucketSet(70_000, block_size=64)
        buckets.scatter(np.array([1, 2, 3]), np.array([0, 65_536, 69_999]))
        assert buckets[0].to_array().tolist() == [1]
        assert buckets[65_536].to_array().tolist() == [2]
        assert buckets[69_999].to_array().tolist() == [3]
