"""Equivalence tests for the cracking partition kernels.

The three kernels (branched reference loop, predicated mask, two-sided
writes) must agree on the partition boundary and produce valid partitions of
the same multiset on adversarial inputs: all-equal values, already
partitioned data, reverse-sorted data, empty and single-element pieces, and
both integer and floating point dtypes.  ``choose_kernel`` must honor the
``BRANCHED_PIECE_LIMIT`` decision boundary.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.cracking.kernels import (
    BRANCHED_PIECE_LIMIT,
    choose_kernel,
    partition_branched,
    partition_predicated,
    partition_two_sided,
)

KERNELS = {
    "branched": partition_branched,
    "predicated": partition_predicated,
    "two_sided": partition_two_sided,
}

ADVERSARIAL_CASES = {
    "all_equal_below": (np.full(50, 3, dtype=np.int64), 10),
    "all_equal_above": (np.full(50, 30, dtype=np.int64), 10),
    "all_equal_at_pivot": (np.full(50, 10, dtype=np.int64), 10),
    "already_partitioned": (np.concatenate([np.arange(25), np.arange(100, 125)]).astype(np.int64), 50),
    "reverse_sorted": (np.arange(60, 0, -1).astype(np.int64), 30),
    "empty": (np.empty(0, dtype=np.int64), 5),
    "single_below": (np.array([1], dtype=np.int64), 5),
    "single_above": (np.array([9], dtype=np.int64), 5),
    "random_ints": (np.random.default_rng(0).integers(0, 100, 200), 50),
    "random_floats": (np.random.default_rng(1).uniform(0, 100, 200), 50.5),
    "duplicates_around_pivot": (np.array([5, 5, 5, 4, 6, 5, 4, 6], dtype=np.int64), 5),
    "pivot_outside_range": (np.arange(40, dtype=np.int64), 1_000),
    "negative_values": (np.array([-5, 3, -2, 0, 7, -9], dtype=np.int64), 0),
}


@pytest.mark.parametrize("case", sorted(ADVERSARIAL_CASES))
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_partition_property_holds(kernel_name, case):
    values, pivot = ADVERSARIAL_CASES[case]
    working = values.copy()
    boundary = KERNELS[kernel_name](working, pivot)
    assert boundary == int(np.sum(values < pivot))
    assert np.all(working[:boundary] < pivot)
    assert np.all(working[boundary:] >= pivot)
    # The partition is a permutation: same multiset before and after.
    assert Counter(working.tolist()) == Counter(values.tolist())


@pytest.mark.parametrize("case", sorted(ADVERSARIAL_CASES))
def test_kernels_agree_on_boundary(case):
    values, pivot = ADVERSARIAL_CASES[case]
    boundaries = set()
    partitions = []
    for kernel in KERNELS.values():
        working = values.copy()
        boundaries.add(kernel(working, pivot))
        partitions.append(working)
    assert len(boundaries) == 1
    # All kernels produce the same low-side and high-side multisets.
    boundary = boundaries.pop()
    reference_low = Counter(partitions[0][:boundary].tolist())
    reference_high = Counter(partitions[0][boundary:].tolist())
    for partition in partitions[1:]:
        assert Counter(partition[:boundary].tolist()) == reference_low
        assert Counter(partition[boundary:].tolist()) == reference_high


class TestChooseKernel:
    def test_small_piece_mid_selectivity_is_branched(self):
        assert choose_kernel(BRANCHED_PIECE_LIMIT, 0.5) is partition_branched
        assert choose_kernel(1, 0.1) is partition_branched

    def test_small_piece_extreme_selectivity_is_predicated(self):
        assert choose_kernel(BRANCHED_PIECE_LIMIT, 0.01) is partition_predicated
        assert choose_kernel(BRANCHED_PIECE_LIMIT, 0.99) is partition_predicated

    def test_limit_boundary_is_honored(self):
        # One past the limit must no longer use the branched reference loop.
        assert choose_kernel(BRANCHED_PIECE_LIMIT + 1, 0.5) is partition_predicated
        assert choose_kernel(BRANCHED_PIECE_LIMIT, 0.5) is partition_branched

    def test_huge_pieces_use_two_sided(self):
        threshold = BRANCHED_PIECE_LIMIT * 1024
        assert choose_kernel(threshold, 0.5) is partition_predicated
        assert choose_kernel(threshold + 1, 0.5) is partition_two_sided

    def test_chosen_kernels_all_agree(self):
        rng = np.random.default_rng(2)
        for piece_size in (8, BRANCHED_PIECE_LIMIT, 500, BRANCHED_PIECE_LIMIT * 1024 + 1):
            values = rng.integers(0, 1_000, min(piece_size, 2_000))
            pivot = 500
            kernel = choose_kernel(piece_size, 0.5)
            working = values.copy()
            boundary = kernel(working, pivot)
            assert boundary == int(np.sum(values < pivot))
            assert np.all(working[:boundary] < pivot)
            assert np.all(working[boundary:] >= pivot)
