"""Tests for the AVL tree backing the cracker index."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cracking.avl import AVLTree


class TestAVLBasics:
    def test_empty_tree(self):
        tree = AVLTree()
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.get(1) is None
        assert tree.floor_item(1) is None
        assert tree.higher_item(1) is None
        assert tree.min_item() is None
        assert tree.max_item() is None

    def test_insert_and_get(self):
        tree = AVLTree()
        tree.insert(5, "five")
        tree.insert(3, "three")
        tree.insert(8, "eight")
        assert len(tree) == 3
        assert tree.get(3) == "three"
        assert tree.get(42, default="missing") == "missing"

    def test_insert_replaces_existing_key(self):
        tree = AVLTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert len(tree) == 1
        assert tree.get(1) == "b"

    def test_items_in_order(self):
        tree = AVLTree()
        for key in (5, 1, 9, 3, 7):
            tree.insert(key, key * 10)
        assert [key for key, _ in tree.items()] == [1, 3, 5, 7, 9]
        assert list(tree.keys()) == [1, 3, 5, 7, 9]
        assert list(tree.values()) == [10, 30, 50, 70, 90]

    def test_floor_and_higher(self):
        tree = AVLTree()
        for key in (10, 20, 30):
            tree.insert(key, key)
        assert tree.floor_item(25) == (20, 20)
        assert tree.floor_item(20) == (20, 20)
        assert tree.floor_item(5) is None
        assert tree.higher_item(20) == (30, 30)
        assert tree.higher_item(30) is None
        assert tree.higher_item(5) == (10, 10)

    def test_min_max(self):
        tree = AVLTree()
        for key in (4, 2, 8):
            tree.insert(key, str(key))
        assert tree.min_item() == (2, "2")
        assert tree.max_item() == (8, "8")

    def test_contains(self):
        tree = AVLTree()
        tree.insert(1, None)
        assert 1 in tree
        assert 2 not in tree

    def test_height_stays_logarithmic_for_sequential_inserts(self):
        tree = AVLTree()
        n = 1024
        for key in range(n):
            tree.insert(key, key)
        # A perfectly balanced tree would have height 10; AVL guarantees
        # height <= 1.44 * log2(n + 2).
        assert tree.height <= int(1.44 * np.log2(n + 2)) + 1


class TestAVLProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=300))
    def test_inorder_matches_sorted_unique(self, keys):
        tree = AVLTree()
        for key in keys:
            tree.insert(key, key)
        expected = sorted(set(keys))
        assert [key for key, _ in tree.items()] == expected
        assert len(tree) == len(expected)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200),
        st.integers(min_value=-10, max_value=1010),
    )
    def test_floor_and_higher_match_reference(self, keys, probe):
        tree = AVLTree()
        for key in keys:
            tree.insert(key, key)
        unique = sorted(set(keys))
        floor_expected = max((k for k in unique if k <= probe), default=None)
        higher_expected = min((k for k in unique if k > probe), default=None)
        floor_item = tree.floor_item(probe)
        higher_item = tree.higher_item(probe)
        assert (floor_item[0] if floor_item else None) == floor_expected
        assert (higher_item[0] if higher_item else None) == higher_expected

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=400))
    def test_balance_invariant(self, keys):
        tree = AVLTree()
        for key in keys:
            tree.insert(key, key)
        n_unique = len(set(keys))
        assert tree.height <= 1.44 * np.log2(n_unique + 2) + 1
