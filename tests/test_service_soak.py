"""Soak test: kill -9 the query service mid-traffic, recover, reconnect.

Extends the crash-injection suite (:mod:`tests.test_crash_recovery`) to the
serving layer: :mod:`tests.serve_worker` runs a real socket server with
concurrent reader traffic and drives the single writer into the durability
layer's fault points, so the ``SIGKILL`` lands while readers are blocked in
queries and the writer sits inside its WAL protocol step.  Recovery must
honour the same contract as the single-client suite — committed sentinels
present, uncommitted ones absent — and a *fresh* server over the recovered
database must serve readers again immediately.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

from repro.persist.database import Database
from repro.serve.client import ServiceClient

from serve_worker import SENTINEL_A, SENTINEL_B, SENTINEL_C

WORKER = os.path.join(os.path.dirname(__file__), "serve_worker.py")


def _run_worker(directory: str, scenario: str, socket_path: str):
    return subprocess.run(
        [sys.executable, WORKER, directory, scenario, socket_path],
        capture_output=True,
        timeout=180,
    )


@pytest.mark.slow
@pytest.mark.parametrize("scenario", ["commit-durable", "uncommitted-lost"])
def test_sigkill_mid_traffic_recovers_and_serves(tmp_path, scenario):
    directory = str(tmp_path / "db")
    socket_path = str(tmp_path / "svc.sock")
    proc = _run_worker(directory, scenario, socket_path)
    assert proc.returncode == -signal.SIGKILL, (
        f"worker exited {proc.returncode} instead of dying at the fault "
        f"point:\n{proc.stderr.decode()}"
    )

    with Database.open(directory) as db:
        # Committed history survives; the uncommitted insert does not.
        assert db.between("ra", SENTINEL_A, SENTINEL_A).count == 3
        # B is committed in both scenarios — right at the fault point under
        # commit-durable, cleanly before it under uncommitted-lost.
        assert db.between("ra", SENTINEL_B, SENTINEL_B).count == 4
        assert db.between("ra", SENTINEL_C, SENTINEL_C).count == 0

        # Clean reader reconnect: a fresh server over the recovered
        # database answers at the recovered committed versions.
        server = db.serve(address=str(tmp_path / "svc2.sock"))
        server.start()
        try:
            with ServiceClient(server.endpoint, role="reader") as reader:
                assert reader.equals("ra", SENTINEL_A)["count"] == 3
                assert reader.equals("ra", SENTINEL_C)["count"] == 0
                assert reader.status()["committed_versions"]["ra"] >= 0
            # The recovered engine also takes writes again.
            with ServiceClient(server.endpoint, role="writer") as writer:
                writer.insert([SENTINEL_A])
                writer.commit()
            with ServiceClient(server.endpoint, role="reader") as reader:
                assert reader.equals("ra", SENTINEL_A)["count"] == 4
        finally:
            server.stop()
