"""Differential property test harness: every algorithm vs. the FullScan oracle.

Every algorithm in the registry — the four progressive indexes, all five
cracking variants and both baselines — is run against a ``FullScan`` oracle
over seeded randomized workloads drawn from the synthetic distributions
(:mod:`repro.workloads.distributions`).  At *every* query the answers must be
identical; for the progressive indexes the workloads are long enough (and the
budget generous enough) to drive the index through full convergence, so the
equivalence is also asserted for the converged cascade path.

Float64 columns get the same treatment (including negative values and
fractional predicate bounds): counts must be exactly equal and sums equal up
to float-addition associativity.  This exercises the order-preserving key
codecs end to end — before them, LSD radix construction silently misordered
float fractional parts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.full_scan import FullScan
from repro.core.budget import FixedBudget
from repro.core.policy import CostModelGreedy, FixedDelta, TimeAdaptive
from repro.core.query import Predicate
from repro.engine.batch import BatchExecutor
from repro.engine.registry import ALGORITHMS, PROGRESSIVE_ALGORITHMS, create_index
from repro.storage.column import Column
from repro.workloads.distributions import skewed_data, uniform_data

#: Column size: small enough to keep the grid fast, large enough to exercise
#: multi-piece cracking and multi-level progressive refinement.
N_ELEMENTS = 6_000

#: Workload length; with ``delta = 0.5`` every progressive index converges
#: well before the workload ends.
N_QUERIES = 80

DISTRIBUTIONS = {
    "uniform": lambda rng: uniform_data(N_ELEMENTS, rng=rng),
    "skewed": lambda rng: skewed_data(N_ELEMENTS, rng=rng),
}

#: The three budget-policy flavours of the adaptive execution layer.  Each
#: is generous enough to drive every progressive index through full
#: convergence within the workload, so the differential property is also
#: asserted on the converged cascade path under every policy.
POLICIES = {
    "fixed_delta": lambda: FixedDelta(0.5),
    "time_adaptive": lambda: TimeAdaptive(scan_fraction=4.0),
    "cost_model_greedy": lambda: CostModelGreedy(scan_fraction=4.0),
}


def seeded_workload(data: np.ndarray, rng: np.random.Generator, n_queries: int = N_QUERIES):
    """Randomized mix of range and point queries over the data's domain.

    Includes exact-value point queries, absent-value point queries and
    ranges of varied widths, all drawn from the seeded generator.
    """
    low, high = int(data.min()), int(data.max())
    predicates = []
    for query_number in range(n_queries):
        kind = query_number % 4
        if kind == 0:  # point query on an existing value
            value = int(data[rng.integers(0, data.size)])
            predicates.append(Predicate(value, value))
        elif kind == 1:  # narrow range
            start = int(rng.integers(low, max(low + 1, high - 10)))
            predicates.append(Predicate(start, start + 10))
        elif kind == 2:  # wide range
            width = int((high - low) * 0.2) + 1
            start = int(rng.integers(low, max(low + 1, high - width)))
            predicates.append(Predicate(start, start + width))
        else:  # range possibly outside the domain
            start = int(rng.integers(low - 100, high + 100))
            predicates.append(Predicate(start, start + int(rng.integers(0, 50))))
    return predicates


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("distribution", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_algorithm_matches_full_scan_oracle(name, distribution, policy_name):
    rng = np.random.default_rng(20_260_730)
    data = DISTRIBUTIONS[distribution](rng)
    column = Column(data, name="value")
    oracle = FullScan(Column(data, name="value"))
    # Every policy is generous enough to drive progressive indexes through
    # all three phases (creation, refinement, consolidation) within the
    # workload.
    index = create_index(name, column, budget=POLICIES[policy_name]())
    converged_queries = 0
    for query_number, predicate in enumerate(seeded_workload(data, rng)):
        expected = oracle.query(predicate)
        answer = index.query(predicate)
        assert answer.count == expected.count, (
            f"{name}/{distribution}/{policy_name}: count mismatch at query "
            f"{query_number} ({predicate}) in phase {index.phase}"
        )
        assert answer.value_sum == expected.value_sum, (
            f"{name}/{distribution}/{policy_name}: sum mismatch at query "
            f"{query_number} ({predicate}) in phase {index.phase}"
        )
        if index.converged:
            converged_queries += 1
    if name in PROGRESSIVE_ALGORITHMS:
        # The equivalence must also have been exercised after convergence.
        assert index.converged, (
            f"{name} failed to converge within the workload under {policy_name}"
        )
        assert converged_queries > 0


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_batch_execution_matches_full_scan_oracle(name, policy_name):
    """The differential property holds for the batch path under every policy."""
    rng = np.random.default_rng(7)
    data = uniform_data(N_ELEMENTS, rng=rng)
    oracle = FullScan(Column(data, name="value"))
    predicates = seeded_workload(data, rng, n_queries=40)
    expected = [oracle.query(predicate) for predicate in predicates]
    index = create_index(name, Column(data, name="value"), budget=POLICIES[policy_name]())
    batch = BatchExecutor().execute(index, predicates)
    for query_number, (want, got) in enumerate(zip(expected, batch.results)):
        assert got.count == want.count, f"{name}/{policy_name}: batch query {query_number}"
        assert got.value_sum == want.value_sum, (
            f"{name}/{policy_name}: batch query {query_number}"
        )


# ----------------------------------------------------------------------
# Float64 columns
# ----------------------------------------------------------------------

FLOAT_DISTRIBUTIONS = {
    "normal": lambda rng: rng.normal(0.0, 1.0, size=N_ELEMENTS),
    "uniform_negative": lambda rng: rng.uniform(-1_000.0, 1_000.0, size=N_ELEMENTS),
    "mixed_magnitudes": lambda rng: np.concatenate(
        [
            rng.normal(0.0, 1e-3, size=N_ELEMENTS // 2),
            rng.normal(0.0, 1e6, size=N_ELEMENTS - N_ELEMENTS // 2),
        ]
    ),
}


def seeded_float_workload(data: np.ndarray, rng: np.random.Generator, n_queries: int = N_QUERIES):
    """Randomized float workload: exact/absent points and fractional ranges."""
    low, high = float(data.min()), float(data.max())
    span = high - low
    predicates = []
    for query_number in range(n_queries):
        kind = query_number % 4
        if kind == 0:  # point query on an existing value
            value = float(data[rng.integers(0, data.size)])
            predicates.append(Predicate(value, value))
        elif kind == 1:  # narrow fractional range
            start = float(rng.uniform(low, high))
            predicates.append(Predicate(start, start + span * 1e-3))
        elif kind == 2:  # wide range
            start = float(rng.uniform(low, high - 0.2 * span))
            predicates.append(Predicate(start, start + 0.2 * span))
        else:  # range possibly outside the domain
            start = float(rng.uniform(low - 0.1 * span, high + 0.1 * span))
            predicates.append(Predicate(start, start + float(rng.uniform(0, 0.05 * span))))
    return predicates


@pytest.mark.parametrize("distribution", sorted(FLOAT_DISTRIBUTIONS))
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_algorithm_matches_full_scan_oracle_on_float64(name, distribution):
    rng = np.random.default_rng(20_260_731)
    data = FLOAT_DISTRIBUTIONS[distribution](rng)
    oracle = FullScan(Column(data, name="value"))
    index = create_index(name, Column(data, name="value"), budget=FixedBudget(0.5))
    converged_queries = 0
    for query_number, predicate in enumerate(seeded_float_workload(data, rng)):
        expected = oracle.query(predicate)
        answer = index.query(predicate)
        assert answer.count == expected.count, (
            f"{name}/{distribution}: count mismatch at query {query_number} "
            f"({predicate}) in phase {index.phase}"
        )
        assert answer.approximately_equals(expected), (
            f"{name}/{distribution}: sum mismatch at query {query_number} "
            f"({predicate}) in phase {index.phase}"
        )
        if index.converged:
            converged_queries += 1
    if name in PROGRESSIVE_ALGORITHMS:
        # The equivalence must also have been exercised after convergence —
        # float columns included (the codecs make PLSD converge sorted).
        assert index.converged, f"{name} failed to converge on float64 data"
        assert converged_queries > 0


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_batch_execution_matches_oracle_on_float64(name):
    rng = np.random.default_rng(11)
    data = rng.normal(0.0, 100.0, size=N_ELEMENTS)
    oracle = FullScan(Column(data, name="value"))
    predicates = seeded_float_workload(data, rng, n_queries=40)
    expected = [oracle.query(predicate) for predicate in predicates]
    index = create_index(name, Column(data, name="value"), budget=FixedBudget(0.5))
    batch = BatchExecutor().execute(index, predicates)
    for query_number, (want, got) in enumerate(zip(expected, batch.results)):
        assert got.count == want.count, f"{name}: float batch query {query_number}"
        assert got.approximately_equals(want), f"{name}: float batch query {query_number}"
