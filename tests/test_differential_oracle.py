"""Differential property test harness: every algorithm vs. the FullScan oracle.

Every algorithm in the registry — the four progressive indexes, all five
cracking variants and both baselines — is run against a ``FullScan`` oracle
over seeded randomized workloads drawn from the synthetic distributions
(:mod:`repro.workloads.distributions`).  At *every* query the answers must be
identical; for the progressive indexes the workloads are long enough (and the
budget generous enough) to drive the index through full convergence, so the
equivalence is also asserted for the converged cascade path.

Float64 columns get the same treatment (including negative values and
fractional predicate bounds): counts must be exactly equal and sums equal up
to float-addition associativity.  This exercises the order-preserving key
codecs end to end — before them, LSD radix construction silently misordered
float fractional parts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.full_scan import FullScan
from repro.core.budget import FixedBudget
from repro.core.phase import IndexPhase
from repro.core.policy import CostModelGreedy, FixedDelta, TimeAdaptive
from repro.core.query import Predicate, QueryResult
from repro.engine.batch import BatchExecutor
from repro.engine.registry import ALGORITHMS, PROGRESSIVE_ALGORITHMS, create_index
from repro.storage.column import Column
from repro.workloads.distributions import skewed_data, uniform_data

#: Column size: small enough to keep the grid fast, large enough to exercise
#: multi-piece cracking and multi-level progressive refinement.
N_ELEMENTS = 6_000

#: Workload length; with ``delta = 0.5`` every progressive index converges
#: well before the workload ends.
N_QUERIES = 80

DISTRIBUTIONS = {
    "uniform": lambda rng: uniform_data(N_ELEMENTS, rng=rng),
    "skewed": lambda rng: skewed_data(N_ELEMENTS, rng=rng),
}

#: The three budget-policy flavours of the adaptive execution layer.  Each
#: is generous enough to drive every progressive index through full
#: convergence within the workload, so the differential property is also
#: asserted on the converged cascade path under every policy.
POLICIES = {
    "fixed_delta": lambda: FixedDelta(0.5),
    "time_adaptive": lambda: TimeAdaptive(scan_fraction=4.0),
    "cost_model_greedy": lambda: CostModelGreedy(scan_fraction=4.0),
}


def seeded_workload(data: np.ndarray, rng: np.random.Generator, n_queries: int = N_QUERIES):
    """Randomized mix of range and point queries over the data's domain.

    Includes exact-value point queries, absent-value point queries and
    ranges of varied widths, all drawn from the seeded generator.
    """
    low, high = int(data.min()), int(data.max())
    predicates = []
    for query_number in range(n_queries):
        kind = query_number % 4
        if kind == 0:  # point query on an existing value
            value = int(data[rng.integers(0, data.size)])
            predicates.append(Predicate(value, value))
        elif kind == 1:  # narrow range
            start = int(rng.integers(low, max(low + 1, high - 10)))
            predicates.append(Predicate(start, start + 10))
        elif kind == 2:  # wide range
            width = int((high - low) * 0.2) + 1
            start = int(rng.integers(low, max(low + 1, high - width)))
            predicates.append(Predicate(start, start + width))
        else:  # range possibly outside the domain
            start = int(rng.integers(low - 100, high + 100))
            predicates.append(Predicate(start, start + int(rng.integers(0, 50))))
    return predicates


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("distribution", sorted(DISTRIBUTIONS))
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_algorithm_matches_full_scan_oracle(name, distribution, policy_name):
    rng = np.random.default_rng(20_260_730)
    data = DISTRIBUTIONS[distribution](rng)
    column = Column(data, name="value")
    oracle = FullScan(Column(data, name="value"))
    # Every policy is generous enough to drive progressive indexes through
    # all three phases (creation, refinement, consolidation) within the
    # workload.
    index = create_index(name, column, budget=POLICIES[policy_name]())
    converged_queries = 0
    for query_number, predicate in enumerate(seeded_workload(data, rng)):
        expected = oracle.query(predicate)
        answer = index.query(predicate)
        assert answer.count == expected.count, (
            f"{name}/{distribution}/{policy_name}: count mismatch at query "
            f"{query_number} ({predicate}) in phase {index.phase}"
        )
        assert answer.value_sum == expected.value_sum, (
            f"{name}/{distribution}/{policy_name}: sum mismatch at query "
            f"{query_number} ({predicate}) in phase {index.phase}"
        )
        if index.converged:
            converged_queries += 1
    if name in PROGRESSIVE_ALGORITHMS:
        # The equivalence must also have been exercised after convergence.
        assert index.converged, (
            f"{name} failed to converge within the workload under {policy_name}"
        )
        assert converged_queries > 0


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_batch_execution_matches_full_scan_oracle(name, policy_name):
    """The differential property holds for the batch path under every policy."""
    rng = np.random.default_rng(7)
    data = uniform_data(N_ELEMENTS, rng=rng)
    oracle = FullScan(Column(data, name="value"))
    predicates = seeded_workload(data, rng, n_queries=40)
    expected = [oracle.query(predicate) for predicate in predicates]
    index = create_index(name, Column(data, name="value"), budget=POLICIES[policy_name]())
    batch = BatchExecutor().execute(index, predicates)
    for query_number, (want, got) in enumerate(zip(expected, batch.results)):
        assert got.count == want.count, f"{name}/{policy_name}: batch query {query_number}"
        assert got.value_sum == want.value_sum, (
            f"{name}/{policy_name}: batch query {query_number}"
        )


# ----------------------------------------------------------------------
# Float64 columns
# ----------------------------------------------------------------------

FLOAT_DISTRIBUTIONS = {
    "normal": lambda rng: rng.normal(0.0, 1.0, size=N_ELEMENTS),
    "uniform_negative": lambda rng: rng.uniform(-1_000.0, 1_000.0, size=N_ELEMENTS),
    "mixed_magnitudes": lambda rng: np.concatenate(
        [
            rng.normal(0.0, 1e-3, size=N_ELEMENTS // 2),
            rng.normal(0.0, 1e6, size=N_ELEMENTS - N_ELEMENTS // 2),
        ]
    ),
}


def seeded_float_workload(data: np.ndarray, rng: np.random.Generator, n_queries: int = N_QUERIES):
    """Randomized float workload: exact/absent points and fractional ranges."""
    low, high = float(data.min()), float(data.max())
    span = high - low
    predicates = []
    for query_number in range(n_queries):
        kind = query_number % 4
        if kind == 0:  # point query on an existing value
            value = float(data[rng.integers(0, data.size)])
            predicates.append(Predicate(value, value))
        elif kind == 1:  # narrow fractional range
            start = float(rng.uniform(low, high))
            predicates.append(Predicate(start, start + span * 1e-3))
        elif kind == 2:  # wide range
            start = float(rng.uniform(low, high - 0.2 * span))
            predicates.append(Predicate(start, start + 0.2 * span))
        else:  # range possibly outside the domain
            start = float(rng.uniform(low - 0.1 * span, high + 0.1 * span))
            predicates.append(Predicate(start, start + float(rng.uniform(0, 0.05 * span))))
    return predicates


@pytest.mark.parametrize("distribution", sorted(FLOAT_DISTRIBUTIONS))
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_algorithm_matches_full_scan_oracle_on_float64(name, distribution):
    rng = np.random.default_rng(20_260_731)
    data = FLOAT_DISTRIBUTIONS[distribution](rng)
    oracle = FullScan(Column(data, name="value"))
    index = create_index(name, Column(data, name="value"), budget=FixedBudget(0.5))
    converged_queries = 0
    for query_number, predicate in enumerate(seeded_float_workload(data, rng)):
        expected = oracle.query(predicate)
        answer = index.query(predicate)
        assert answer.count == expected.count, (
            f"{name}/{distribution}: count mismatch at query {query_number} "
            f"({predicate}) in phase {index.phase}"
        )
        assert answer.approximately_equals(expected), (
            f"{name}/{distribution}: sum mismatch at query {query_number} "
            f"({predicate}) in phase {index.phase}"
        )
        if index.converged:
            converged_queries += 1
    if name in PROGRESSIVE_ALGORITHMS:
        # The equivalence must also have been exercised after convergence —
        # float columns included (the codecs make PLSD converge sorted).
        assert index.converged, f"{name} failed to converge on float64 data"
        assert converged_queries > 0


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_batch_execution_matches_oracle_on_float64(name):
    rng = np.random.default_rng(11)
    data = rng.normal(0.0, 100.0, size=N_ELEMENTS)
    oracle = FullScan(Column(data, name="value"))
    predicates = seeded_float_workload(data, rng, n_queries=40)
    expected = [oracle.query(predicate) for predicate in predicates]
    index = create_index(name, Column(data, name="value"), budget=FixedBudget(0.5))
    batch = BatchExecutor().execute(index, predicates)
    for query_number, (want, got) in enumerate(zip(expected, batch.results)):
        assert got.count == want.count, f"{name}: float batch query {query_number}"
        assert got.approximately_equals(want), f"{name}: float batch query {query_number}"


# ----------------------------------------------------------------------
# Mutation oracle: random write/query interleavings on the mutable substrate
# ----------------------------------------------------------------------

#: Smaller column for the mutation grid (13 algorithms x 3 policies).
N_MUTATION_ELEMENTS = 4_000

#: Writes per mutation step are chunky enough that the pending delta crosses
#: the merge trigger of converged foldable indexes, so the MERGE life-cycle
#: stage (budget-priced folding) is genuinely exercised, not just the
#: overlay correction.
INSERT_BATCH = 12


def apply_random_write(rng: np.random.Generator, columns, low: int, high: int) -> str:
    """Apply one random insert/delete/update to every column in ``columns``."""
    kind = int(rng.integers(0, 3))
    if kind == 0:
        values = rng.integers(low, high + 1, size=INSERT_BATCH)
        for column in columns:
            column.insert(values)
        return "insert"
    start = int(rng.integers(low, high))
    width = int((high - low) * 0.01) + 1
    if kind == 1:
        for column in columns:
            column.delete_where(start, start + width)
        return "delete"
    target = int(rng.integers(low, high))
    for column in columns:
        column.update_where(start, start + width, target)
    return "update"


def reference_answer(reference: Column, predicate: Predicate):
    """FullScan over the mutable reference column (the oracle)."""
    return reference.scan_range(predicate.low, predicate.high)


def assert_matches_reference(name, policy_name, index, reference, predicate, step):
    got = index.query(predicate)
    want_sum, want_count = reference_answer(reference, predicate)
    assert got.count == want_count, (
        f"{name}/{policy_name}: count mismatch at mutation step {step} "
        f"({predicate}) in phase {index.phase}"
    )
    assert got.value_sum == want_sum, (
        f"{name}/{policy_name}: sum mismatch at mutation step {step} "
        f"({predicate}) in phase {index.phase}"
    )


def random_read(rng: np.random.Generator, low: int, high: int) -> Predicate:
    kind = int(rng.integers(0, 3))
    if kind == 0:  # point query
        value = int(rng.integers(low - 5, high + 5))
        return Predicate(value, value)
    if kind == 1:  # narrow range
        start = int(rng.integers(low, high))
        return Predicate(start, start + max(1, (high - low) // 100))
    start = int(rng.integers(low - 50, high))  # wide range, may leave domain
    return Predicate(start, start + (high - low) // 4)


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_mutation_oracle_matches_mutable_full_scan(name, policy_name):
    """Any interleaving of writes and queries equals the mutable reference.

    Stage 1 drives the index through construction (progressive indexes
    converge), stage 2 interleaves random inserts / range deletes / range
    updates with range and point queries, and stage 3 keeps querying so
    budget-priced merging runs to completion — answers must equal a
    FullScan over an identically mutated reference column at *every* step,
    before and after convergence.
    """
    rng = np.random.default_rng(20_260_801)
    data = uniform_data(N_MUTATION_ELEMENTS, rng=rng)
    low, high = int(data.min()), int(data.max())
    column = Column(data, name="value")
    reference = Column(data.copy(), name="reference")
    index = create_index(name, column, budget=POLICIES[policy_name]())

    # Stage 1: read-only construction drive.
    for step in range(25):
        assert_matches_reference(
            name, policy_name, index, reference, random_read(rng, low, high), step
        )
    if name in PROGRESSIVE_ALGORITHMS:
        assert index.converged, (
            f"{name} failed to converge before the mutation stage under {policy_name}"
        )

    # Stage 2: random write/query interleaving.
    for step in range(25, 65):
        if rng.random() < 0.45:
            apply_random_write(rng, (column, reference), low, high)
        assert_matches_reference(
            name, policy_name, index, reference, random_read(rng, low, high), step
        )

    # Stage 3: drain — budget-priced merging completes under every policy.
    for step in range(65, 85):
        assert_matches_reference(
            name, policy_name, index, reference, random_read(rng, low, high), step
        )
    if name in PROGRESSIVE_ALGORITHMS or name == "FI":
        visited = {phase for _, phase in index.lifecycle.transitions}
        assert IndexPhase.MERGE in visited, (
            f"{name}/{policy_name}: the budget-priced MERGE stage never ran "
            f"(transitions: {index.lifecycle.transitions})"
        )


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_mutation_oracle_batch_path(name):
    """Batches interleaved with writes equal the mutable reference."""
    rng = np.random.default_rng(97)
    data = uniform_data(N_MUTATION_ELEMENTS, rng=rng)
    low, high = int(data.min()), int(data.max())
    column = Column(data, name="value")
    reference = Column(data.copy(), name="reference")
    index = create_index(name, column, budget=FixedDelta(0.5))
    executor = BatchExecutor()
    for round_number in range(6):
        if round_number > 0:
            for _ in range(3):
                apply_random_write(rng, (column, reference), low, high)
        predicates = [random_read(rng, low, high) for _ in range(20)]
        batch = executor.execute(index, predicates)
        for query_number, (predicate, got) in enumerate(zip(predicates, batch.results)):
            want_sum, want_count = reference_answer(reference, predicate)
            assert got.count == want_count, (
                f"{name}: batch round {round_number} query {query_number} "
                f"({predicate}) in phase {index.phase}"
            )
            assert got.value_sum == want_sum, (
                f"{name}: batch round {round_number} query {query_number}"
            )


def test_mutation_oracle_float64_columns():
    """The mutable substrate is exact on float columns too (PQ + cracking)."""
    rng = np.random.default_rng(5)
    data = rng.normal(0.0, 1_000.0, size=N_MUTATION_ELEMENTS)
    for name in ("PQ", "STD", "FS", "FI"):
        column = Column(data.copy(), name="value")
        reference = Column(data.copy(), name="reference")
        index = create_index(name, column, budget=FixedDelta(0.5))
        for step in range(40):
            if 10 < step and rng.random() < 0.4:
                start = float(rng.uniform(-2_000, 2_000))
                column.insert(np.array([start, start + 0.5]))
                reference.insert(np.array([start, start + 0.5]))
                column.delete_where(start - 50.0, start - 10.0)
                reference.delete_where(start - 50.0, start - 10.0)
            lo = float(rng.uniform(-3_000, 2_500))
            predicate = Predicate(lo, lo + float(rng.uniform(0, 500)))
            got = index.query(predicate)
            want_sum, want_count = reference.scan_range(predicate.low, predicate.high)
            assert got.count == want_count, f"{name}: float mutation step {step}"
            assert got.approximately_equals(QueryResult(want_sum, want_count)), (
                f"{name}: float mutation step {step}"
            )
