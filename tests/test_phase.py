"""Tests for the index life-cycle phases."""

from repro.core.phase import IndexPhase


def test_phase_ordering_is_monotone():
    ordered = [
        IndexPhase.INACTIVE,
        IndexPhase.CREATION,
        IndexPhase.REFINEMENT,
        IndexPhase.CONSOLIDATION,
        IndexPhase.CONVERGED,
    ]
    for earlier, later in zip(ordered, ordered[1:]):
        assert earlier < later
        assert earlier <= later
        assert not later < earlier


def test_indexing_work_flags():
    assert not IndexPhase.INACTIVE.does_indexing_work
    assert IndexPhase.CREATION.does_indexing_work
    assert IndexPhase.REFINEMENT.does_indexing_work
    assert IndexPhase.CONSOLIDATION.does_indexing_work
    assert not IndexPhase.CONVERGED.does_indexing_work


def test_comparison_with_other_types_is_rejected():
    assert IndexPhase.CREATION.__lt__(3) is NotImplemented
    assert IndexPhase.CREATION.__le__("creation") is NotImplemented


def test_order_values_are_unique():
    orders = {phase.order for phase in IndexPhase}
    assert len(orders) == len(list(IndexPhase))
