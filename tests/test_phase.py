"""Tests for the index life-cycle phases and the shared lifecycle driver."""

import pytest

from repro.core.phase import IndexLifecycle, IndexPhase
from repro.errors import IndexStateError


def test_phase_ordering_is_monotone():
    ordered = [
        IndexPhase.INACTIVE,
        IndexPhase.CREATION,
        IndexPhase.REFINEMENT,
        IndexPhase.CONSOLIDATION,
        IndexPhase.CONVERGED,
    ]
    for earlier, later in zip(ordered, ordered[1:]):
        assert earlier < later
        assert earlier <= later
        assert not later < earlier


def test_indexing_work_flags():
    assert not IndexPhase.INACTIVE.does_indexing_work
    assert IndexPhase.CREATION.does_indexing_work
    assert IndexPhase.REFINEMENT.does_indexing_work
    assert IndexPhase.CONSOLIDATION.does_indexing_work
    assert not IndexPhase.CONVERGED.does_indexing_work


def test_comparison_with_other_types_is_rejected():
    assert IndexPhase.CREATION.__lt__(3) is NotImplemented
    assert IndexPhase.CREATION.__le__("creation") is NotImplemented


def test_order_values_are_unique():
    orders = {phase.order for phase in IndexPhase}
    assert len(orders) == len(list(IndexPhase))


class TestIndexLifecycle:
    def test_starts_inactive(self):
        lifecycle = IndexLifecycle()
        assert lifecycle.phase is IndexPhase.INACTIVE
        assert not lifecycle.converged
        assert lifecycle.transitions == []

    def test_advances_through_canonical_sequence(self):
        lifecycle = IndexLifecycle()
        for query_number, phase in enumerate(
            [IndexPhase.CREATION, IndexPhase.REFINEMENT,
             IndexPhase.CONSOLIDATION, IndexPhase.CONVERGED],
            start=1,
        ):
            lifecycle.advance(phase, query_number)
        assert lifecycle.converged
        assert [phase for _, phase in lifecycle.transitions] == [
            IndexPhase.CREATION, IndexPhase.REFINEMENT,
            IndexPhase.CONSOLIDATION, IndexPhase.CONVERGED,
        ]
        assert [number for number, _ in lifecycle.transitions] == [1, 2, 3, 4]

    def test_phases_may_be_skipped_forward(self):
        lifecycle = IndexLifecycle()
        lifecycle.advance(IndexPhase.CONVERGED)  # a bulk-built baseline
        assert lifecycle.converged

    def test_rejects_backward_transition(self):
        lifecycle = IndexLifecycle()
        lifecycle.advance(IndexPhase.REFINEMENT)
        with pytest.raises(IndexStateError):
            lifecycle.advance(IndexPhase.CREATION)

    def test_rejects_self_transition(self):
        lifecycle = IndexLifecycle()
        lifecycle.advance(IndexPhase.CREATION)
        with pytest.raises(IndexStateError):
            lifecycle.advance(IndexPhase.CREATION)

    def test_rejects_non_phase(self):
        with pytest.raises(IndexStateError):
            IndexLifecycle().advance("creation")

    def test_per_phase_accounting(self):
        lifecycle = IndexLifecycle()
        lifecycle.advance(IndexPhase.CREATION)
        lifecycle.note_query(IndexPhase.CREATION, indexing_seconds=0.5)
        lifecycle.note_query(IndexPhase.CREATION, indexing_seconds=0.25)
        lifecycle.advance(IndexPhase.REFINEMENT)
        lifecycle.note_query(IndexPhase.REFINEMENT)
        assert lifecycle.queries_in(IndexPhase.CREATION) == 2
        assert lifecycle.indexing_seconds_in(IndexPhase.CREATION) == pytest.approx(0.75)
        assert lifecycle.queries_in(IndexPhase.REFINEMENT) == 1
        assert lifecycle.indexing_seconds_in(IndexPhase.REFINEMENT) == 0.0

    def test_snapshot_lists_visited_phases_in_order(self):
        lifecycle = IndexLifecycle()
        lifecycle.advance(IndexPhase.CREATION)
        lifecycle.note_query(IndexPhase.CREATION, indexing_seconds=0.5)
        lifecycle.advance(IndexPhase.CONVERGED)
        snapshot = lifecycle.snapshot()
        assert list(snapshot) == ["creation", "converged"]
        assert snapshot["creation"] == {"queries": 1, "indexing_seconds": 0.5}
