"""Tests for the fixed and adaptive indexing budgets."""

import pytest

from repro.core.budget import AdaptiveBudget, FixedBudget, FixedTimeBudget, MINIMUM_DELTA
from repro.errors import InvalidBudgetError


class TestFixedBudget:
    def test_returns_constant_delta(self):
        budget = FixedBudget(0.25)
        assert budget.next_delta(1.0) == 0.25
        assert budget.next_delta(100.0) == 0.25

    def test_zero_delta_allowed(self):
        assert FixedBudget(0.0).next_delta(1.0) == 0.0

    def test_full_delta_allowed(self):
        assert FixedBudget(1.0).next_delta(1.0) == 1.0

    @pytest.mark.parametrize("delta", [-0.1, 1.5])
    def test_rejects_out_of_range(self, delta):
        with pytest.raises(InvalidBudgetError):
            FixedBudget(delta)

    def test_not_adaptive(self):
        assert FixedBudget(0.5).adaptive is False

    def test_describe(self):
        assert "0.5" in FixedBudget(0.5).describe()


class TestFixedTimeBudget:
    def test_delta_computed_once(self):
        budget = FixedTimeBudget(budget_seconds=0.5)
        first = budget.next_delta(full_work_time=2.0)
        assert first == pytest.approx(0.25)
        # Later calls keep the same delta even when the work estimate changes.
        assert budget.next_delta(full_work_time=100.0) == pytest.approx(0.25)

    def test_caps_at_one(self):
        budget = FixedTimeBudget(budget_seconds=10.0)
        assert budget.next_delta(full_work_time=1.0) == 1.0

    def test_zero_work_means_full_delta(self):
        assert FixedTimeBudget(1.0).next_delta(0.0) == 1.0

    def test_rejects_non_positive(self):
        with pytest.raises(InvalidBudgetError):
            FixedTimeBudget(0.0)


class TestAdaptiveBudget:
    def test_requires_exactly_one_parameter(self):
        with pytest.raises(InvalidBudgetError):
            AdaptiveBudget()
        with pytest.raises(InvalidBudgetError):
            AdaptiveBudget(budget_seconds=1.0, scan_fraction=0.2)

    def test_rejects_non_positive(self):
        with pytest.raises(InvalidBudgetError):
            AdaptiveBudget(budget_seconds=-1.0)
        with pytest.raises(InvalidBudgetError):
            AdaptiveBudget(scan_fraction=0.0)

    def test_scan_fraction_requires_registration(self):
        budget = AdaptiveBudget(scan_fraction=0.2)
        with pytest.raises(InvalidBudgetError):
            budget.next_delta(1.0)

    def test_scan_fraction_resolution(self):
        budget = AdaptiveBudget(scan_fraction=0.2)
        budget.register_scan_time(1.0)
        assert budget.budget_seconds == pytest.approx(0.2)
        assert budget.target_query_cost == pytest.approx(1.2)

    def test_first_query_uses_raw_budget(self):
        budget = AdaptiveBudget(budget_seconds=0.2)
        # Without a registered scan time the slack is the raw budget.
        assert budget.next_delta(full_work_time=1.0) == pytest.approx(0.2)

    def test_keeps_total_cost_constant(self):
        budget = AdaptiveBudget(scan_fraction=0.2)
        budget.register_scan_time(1.0)
        # Query that would cost 0.4 on its own leaves 0.8 of slack.
        delta = budget.next_delta(full_work_time=2.0, query_base_cost=0.4)
        assert delta == pytest.approx(0.4)

    def test_cheap_queries_get_more_indexing(self):
        budget = AdaptiveBudget(scan_fraction=0.2)
        budget.register_scan_time(1.0)
        expensive = budget.next_delta(2.0, query_base_cost=1.0)
        cheap = budget.next_delta(2.0, query_base_cost=0.1)
        assert cheap > expensive

    def test_minimum_delta_floor(self):
        budget = AdaptiveBudget(scan_fraction=0.2)
        budget.register_scan_time(1.0)
        # The query alone already exceeds the target: fall back to the floor.
        delta = budget.next_delta(full_work_time=10.0, query_base_cost=5.0)
        assert delta == pytest.approx(MINIMUM_DELTA)

    def test_delta_capped_at_one(self):
        budget = AdaptiveBudget(budget_seconds=100.0)
        budget.register_scan_time(1.0)
        assert budget.next_delta(full_work_time=1.0, query_base_cost=0.0) == 1.0

    def test_is_adaptive(self):
        assert AdaptiveBudget(scan_fraction=0.2).adaptive is True

    def test_describe(self):
        assert "0.2" in AdaptiveBudget(scan_fraction=0.2).describe()
        assert "s" in AdaptiveBudget(budget_seconds=0.25).describe()
