"""Tests for the fixed and time-adaptive budget policies.

The adaptive path is exercised with an injected fake clock, so the
wall-clock feedback loop is driven deterministically — no real time is
read anywhere in this module.
"""

import pytest

from repro.core.budget import AdaptiveBudget, FixedBudget, FixedTimeBudget, MINIMUM_DELTA
from repro.core.policy import ManualClock, TimeAdaptive
from repro.errors import InvalidBudgetError


class TestFixedBudget:
    def test_returns_constant_delta(self):
        budget = FixedBudget(0.25)
        assert budget.next_delta(1.0) == 0.25
        assert budget.next_delta(100.0) == 0.25

    def test_zero_delta_allowed(self):
        assert FixedBudget(0.0).next_delta(1.0) == 0.0

    def test_full_delta_allowed(self):
        assert FixedBudget(1.0).next_delta(1.0) == 1.0

    @pytest.mark.parametrize("delta", [-0.1, 1.5])
    def test_rejects_out_of_range(self, delta):
        with pytest.raises(InvalidBudgetError):
            FixedBudget(delta)

    def test_not_adaptive(self):
        assert FixedBudget(0.5).adaptive is False

    def test_describe(self):
        assert "0.5" in FixedBudget(0.5).describe()


class TestFixedTimeBudget:
    def test_delta_computed_once(self):
        budget = FixedTimeBudget(budget_seconds=0.5)
        first = budget.next_delta(full_work_time=2.0)
        assert first == pytest.approx(0.25)
        # Later calls keep the same delta even when the work estimate changes.
        assert budget.next_delta(full_work_time=100.0) == pytest.approx(0.25)

    def test_caps_at_one(self):
        budget = FixedTimeBudget(budget_seconds=10.0)
        assert budget.next_delta(full_work_time=1.0) == 1.0

    def test_zero_work_means_full_delta(self):
        assert FixedTimeBudget(1.0).next_delta(0.0) == 1.0

    def test_rejects_non_positive(self):
        with pytest.raises(InvalidBudgetError):
            FixedTimeBudget(0.0)


class TestTimeAdaptive:
    """The time-adaptive policy (legacy name: ``AdaptiveBudget``)."""

    def test_alias_is_the_policy_class(self):
        assert AdaptiveBudget is TimeAdaptive

    def test_requires_exactly_one_parameter(self):
        with pytest.raises(InvalidBudgetError):
            TimeAdaptive()
        with pytest.raises(InvalidBudgetError):
            TimeAdaptive(budget_seconds=1.0, scan_fraction=0.2)

    def test_rejects_non_positive(self):
        with pytest.raises(InvalidBudgetError):
            TimeAdaptive(budget_seconds=-1.0)
        with pytest.raises(InvalidBudgetError):
            TimeAdaptive(scan_fraction=0.0)

    def test_scan_fraction_requires_registration(self):
        budget = TimeAdaptive(scan_fraction=0.2)
        with pytest.raises(InvalidBudgetError):
            budget.next_delta(1.0)

    def test_scan_fraction_resolution(self):
        budget = TimeAdaptive(scan_fraction=0.2)
        budget.register_scan_time(1.0)
        assert budget.budget_seconds == pytest.approx(0.2)
        assert budget.target_query_cost == pytest.approx(1.2)

    def test_first_query_uses_raw_budget(self):
        budget = TimeAdaptive(budget_seconds=0.2)
        # Without a registered scan time the slack is the raw budget.
        assert budget.next_delta(full_work_time=1.0) == pytest.approx(0.2)

    def test_keeps_total_cost_constant(self):
        budget = TimeAdaptive(scan_fraction=0.2)
        budget.register_scan_time(1.0)
        # Query that would cost 0.4 on its own leaves 0.8 of slack.
        delta = budget.next_delta(full_work_time=2.0, query_base_cost=0.4)
        assert delta == pytest.approx(0.4)

    def test_cheap_queries_get_more_indexing(self):
        budget = TimeAdaptive(scan_fraction=0.2)
        budget.register_scan_time(1.0)
        expensive = budget.next_delta(2.0, query_base_cost=1.0)
        cheap = budget.next_delta(2.0, query_base_cost=0.1)
        assert cheap > expensive

    def test_minimum_delta_floor(self):
        budget = TimeAdaptive(scan_fraction=0.2)
        budget.register_scan_time(1.0)
        # The query alone already exceeds the target: fall back to the floor.
        delta = budget.next_delta(full_work_time=10.0, query_base_cost=5.0)
        assert delta == pytest.approx(MINIMUM_DELTA)

    def test_delta_capped_at_one(self):
        budget = TimeAdaptive(budget_seconds=100.0)
        budget.register_scan_time(1.0)
        assert budget.next_delta(full_work_time=1.0, query_base_cost=0.0) == 1.0

    def test_is_adaptive(self):
        assert TimeAdaptive(scan_fraction=0.2).adaptive is True

    def test_describe(self):
        assert "0.2" in TimeAdaptive(scan_fraction=0.2).describe()
        assert "s" in TimeAdaptive(budget_seconds=0.25).describe()


class TestTimeAdaptiveClockFeedback:
    """Deterministic, fake-clock-driven wall-clock correction."""

    def test_no_clock_disables_feedback(self):
        budget = TimeAdaptive(budget_seconds=0.2)
        budget.observe(elapsed_seconds=100.0, predicted_seconds=1.0)
        assert budget.correction == 1.0

    def test_slow_machine_shrinks_delta(self):
        clock = ManualClock()
        budget = TimeAdaptive(budget_seconds=0.2, clock=clock)
        budget.register_scan_time(1.0)
        baseline = budget.next_delta(2.0, query_base_cost=0.4)
        # Queries keep measuring 2x their prediction.
        for _ in range(20):
            budget.observe(elapsed_seconds=2.0, predicted_seconds=1.0)
        corrected = budget.next_delta(2.0, query_base_cost=0.4)
        assert budget.correction > 1.0
        assert corrected < baseline

    def test_fast_machine_recovers_delta(self):
        clock = ManualClock()
        budget = TimeAdaptive(budget_seconds=0.2, clock=clock)
        budget.register_scan_time(1.0)
        for _ in range(20):
            budget.observe(elapsed_seconds=2.0, predicted_seconds=1.0)
        slowed = budget.next_delta(2.0, query_base_cost=0.4)
        for _ in range(40):
            budget.observe(elapsed_seconds=0.5, predicted_seconds=1.0)
        recovered = budget.next_delta(2.0, query_base_cost=0.4)
        assert recovered > slowed

    def test_correction_is_clamped(self):
        clock = ManualClock()
        budget = TimeAdaptive(budget_seconds=0.2, clock=clock)
        for _ in range(100):
            budget.observe(elapsed_seconds=1000.0, predicted_seconds=1.0)
        low, high = TimeAdaptive.CORRECTION_RANGE
        assert low <= budget.correction <= high

    def test_observe_ignores_missing_prediction(self):
        clock = ManualClock()
        budget = TimeAdaptive(budget_seconds=0.2, clock=clock)
        budget.observe(elapsed_seconds=5.0, predicted_seconds=None)
        assert budget.correction == 1.0

    def test_clock_driven_index_is_deterministic(self):
        """An index driven with a fake clock yields identical runs."""
        import numpy as np

        from repro.core.query import Predicate
        from repro.progressive.quicksort import ProgressiveQuicksort
        from repro.storage.column import Column

        def run():
            clock = ManualClock()
            data = np.arange(2_000)
            index = ProgressiveQuicksort(
                Column(data, name="v"),
                budget=TimeAdaptive(scan_fraction=2.0, clock=clock),
            )
            deltas = []
            for low in range(0, 1000, 50):
                # Advance the fake clock by a fixed amount per query: the
                # observed "wall" time is deterministic.
                before = clock.now
                index.query(Predicate(low, low + 100))
                clock.advance(1e-4)
                assert clock.now > before
                deltas.append(index.last_stats.delta)
            return deltas

        assert run() == run()
