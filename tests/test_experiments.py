"""Smoke tests for the experiment drivers and report renderers.

The drivers are exercised with the tiny "quick" configuration so the suite
stays fast; the full-scale runs live in the benchmark harness.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    figure5_summary,
    figure6_summary,
    run_cost_model_validation,
    run_delta_impact,
    run_figure10,
    run_skyserver_comparison,
    run_synthetic_comparison,
)
from repro.experiments.reporting import (
    format_count,
    format_seconds,
    render_cost_model_validation,
    render_delta_impact,
    render_figure10,
    render_synthetic_table,
    render_table,
    render_table2,
    rows_to_csv,
)
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig.quick()


class TestConfig:
    def test_quick_configuration(self, quick_config):
        assert quick_config.n_elements <= 50_000
        assert not quick_config.calibrate_constants
        assert quick_config.constants().source == "simulated"

    def test_paper_scale_configuration(self):
        config = ExperimentConfig.paper_scale()
        assert config.n_elements == 100_000_000

    def test_invalid_configuration(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(n_elements=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(selectivity=0.0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(budget_fraction=0.0)

    def test_rng_is_deterministic(self, quick_config):
        assert quick_config.rng(1).integers(0, 100) == quick_config.rng(1).integers(0, 100)


class TestWorkloadFigures:
    def test_figure5_summary(self, quick_config):
        summary = figure5_summary(quick_config)
        assert summary.histogram_counts.sum() == quick_config.n_elements
        assert summary.n_queries == quick_config.n_queries
        assert summary.distribution_skew() > 1.5
        assert 0 < summary.workload_drift() < 0.5

    def test_figure6_summary_covers_all_patterns(self, quick_config):
        series = figure6_summary(quick_config)
        assert len(series) == 8
        for ranges in series.values():
            assert len(ranges) == quick_config.n_queries


class TestDeltaImpact:
    def test_sweep_produces_all_rows(self, quick_config):
        result = run_delta_impact(quick_config, deltas=(0.1, 0.5), algorithms=("PQ", "PMSD"))
        assert len(result.rows) == 4
        assert set(result.algorithms()) == {"PQ", "PMSD"}
        series = result.series("cumulative_seconds")
        assert len(series["PQ"]) == 2

    def test_higher_delta_converges_in_fewer_queries(self, quick_config):
        result = run_delta_impact(quick_config, deltas=(0.1, 1.0), algorithms=("PMSD",))
        rows = result.for_algorithm("PMSD")
        low_delta, high_delta = rows[0], rows[-1]
        assert high_delta.convergence_query is not None
        assert low_delta.convergence_query is None or (
            high_delta.convergence_query <= low_delta.convergence_query
        )

    def test_report_rendering(self, quick_config):
        result = run_delta_impact(quick_config, deltas=(0.5,), algorithms=("PQ",))
        text = render_delta_impact(result)
        assert "Figure 7a" in text and "PQ" in text


class TestCostModelValidation:
    def test_fixed_budget_series(self, quick_config):
        result = run_cost_model_validation(quick_config, adaptive=False, algorithms=("PQ",))
        series = result.series["PQ"]
        assert series.n_queries == quick_config.n_queries
        assert np.isfinite(series.predicted_seconds).all()
        assert -1.0 <= series.correlation() <= 1.0

    def test_adaptive_budget_series(self, quick_config):
        result = run_cost_model_validation(quick_config, adaptive=True, algorithms=("PMSD",))
        assert "PMSD" in result.series
        assert "adaptive" in result.budget

    def test_report_rendering(self, quick_config):
        result = run_cost_model_validation(quick_config, adaptive=False, algorithms=("PQ", "PB"))
        text = render_cost_model_validation(result)
        assert "Correlation" in text and "PB" in text


class TestGreedyVsFixed:
    def test_greedy_rows_and_tau_contract(self, quick_config):
        from repro.experiments import run_greedy_vs_fixed
        from repro.experiments.reporting import render_greedy_validation

        result = run_greedy_vs_fixed(quick_config, algorithms=("PQ", "PMSD"))
        assert result.algorithms() == ["PMSD", "PQ"]
        for algorithm in result.algorithms():
            row = result.rows[algorithm]
            assert row.tau_seconds > 0
            # The greedy policy's contract: pre-convergence predictions land
            # within tau (modulo the minimum-delta tolerance).
            assert row.within_tau_fraction == pytest.approx(1.0)
            assert row.greedy_convergence_query is not None
        text = render_greedy_validation(result)
        assert "tau" in text and "PMSD" in text

    def test_phase_breakdown_rendering(self, quick_config):
        from repro.core.budget import FixedBudget
        from repro.engine import WorkloadExecutor, create_index
        from repro.experiments.reporting import render_phase_breakdown
        from repro.storage.column import Column
        from repro.workloads import generate_pattern

        rng = np.random.default_rng(3)
        data = rng.integers(0, 10_000, size=8_000)
        workload = generate_pattern("Random", 0, 10_000, 25, rng=rng)
        execution = WorkloadExecutor().run(
            create_index("PQ", Column(data, name="v"), budget=FixedBudget(0.5)),
            workload,
        )
        text = render_phase_breakdown(execution.phase_breakdown())
        assert "Phase" in text and "creation" in text


class TestSkyServerComparison:
    def test_table2_rows(self, quick_config):
        result = run_skyserver_comparison(quick_config, algorithms=("FS", "PQ", "STD"))
        assert set(result.rows) == {"FS", "PQ", "STD"}
        pq = result.row("PQ")
        assert pq.first_query_seconds > 0
        assert pq.convergence_query is not None
        assert result.row("STD").convergence_query is None
        text = render_table2(result)
        assert "Table 2" in text and "PQ" in text

    def test_progressive_converges_and_cracking_does_not(self, quick_config):
        result = run_skyserver_comparison(quick_config, algorithms=("PMSD", "PSTC"))
        assert result.row("PMSD").convergence_query is not None
        assert result.row("PSTC").convergence_query is None

    def test_figure10(self, quick_config):
        executions = run_figure10(quick_config, algorithms=("PQ", "PSTC"))
        assert set(executions) == {"PQ", "PSTC"}
        text = render_figure10(executions, head=5)
        assert "Figure 10" in text


class TestSyntheticComparison:
    def test_grid_runs_selected_blocks(self, quick_config):
        result = run_synthetic_comparison(
            quick_config,
            blocks=("uniform", "point"),
            patterns=("Random",),
            algorithms=("PQ", "PLSD"),
        )
        assert set(result.blocks()) == {"uniform", "point"}
        table = result.table("cumulative_seconds", "uniform")
        assert set(table["Random"]) == {"PQ", "PLSD"}
        winners = result.winners("cumulative_seconds", "uniform")
        assert winners["Random"] in {"PQ", "PLSD"}

    def test_report_rendering(self, quick_config):
        result = run_synthetic_comparison(
            quick_config, blocks=("uniform",), patterns=("Random",), algorithms=("PQ",)
        )
        text = render_synthetic_table(result, "first_query_seconds", "Table 3")
        assert "Table 3" in text and "Random" in text


class TestReportingHelpers:
    def test_format_seconds(self):
        assert format_seconds(None) == "x"
        assert format_seconds(0) == "0"
        assert format_seconds(1e-6) == "1.00e-06"
        assert format_seconds(0.5) == "0.5000"
        assert format_seconds(12.3456) == "12.35"

    def test_format_count(self):
        assert format_count(None) == "x"
        assert format_count(7) == "7"

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(["x", "y"], [[1, 2], [3, 4]])
        assert "x,y" in csv_text and "3,4" in csv_text
