"""Tests for the execution engine: registry, executor, metrics, decision tree."""

import numpy as np
import pytest

from repro.core.budget import FixedBudget
from repro.core.phase import IndexPhase
from repro.engine import (
    ALGORITHMS,
    ADAPTIVE_ALGORITHMS,
    BASELINE_ALGORITHMS,
    PROGRESSIVE_ALGORITHMS,
    WorkloadExecutor,
    create_index,
    recommend_index,
)
from repro.engine.metrics import (
    compute_metrics,
    compute_phase_breakdown,
    convergence_query,
    cumulative_cost,
    first_query_cost,
    payoff_query,
    robustness,
)
from repro.errors import ExperimentError
from repro.progressive import (
    ProgressiveBucketsort,
    ProgressiveQuicksort,
    ProgressiveRadixsortLSD,
    ProgressiveRadixsortMSD,
)
from repro.storage.column import Column
from repro.workloads import Workload, generate_pattern


class TestRegistry:
    def test_registry_covers_all_paper_algorithms(self):
        assert set(ALGORITHMS) == {
            "FS", "FI", "STD", "STC", "PSTC", "CGI", "AA", "PQ", "PMSD", "PLSD", "PB",
        }
        assert set(PROGRESSIVE_ALGORITHMS) == {"PQ", "PMSD", "PLSD", "PB"}
        assert set(ADAPTIVE_ALGORITHMS) == {"STD", "STC", "PSTC", "CGI", "AA"}
        assert set(BASELINE_ALGORITHMS) == {"FS", "FI"}

    def test_create_index_by_name(self, uniform_column):
        index = create_index("pq", uniform_column, budget=FixedBudget(0.1))
        assert index.name == "PQ"

    def test_create_index_unknown_name(self, uniform_column):
        with pytest.raises(ExperimentError):
            create_index("nope", uniform_column)

    def test_names_match_instances(self, uniform_column):
        for name in ("PQ", "PMSD", "PLSD", "PB", "STD", "FS", "FI"):
            index = create_index(name, uniform_column)
            assert index.name == name


class TestMetrics:
    def test_first_and_cumulative(self):
        times = [3.0, 1.0, 1.0]
        assert first_query_cost(times) == 3.0
        assert cumulative_cost(times) == 5.0
        assert first_query_cost([]) == 0.0

    def test_robustness_is_variance_of_head(self):
        times = [1.0] * 100 + [100.0]
        assert robustness(times) == 0.0
        assert robustness([1.0, 3.0], window=2) == pytest.approx(1.0)

    def test_payoff(self):
        # Scan costs 1s/query; the method costs 3s then 0.1s afterwards.
        times = [3.0] + [0.1] * 10
        assert payoff_query(times, scan_time=1.0) == 4
        assert payoff_query([5.0, 5.0], scan_time=1.0) is None
        assert payoff_query(times, scan_time=0.0) is None

    def test_convergence(self):
        assert convergence_query([False, False, True, True]) == 3
        assert convergence_query([False, False]) is None

    def test_compute_metrics_bundle(self):
        metrics = compute_metrics([2.0, 0.5, 0.5], [False, True, True], scan_time=1.0)
        assert metrics.first_query_seconds == 2.0
        assert metrics.cumulative_seconds == 3.0
        assert metrics.convergence_query == 2
        # Cumulative cost [2.0, 2.5, 3.0] first drops to the scan cumulative
        # cost [1, 2, 3] at the third query.
        assert metrics.payoff_query == 3
        row = metrics.as_row()
        assert row["convergence"] == 2 and row["queries"] == 3

    def test_as_row_uses_x_for_missing(self):
        metrics = compute_metrics([2.0], [False], scan_time=0.0)
        assert metrics.as_row()["convergence"] == "x"
        assert metrics.as_row()["payoff"] == "x"


class TestExecutor:
    @pytest.fixture
    def workload(self, uniform_data):
        return generate_pattern(
            "Random", 0, int(uniform_data.max()), 30, rng=np.random.default_rng(5)
        )

    def test_run_records_every_query(self, uniform_column, workload):
        executor = WorkloadExecutor()
        index = create_index("PQ", uniform_column, budget=FixedBudget(0.25))
        result = executor.run(index, workload)
        assert result.n_queries == len(workload)
        assert result.scan_seconds > 0
        assert all(record.elapsed_seconds >= 0 for record in result.records)
        assert result.times().shape == (len(workload),)

    def test_verification_mode_accepts_correct_indexes(self, uniform_column, workload):
        executor = WorkloadExecutor(verify=True)
        index = create_index("PMSD", uniform_column, budget=FixedBudget(0.25))
        executor.run(index, workload)  # must not raise

    def test_phase_transitions_are_monotone(self, uniform_column, workload):
        executor = WorkloadExecutor()
        index = create_index("PQ", uniform_column, budget=FixedBudget(0.5))
        result = executor.run(index, workload)
        orders = [phase.order for _, phase in result.phase_transitions()]
        assert orders == sorted(orders)

    def test_metrics_from_execution(self, uniform_column, workload):
        executor = WorkloadExecutor()
        index = create_index("PB", uniform_column, budget=FixedBudget(0.5))
        result = executor.run(index, workload)
        metrics = result.metrics()
        assert metrics.n_queries == len(workload)
        assert metrics.convergence_query is not None

    def test_predicted_times_present_for_progressive(self, uniform_column, workload):
        executor = WorkloadExecutor()
        index = create_index("PQ", uniform_column, budget=FixedBudget(0.25))
        result = executor.run(index, workload)
        predictions = result.predicted_times()
        assert np.isfinite(predictions).all()

    def test_phase_breakdown_accounts_every_query(self, uniform_column, workload):
        executor = WorkloadExecutor()
        index = create_index("PQ", uniform_column, budget=FixedBudget(0.5))
        result = executor.run(index, workload)
        breakdown = result.phase_breakdown()
        assert sum(stats.queries for stats in breakdown.values()) == len(workload)
        # The index did real indexing work, so some phase spent budget.
        assert any(stats.indexing_seconds > 0 for stats in breakdown.values())
        # Phases come out in life-cycle order.
        orders = [phase.order for phase in breakdown]
        assert orders == sorted(orders)
        row = next(iter(breakdown.values())).as_row()
        assert {"phase", "queries", "elapsed_s", "indexing_s"} <= set(row)

    def test_phase_breakdown_matches_lifecycle_accounting(self, uniform_column, workload):
        executor = WorkloadExecutor()
        index = create_index("PMSD", uniform_column, budget=FixedBudget(0.5))
        result = executor.run(index, workload)
        breakdown = result.phase_breakdown()
        for phase, stats in breakdown.items():
            assert index.lifecycle.queries_in(phase) == stats.queries
            assert index.lifecycle.indexing_seconds_in(phase) == pytest.approx(
                stats.indexing_seconds
            )

    def test_compute_phase_breakdown_on_plain_records(self):
        class Record:
            def __init__(self, phase, elapsed, indexing):
                self.phase = phase
                self.elapsed_seconds = elapsed
                self.indexing_seconds = indexing

        records = [
            Record(IndexPhase.CREATION, 1.0, 0.5),
            Record(IndexPhase.CREATION, 2.0, 0.25),
            Record(IndexPhase.CONVERGED, 0.5, 0.0),
        ]
        breakdown = compute_phase_breakdown(records)
        assert breakdown[IndexPhase.CREATION].queries == 2
        assert breakdown[IndexPhase.CREATION].elapsed_seconds == pytest.approx(3.0)
        assert breakdown[IndexPhase.CREATION].indexing_seconds == pytest.approx(0.75)
        assert breakdown[IndexPhase.CONVERGED].queries == 1


class TestDecisionTree:
    def test_point_queries_recommend_lsd(self):
        assert recommend_index(point_query_workload=True).index_class is ProgressiveRadixsortLSD

    def test_skewed_data_recommends_bucketsort(self):
        assert recommend_index(skewed_data=True).index_class is ProgressiveBucketsort

    def test_uniform_data_recommends_msd(self):
        assert recommend_index().index_class is ProgressiveRadixsortMSD

    def test_memory_constrained_recommends_quicksort(self):
        assert recommend_index(memory_constrained=True).index_class is ProgressiveQuicksort

    def test_non_integer_domain_no_longer_forces_quicksort(self):
        # Since the order-preserving key codecs, float64 columns
        # radix-cluster exactly: the data type alone no longer routes to
        # Quicksort — only genuine memory pressure does.
        assert recommend_index(integer_domain=False).index_class is ProgressiveRadixsortMSD
        assert (
            recommend_index(integer_domain=False, skewed_data=True).index_class
            is ProgressiveBucketsort
        )
        assert (
            recommend_index(integer_domain=False, memory_constrained=True).index_class
            is ProgressiveQuicksort
        )

    def test_recommendation_creates_index(self, uniform_column):
        recommendation = recommend_index()
        index = recommendation.create(uniform_column, budget=FixedBudget(0.1))
        assert index.name == recommendation.acronym
