"""Durability subsystem tests: pager, WAL, checkpoints, Database recovery.

The centerpiece is the checkpoint round-trip property: for **all 13
algorithms x 3 budget policies**, serializing an index mid-convergence with
``state_dict()`` and loading it into a fresh index over the same column
yields answers identical to the never-restarted index — pre- and
post-convergence, on int64 and float64 columns, through both the per-query
and the vectorized batch path — while resuming in the same life-cycle phase
(never RAW).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.full_scan import FullScan
from repro.core.phase import IndexPhase
from repro.core.policy import CostModelGreedy, FixedDelta, TimeAdaptive
from repro.core.query import Predicate
from repro.engine.registry import ALGORITHMS
from repro.errors import PersistenceError
from repro.extensions.column_imprints import ProgressiveColumnImprints
from repro.extensions.progressive_hash import ProgressiveHashIndex
from repro.persist.checkpoint import CheckpointManager
from repro.persist.database import Database
from repro.persist.pager import (
    ColumnPager,
    decode_state,
    encode_state,
    map_column_file,
    write_column_file,
)
from repro.persist.wal import WriteAheadLog
from repro.storage.column import SNAPSHOT_CACHE_SIZE, Column

#: The 13 checkpointable algorithms: the full registry plus both extensions.
ALL_ALGORITHMS = {
    **ALGORITHMS,
    "PHASH": ProgressiveHashIndex,
    "PIMP": ProgressiveColumnImprints,
}

POLICIES = {
    "fixed": lambda: FixedDelta(0.25),
    "time-adaptive": lambda: TimeAdaptive(scan_fraction=0.2),
    "greedy": lambda: CostModelGreedy(scan_fraction=0.2),
}


# ----------------------------------------------------------------------
# State codec
# ----------------------------------------------------------------------
def test_state_codec_round_trip():
    state = {
        "name": "x",
        "nested": {"flag": True, "arr": np.arange(10, dtype=np.int64)},
        "list": [1, 2.5, None, np.linspace(0, 1, 5)],
    }
    decoded = decode_state(encode_state(state))
    assert decoded["name"] == "x"
    assert decoded["nested"]["flag"] is True
    assert np.array_equal(decoded["nested"]["arr"], state["nested"]["arr"])
    assert np.allclose(decoded["list"][3], state["list"][3])
    assert decoded["list"][2] is None
    # Decoded arrays must be writable (restored structures mutate in place).
    decoded["nested"]["arr"][0] = 99


def test_state_codec_rejects_garbage():
    with pytest.raises(PersistenceError):
        decode_state(b"not a state blob")


# ----------------------------------------------------------------------
# Pager / mmap column files
# ----------------------------------------------------------------------
def test_column_file_round_trip_and_mmap(tmp_path):
    path = str(tmp_path / "c.col")
    data = np.arange(1000, dtype=np.int64) * 3
    write_column_file(path, data)
    mapped = map_column_file(path)
    assert isinstance(mapped, np.memmap)
    assert np.array_equal(mapped, data)

    column = Column(mapped, name="c")
    assert column.is_mapped
    # Pre-write snapshots share the mapping: zero copies of the base data.
    snapshot = column.snapshot()
    assert snapshot.data.base is not None
    value_sum, count = snapshot.scan_range(0, 300)
    assert count == 101 and value_sum == data[data <= 300].sum()


def test_column_pager_handles_awkward_names(tmp_path):
    pager = ColumnPager(str(tmp_path))
    data = np.arange(10, dtype=np.float64)
    pager.store("weird/../name", data)
    assert np.array_equal(pager.load("weird/../name"), data)
    stored = list(tmp_path.iterdir())
    assert all(entry.parent == tmp_path for entry in stored)


def test_truncated_column_file_is_rejected(tmp_path):
    path = str(tmp_path / "c.col")
    write_column_file(path, np.arange(100, dtype=np.int64))
    with open(path, "r+b") as handle:
        handle.truncate(50)
    with pytest.raises(PersistenceError):
        map_column_file(path)


# ----------------------------------------------------------------------
# Snapshot LRU (read-cache retention regression)
# ----------------------------------------------------------------------
def test_snapshot_cache_is_bounded_and_shared():
    column = Column(np.arange(1000, dtype=np.int64))
    column.insert([5])
    first = column.snapshot()
    # Same version -> same materialized snapshot object (no duplicate copy).
    assert column.snapshot() is first
    # A long write stream must not retain every historical version's cache.
    for number in range(SNAPSHOT_CACHE_SIZE * 4):
        column.insert([number])
        column.snapshot()
    versions = column.cached_snapshot_versions()
    assert len(versions) <= SNAPSHOT_CACHE_SIZE
    assert first.version not in versions  # the old version was evicted ...
    # ... but an evicted version can still be re-materialized correctly.
    again = column.snapshot(first.version)
    assert np.array_equal(again.data, first.data)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
def test_wal_commit_boundary(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append_insert({"a": np.array([1, 2, 3])})
    wal.commit()
    wal.append_insert({"a": np.array([4])})  # never committed
    wal.close()

    _, committed = WriteAheadLog.open(path)
    assert len(committed) == 1
    assert np.array_equal(committed[0].columns["a"], [1, 2, 3])


def test_wal_torn_tail_is_truncated(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append_delete(np.array([7, 8]))
    wal.commit()
    wal.append_insert({"a": np.array([9])})
    wal.close()
    # Tear the last frame mid-payload, as a crash mid-append would.
    with open(path, "r+b") as handle:
        handle.seek(0, 2)
        handle.truncate(handle.tell() - 5)

    reopened, committed = WriteAheadLog.open(path)
    assert len(committed) == 1 and committed[0].kind == "delete"
    # The log stays appendable after truncation.
    reopened.append_insert({"a": np.array([10])})
    reopened.commit()
    reopened.close()
    _, committed = WriteAheadLog.open(path)
    assert [record.kind for record in committed] == ["delete", "insert"]


def test_wal_recovery_discards_uncommitted_frames_permanently(tmp_path):
    """A later commit marker must never resurrect a discarded operation.

    Recovery drops operations after the last commit marker from the delta
    stores; if their frames stayed in the log, the *next* commit marker
    would retroactively cover them and a second recovery would replay
    writes the first recovery correctly discarded.
    """
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append_insert({"a": np.array([100])})
    wal.commit()
    wal.append_insert({"a": np.array([200])})  # crash before commit
    wal.close()

    reopened, committed = WriteAheadLog.open(path)
    assert [np.asarray(r.columns["a"])[0] for r in committed] == [100]
    reopened.append_insert({"a": np.array([300])})
    reopened.commit()
    reopened.close()

    _, committed = WriteAheadLog.open(path)
    values = [int(np.asarray(record.columns["a"])[0]) for record in committed]
    assert values == [100, 300]  # 200 must NOT come back from the dead


def test_wal_mid_file_corruption_is_reported_not_truncated(tmp_path):
    """Damage before valid committed frames must raise, not drop history."""
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append_insert({"a": np.arange(50)})
    wal.commit()
    wal.append_insert({"a": np.arange(50) * 2})
    wal.commit()
    wal.close()
    size = (tmp_path / "wal.log").stat().st_size
    with open(path, "r+b") as handle:
        handle.seek(size // 3)  # inside the first committed insert frame
        byte = handle.read(1)
        handle.seek(size // 3)
        handle.write(bytes([byte[0] ^ 0xFF]))

    with pytest.raises(PersistenceError):
        WriteAheadLog.open(path)
    # The damaged log was left untouched for forensics.
    assert (tmp_path / "wal.log").stat().st_size == size


def test_wal_op_ids_stay_monotone_across_reset(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append_insert({"a": np.array([1])})
    marker = wal.commit()
    wal.reset()
    assert wal.next_op_id == marker + 1
    op = wal.append_insert({"a": np.array([2])})
    assert op > marker
    wal.close()


# ----------------------------------------------------------------------
# Checkpoint manager
# ----------------------------------------------------------------------
def test_checkpoint_publish_and_reload(tmp_path):
    manager = CheckpointManager(str(tmp_path))
    assert manager.load() is None
    manager.write({"op_id": 7, "payload": np.arange(5)})
    state = manager.load()
    assert state["op_id"] == 7
    assert np.array_equal(state["payload"], np.arange(5))
    with pytest.raises(PersistenceError):
        manager.write({"payload": np.arange(2)})  # missing op_id watermark


# ----------------------------------------------------------------------
# Checkpoint round-trip property: 13 algorithms x 3 policies
# ----------------------------------------------------------------------
def _make_data(dtype, rng):
    data = rng.integers(0, 40_000, size=1200)
    if dtype == "float64":
        return data.astype(np.float64) + 0.5
    return data.astype(np.int64)


def _query_predicates(rng, count=14):
    lows = rng.integers(0, 36_000, size=count)
    return [Predicate(int(low), int(low) + 3000) for low in lows]


def _assert_round_trip(cls, policy_factory, data, cut, batch=False):
    """Run ``cut`` queries, checkpoint, restore, and compare both arms."""
    rng = np.random.default_rng(77)
    predicates = _query_predicates(rng)
    original = cls(Column(data.copy(), name="v"), budget=policy_factory())
    for predicate in predicates[:cut]:
        original.query(predicate)
    phase_at_checkpoint = original.phase

    state = decode_state(encode_state(original.state_dict()))
    restored = cls(Column(data.copy(), name="v"), budget=policy_factory())
    restored.load_state(state)
    assert restored.phase is phase_at_checkpoint
    if phase_at_checkpoint is not IndexPhase.INACTIVE:
        assert restored.phase is not IndexPhase.INACTIVE  # never back to RAW

    follow_up = predicates[cut:] or predicates[:6]
    for predicate in follow_up:
        a = original.query(predicate)
        b = restored.query(predicate)
        mask = (data >= predicate.low) & (data <= predicate.high)
        assert a.count == b.count == int(mask.sum())
        assert float(a.value_sum) == pytest.approx(float(data[mask].sum()))
        assert float(b.value_sum) == pytest.approx(float(data[mask].sum()))
    assert restored.phase is original.phase  # construction advanced in lockstep

    if batch:
        lows = np.array([predicate.low for predicate in follow_up])
        highs = np.array([predicate.high for predicate in follow_up])
        batch_a = original.search_many(lows, highs)
        batch_b = restored.search_many(lows, highs)
        assert (batch_a is None) == (batch_b is None)
        if batch_a is not None:
            assert np.array_equal(np.asarray(batch_a[1]), np.asarray(batch_b[1]))
            assert np.allclose(
                np.asarray(batch_a[0], dtype=np.float64),
                np.asarray(batch_b[0], dtype=np.float64),
            )


@pytest.mark.parametrize("algorithm", sorted(ALL_ALGORITHMS))
@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_checkpoint_round_trip_mid_convergence(algorithm, policy):
    rng = np.random.default_rng(13)
    data = _make_data("int64", rng)
    cls = ALL_ALGORITHMS[algorithm]
    for cut in (0, 4):  # before first query, and mid-convergence
        _assert_round_trip(cls, POLICIES[policy], data, cut, batch=True)


@pytest.mark.parametrize("algorithm", sorted(ALL_ALGORITHMS))
def test_checkpoint_round_trip_post_convergence(algorithm):
    rng = np.random.default_rng(29)
    data = _make_data("int64", rng)
    cls = ALL_ALGORITHMS[algorithm]
    # FixedDelta(1.0) converges in a handful of queries for the progressive
    # families; baselines/cracking reach their steady state immediately.
    converged = cls(Column(data.copy(), name="v"), budget=FixedDelta(1.0))
    predicates = _query_predicates(np.random.default_rng(31))
    for predicate in predicates:
        converged.query(predicate)
    state = decode_state(encode_state(converged.state_dict()))
    restored = cls(Column(data.copy(), name="v"), budget=FixedDelta(1.0))
    restored.load_state(state)
    assert restored.phase is converged.phase
    for predicate in predicates[:6]:
        a = converged.query(predicate)
        b = restored.query(predicate)
        assert a.count == b.count
        assert float(a.value_sum) == pytest.approx(float(b.value_sum))


@pytest.mark.parametrize("algorithm", sorted(ALL_ALGORITHMS))
def test_checkpoint_round_trip_float64(algorithm):
    rng = np.random.default_rng(47)
    data = _make_data("float64", rng)
    cls = ALL_ALGORITHMS[algorithm]
    _assert_round_trip(cls, POLICIES["greedy"], data, cut=5, batch=True)


def test_checkpoint_round_trip_mid_merge():
    """A converged index with buffered writes checkpoints mid-MERGE."""
    rng = np.random.default_rng(53)
    data = rng.integers(0, 40_000, size=4000).astype(np.int64)
    column = Column(data.copy(), name="v")
    index = ALGORITHMS["PQ"](column, budget=FixedDelta(1.0))
    predicates = _query_predicates(np.random.default_rng(59))
    for predicate in predicates:
        index.query(predicate)
    assert index.phase is IndexPhase.CONVERGED
    # A tiny delta paces the fold over many queries, so the checkpoint
    # catches the index genuinely mid-MERGE with credit accumulated.
    index.swap_budget(FixedDelta(0.05))
    column.insert(rng.integers(0, 40_000, size=64).astype(np.int64))
    column.delete_rows(np.arange(10, dtype=np.int64))
    index.query(predicates[0])
    assert index.phase is IndexPhase.MERGE

    state = decode_state(encode_state(index.state_dict()))
    # Restore over an equivalent live column carrying the same write history.
    column_b = Column(data.copy(), name="v")
    restored = ALGORITHMS["PQ"](column_b, budget=FixedDelta(0.05))
    column_b.restore_delta(column.delta.state_dict())
    restored.load_state(state)
    assert restored.phase is IndexPhase.MERGE

    visible = np.asarray(column.data)
    for predicate in predicates[:8]:
        a = index.query(predicate)
        b = restored.query(predicate)
        mask = (visible >= predicate.low) & (visible <= predicate.high)
        assert a.count == b.count == int(mask.sum())
        assert float(a.value_sum) == float(b.value_sum) == float(visible[mask].sum())
    # Both arms eventually fold and return to CONVERGED identically.
    assert restored.phase is index.phase


# ----------------------------------------------------------------------
# Database open / close / recover
# ----------------------------------------------------------------------
def test_database_end_to_end_recovery(tmp_path):
    rng = np.random.default_rng(61)
    data = rng.integers(0, 100_000, size=8000)
    directory = str(tmp_path / "db")
    db = Database.create(directory, {"ra": data, "dec": data[::-1].copy()})
    db.create_index("ra", method="PLSD", fixed_delta=0.5)
    for low in (0, 20_000, 60_000):
        db.between("ra", low, low + 10_000)
    db.insert({"ra": [1, 2, 3], "dec": [4, 5, 6]})
    db.update("ra", 0, 100, 77)
    db.delete("ra", 99_000, 100_000)
    db.commit()
    phase_before = db.index_for("ra").phase
    reference = np.asarray(db.table.column("ra").data).copy()
    conj_before = db.where({"ra": (0, 50_000), "dec": (0, 50_000)})
    db.close()

    db = Database.open(directory)
    try:
        assert db.table.column("ra").is_mapped
        assert db.index_for("ra").phase is phase_before
        visible = np.asarray(db.table.column("ra").data)
        assert np.array_equal(np.sort(visible), np.sort(reference))
        result = db.between("ra", 0, 100_000)
        mask = (visible >= 0) & (visible <= 100_000)
        assert result.count == int(mask.sum())
        conj_after = db.where({"ra": (0, 50_000), "dec": (0, 50_000)})
        assert conj_after.count == conj_before.count
    finally:
        db.close(checkpoint=False)


def test_database_recreates_unchekpointed_index_fresh(tmp_path):
    directory = str(tmp_path / "db")
    data = np.arange(3000, dtype=np.int64)
    db = Database.create(directory, {"v": data})
    db.close()  # checkpoint with no indexes

    db = Database.open(directory)
    db.create_index("v", method="PB", budget_fraction=0.2)
    db.between("v", 0, 100)
    db.close(checkpoint=False)  # catalog knows the index; no state saved

    db = Database.open(directory)
    try:
        index = db.index_for("v")
        assert index.name == "PB"
        assert index.phase is IndexPhase.INACTIVE  # fresh, not recovered
        assert db.between("v", 10, 20).count == 11
    finally:
        db.close(checkpoint=False)


def test_database_rejects_failed_writes_from_the_log(tmp_path):
    directory = str(tmp_path / "db")
    db = Database.create(directory, {"v": np.arange(100, dtype=np.int64)})
    with pytest.raises(Exception):
        db.insert({"v": [1], "nope": [2]})  # unknown column
    db.insert([7])
    db.commit()
    db.close(checkpoint=False)

    db = Database.open(directory)
    try:
        # The rejected operation never reached the log: only the valid
        # insert survives recovery.
        assert len(db.table) == 101
    finally:
        db.close(checkpoint=False)


def test_database_refuses_concurrent_opens(tmp_path):
    """Recovery truncates the WAL, so a second live handle is refused."""
    directory = str(tmp_path / "db")
    db = Database.create(directory, {"v": np.arange(100, dtype=np.int64)})
    with pytest.raises(PersistenceError, match="locked"):
        Database.open(directory)
    db.close()
    # A clean close releases the lock; the next open succeeds.
    Database.open(directory).close(checkpoint=False)


def test_close_without_checkpoint_keeps_uncommitted_undurable(tmp_path):
    """close(checkpoint=False) must not promote uncommitted writes."""
    directory = str(tmp_path / "db")
    db = Database.create(directory, {"v": np.arange(100, dtype=np.int64)})
    db.insert([1000])
    db.commit()
    db.insert([2000])  # never committed
    db.close(checkpoint=False)

    db = Database.open(directory)
    try:
        assert db.equals("v", 1000).count == 1
        assert db.equals("v", 2000).count == 0
    finally:
        db.close(checkpoint=False)


def test_database_create_refuses_existing_directory(tmp_path):
    directory = str(tmp_path / "db")
    Database.create(directory, {"v": np.arange(10)}).close()
    with pytest.raises(PersistenceError):
        Database.create(directory, {"v": np.arange(10)})


def test_full_scan_round_trip_via_database(tmp_path):
    """FS has no structures, but its registration must survive restarts."""
    directory = str(tmp_path / "db")
    db = Database.create(directory, {"v": np.arange(500, dtype=np.int64)})
    db.create_index("v", method="FS")
    assert db.between("v", 0, 99).count == 100
    db.close()
    db = Database.open(directory)
    try:
        assert isinstance(db.index_for("v"), FullScan)
        assert db.between("v", 0, 99).count == 100
    finally:
        db.close(checkpoint=False)
