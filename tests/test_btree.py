"""Tests for the B+-tree and the implicit cascade tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree, CascadeTree
from repro.core.query import Predicate


class TestBPlusTreeBulkLoad:
    def test_empty(self):
        tree = BPlusTree.bulk_load(np.array([], dtype=np.int64))
        assert len(tree) == 0
        assert tree.range_query(0, 10).count == 0

    def test_single_leaf(self):
        tree = BPlusTree.bulk_load(np.arange(10), fanout=16)
        assert tree.height == 1
        assert tree.range_query(2, 5).count == 4

    def test_multi_level(self):
        values = np.arange(10_000)
        tree = BPlusTree.bulk_load(values, fanout=16)
        assert tree.height >= 3
        assert tree.to_array().tolist() == values.tolist()

    def test_leaf_chain_covers_all_values(self):
        values = np.arange(1_000)
        tree = BPlusTree.bulk_load(values, fanout=8)
        seen = sum(leaf.size for leaf in tree.iter_leaves())
        assert seen == 1_000

    def test_range_query_sums(self):
        values = np.arange(1_000)
        tree = BPlusTree.bulk_load(values, fanout=32)
        result = tree.range_query(100, 199)
        assert result.count == 100
        assert result.value_sum == sum(range(100, 200))

    def test_range_query_with_duplicates(self):
        values = np.sort(np.array([5] * 100 + list(range(200))))
        tree = BPlusTree.bulk_load(values, fanout=8)
        result = tree.point_query(5)
        assert result.count == 101

    def test_range_query_outside_domain(self):
        tree = BPlusTree.bulk_load(np.arange(100), fanout=8)
        assert tree.range_query(1_000, 2_000).count == 0
        assert tree.range_query(-10, -1).count == 0
        assert tree.range_query(50, 10).count == 0

    def test_contains(self):
        tree = BPlusTree.bulk_load(np.array([1, 5, 9]), fanout=4)
        assert tree.contains(5)
        assert not tree.contains(4)

    def test_query_predicate_interface(self):
        tree = BPlusTree.bulk_load(np.arange(50), fanout=8)
        assert tree.query(Predicate(10, 19)).count == 10

    def test_memory_footprint_positive(self):
        tree = BPlusTree.bulk_load(np.arange(10_000), fanout=32)
        assert tree.memory_footprint() > 10_000 * 8 * 0.9

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=1)


class TestBPlusTreeInsert:
    def test_insert_into_empty(self):
        tree = BPlusTree(fanout=4)
        tree.insert(5)
        assert len(tree) == 1
        assert tree.contains(5)

    def test_insert_many_with_splits(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1_000, size=500)
        tree = BPlusTree(fanout=8)
        for value in values:
            tree.insert(int(value))
        assert len(tree) == 500
        assert tree.to_array().tolist() == sorted(values.tolist())

    def test_insert_after_bulk_load(self):
        tree = BPlusTree.bulk_load(np.arange(0, 100, 2), fanout=8)
        tree.insert(51)
        assert tree.contains(51)
        assert len(tree) == 51

    def test_range_query_after_inserts(self):
        tree = BPlusTree(fanout=4)
        for value in [9, 3, 7, 1, 5, 2, 8, 0, 6, 4]:
            tree.insert(value)
        result = tree.range_query(3, 6)
        assert result.count == 4
        assert result.value_sum == 3 + 4 + 5 + 6

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300))
    def test_property_inserts_keep_sorted_order(self, values):
        tree = BPlusTree(fanout=6)
        for value in values:
            tree.insert(value)
        assert tree.to_array().tolist() == sorted(values)


class TestCascadeTree:
    def test_small_array_has_no_upper_levels(self):
        tree = CascadeTree(np.arange(10), fanout=64)
        assert tree.height == 1
        assert tree.range_query(2, 4).count == 3

    def test_levels_shrink_by_fanout(self):
        values = np.arange(10_000)
        tree = CascadeTree(values, fanout=16)
        sizes = [level.size for level in tree.levels]
        assert sizes[0] == int(np.ceil(10_000 / 16))
        for bigger, smaller in zip(sizes, sizes[1:]):
            assert smaller == int(np.ceil(bigger / 16))

    def test_range_query_matches_reference(self):
        rng = np.random.default_rng(1)
        values = np.sort(rng.integers(0, 100_000, size=50_000))
        tree = CascadeTree(values, fanout=64)
        for _ in range(50):
            low = int(rng.integers(0, 90_000))
            high = low + int(rng.integers(0, 10_000))
            result = tree.range_query(low, high)
            mask = (values >= low) & (values <= high)
            assert result.count == mask.sum()
            assert result.value_sum == values[mask].sum()

    def test_point_query_with_duplicates(self):
        values = np.sort(np.array([7] * 500 + list(range(2_000))))
        tree = CascadeTree(values, fanout=8)
        assert tree.point_query(7).count == 501

    def test_copied_elements_formula(self):
        assert CascadeTree.copied_elements(64, 64) == 0
        assert CascadeTree.copied_elements(64 ** 2, 64) == 64
        assert CascadeTree.copied_elements(64 ** 2 + 1, 64) == 65 + 2

    def test_query_outside_domain(self):
        tree = CascadeTree(np.arange(1_000), fanout=16)
        assert tree.range_query(5_000, 6_000).count == 0
        assert tree.range_query(600, 100).count == 0

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            CascadeTree(np.arange(10), fanout=1)

    def test_memory_footprint_counts_upper_levels_only(self):
        values = np.arange(10_000)
        tree = CascadeTree(values, fanout=16)
        assert 0 < tree.memory_footprint() < values.nbytes
