"""Edge cases shared across the whole index zoo.

Small columns, single elements, constant columns, queries outside the domain,
inverted predicates and repeated identical queries — every index has to cope
with all of them.
"""

import numpy as np
import pytest

from repro.core.budget import MINIMUM_DELTA, AdaptiveBudget, BatchBudget, FixedBudget
from repro.core.phase import IndexPhase
from repro.core.query import Predicate
from repro.engine.registry import ALGORITHMS, PROGRESSIVE_ALGORITHMS
from repro.engine.session import IndexingSession
from repro.errors import InvalidBudgetError, InvalidPredicateError
from repro.progressive.quicksort import ProgressiveQuicksort
from repro.storage.column import Column
from repro.storage.table import Table

ALL_NAMES = sorted(ALGORITHMS)


def build(name: str, data: np.ndarray):
    column = Column(data)
    if name in PROGRESSIVE_ALGORITHMS:
        return ALGORITHMS[name](column, budget=FixedBudget(0.5))
    return ALGORITHMS[name](column)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestTinyColumns:
    def test_single_element_column(self, name):
        index = build(name, np.array([42]))
        for _ in range(5):
            assert index.query(Predicate(42, 42)).count == 1
            assert index.query(Predicate(0, 41)).count == 0
            assert index.query(Predicate(43, 100)).count == 0

    def test_two_element_column(self, name):
        index = build(name, np.array([7, 3]))
        for _ in range(5):
            result = index.query(Predicate(0, 10))
            assert result.count == 2 and result.value_sum == 10

    def test_tiny_constant_column(self, name):
        index = build(name, np.full(17, 5))
        for _ in range(5):
            assert index.query(Predicate(5, 5)).count == 17


@pytest.mark.parametrize("name", ALL_NAMES)
class TestQueryShapes:
    def test_query_covering_entire_domain(self, name, rng):
        data = rng.integers(0, 1_000, size=3_000)
        index = build(name, data)
        for _ in range(5):
            result = index.query(Predicate(-10, 2_000))
            assert result.count == data.size
            assert result.value_sum == data.sum()

    def test_query_below_and_above_domain(self, name, rng):
        data = rng.integers(100, 200, size=2_000)
        index = build(name, data)
        for _ in range(5):
            assert index.query(Predicate(0, 50)).count == 0
            assert index.query(Predicate(500, 600)).count == 0

    def test_boundary_values_are_inclusive(self, name, rng):
        data = rng.integers(0, 100, size=2_000)
        index = build(name, data)
        low, high = int(data.min()), int(data.max())
        for _ in range(5):
            result = index.query(Predicate(low, high))
            assert result.count == data.size

    def test_repeated_identical_query(self, name, rng):
        data = rng.integers(0, 10_000, size=3_000)
        index = build(name, data)
        predicate = Predicate(2_000, 3_000)
        expected = int(((data >= 2_000) & (data <= 3_000)).sum())
        for _ in range(10):
            assert index.query(predicate).count == expected

    def test_alternating_extreme_queries(self, name, rng):
        data = rng.integers(0, 10_000, size=3_000)
        index = build(name, data)
        narrow = Predicate(5_000, 5_001)
        wide = Predicate(0, 10_000)
        for _ in range(5):
            assert index.query(wide).count == data.size
            narrow_expected = int(((data >= 5_000) & (data <= 5_001)).sum())
            assert index.query(narrow).count == narrow_expected


class TestPredicateValidation:
    def test_inverted_predicate_rejected_at_construction(self):
        with pytest.raises(InvalidPredicateError):
            Predicate(10, 5)


class TestBudgetEdgeCases:
    """Zero / exhausted budgets must stall construction, never corrupt it."""

    def test_zero_fixed_budget_answers_exactly_without_advancing(self, rng):
        data = rng.integers(0, 1_000, size=2_000)
        index = ProgressiveQuicksort(Column(data), budget=FixedBudget(0.0))
        expected = int(((data >= 100) & (data <= 300)).sum())
        for _ in range(10):
            assert index.query(Predicate(100, 300)).count == expected
            assert index.last_stats.elements_indexed == 0
        # delta = 0 pins the index in the creation phase forever.
        assert index.phase is IndexPhase.CREATION
        assert not index.converged

    def test_adaptive_budget_exhausted_slack_floors_at_minimum_delta(self):
        budget = AdaptiveBudget(budget_seconds=0.01)
        budget.register_scan_time(1.0)
        # The query alone already exceeds the target cost: no slack remains,
        # yet the returned delta must stay at the convergence floor.
        delta = budget.next_delta(full_work_time=10.0, query_base_cost=100.0)
        assert delta == MINIMUM_DELTA

    def test_adaptive_budget_with_zero_minimum_delta_can_return_zero(self):
        budget = AdaptiveBudget(budget_seconds=0.01, minimum_delta=0.0)
        budget.register_scan_time(1.0)
        delta = budget.next_delta(full_work_time=10.0, query_base_cost=100.0)
        assert delta == 0.0

    def test_adaptive_budget_rejects_non_positive_configuration(self):
        with pytest.raises(InvalidBudgetError):
            AdaptiveBudget(budget_seconds=0.0)
        with pytest.raises(InvalidBudgetError):
            AdaptiveBudget(scan_fraction=-0.1)
        with pytest.raises(InvalidBudgetError):
            AdaptiveBudget()

    def test_exhausted_adaptive_budget_still_converges_index(self, rng):
        data = rng.integers(0, 1_000, size=1_000)
        index = ProgressiveQuicksort(
            Column(data), budget=AdaptiveBudget(budget_seconds=1e-12)
        )
        expected = int(((data >= 0) & (data <= 999)).sum())
        for _ in range(20_000):
            assert index.query(Predicate(0, 999)).count == expected
            if index.converged:
                break
        # The minimum-delta floor guarantees eventual convergence even when
        # the cost model predicts no slack at all.
        assert index.converged

    def test_batch_budget_zero_and_exhausted(self):
        zero = BatchBudget(50, per_query_seconds=0.0)
        assert zero.exhausted
        assert zero.next_delta(1.0) == 0.0
        pool = BatchBudget(2, per_query_seconds=1.0)
        assert pool.next_delta(2.0) == 1.0  # drains the pool entirely
        assert pool.exhausted
        assert pool.next_delta(2.0) == 0.0


class TestSessionQueryEdgeCases:
    """Inverted ranges and absent values through the user-facing API."""

    def make_session(self, rng):
        data = rng.integers(0, 1_000, size=2_000) * 2  # even values only
        session = IndexingSession(Table({"ra": data}))
        session.create_index("ra", method="PQ", budget_fraction=0.2)
        return session, data

    def test_inverted_between_is_empty_and_does_not_advance(self, rng):
        session, _ = self.make_session(rng)
        index = session.index_for("ra")
        before = index.queries_executed
        result = session.between("ra", 500, 100)
        assert result.count == 0 and result.value_sum == 0
        assert index.queries_executed == before
        assert index.phase is IndexPhase.INACTIVE

    def test_inverted_between_on_unindexed_column(self, rng):
        session = IndexingSession(Table({"ra": rng.integers(0, 100, 500)}))
        assert session.between("ra", 50, 10).count == 0

    def test_point_query_on_absent_value(self, rng):
        session, data = self.make_session(rng)
        index = session.index_for("ra")
        # Odd values never occur in the even-only column.
        assert session.equals("ra", 3).count == 0
        assert index.queries_executed == 1  # the query still advances the index
        # Construction keeps progressing correctly after the miss.
        expected = int((data == data[0]).sum())
        for _ in range(60):
            assert session.equals("ra", int(data[0])).count == expected
            if index.converged:
                break
        assert index.converged
        assert session.equals("ra", 3).count == 0

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_absent_point_value_across_algorithms(self, name, rng):
        data = rng.integers(0, 500, size=1_000) * 2
        index = build(name, data)
        for _ in range(5):
            assert index.query(Predicate(7, 7)).count == 0
            assert index.query(Predicate(-3, -3)).count == 0


@pytest.mark.parametrize("name", sorted(PROGRESSIVE_ALGORITHMS))
class TestProgressiveEdgeBehaviour:
    def test_convergence_on_tiny_column(self, name):
        data = np.arange(32)
        index = build(name, data)
        for _ in range(30):
            index.query(Predicate(0, 31))
            if index.converged:
                break
        assert index.converged

    def test_already_sorted_input(self, name):
        data = np.arange(5_000)
        index = build(name, data)
        for _ in range(40):
            result = index.query(Predicate(1_000, 1_999))
            assert result.count == 1_000
            if index.converged:
                break
        assert index.converged

    def test_reverse_sorted_input(self, name, rng):
        data = np.arange(5_000)[::-1].copy()
        index = build(name, data)
        for _ in range(40):
            result = index.query(Predicate(1_000, 1_999))
            assert result.count == 1_000
            if index.converged:
                break
        assert index.converged
