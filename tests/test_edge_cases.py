"""Edge cases shared across the whole index zoo.

Small columns, single elements, constant columns, queries outside the domain,
inverted predicates and repeated identical queries — every index has to cope
with all of them.
"""

import numpy as np
import pytest

from repro.core.budget import FixedBudget
from repro.core.query import Predicate
from repro.engine.registry import ALGORITHMS, PROGRESSIVE_ALGORITHMS
from repro.errors import InvalidPredicateError
from repro.storage.column import Column

ALL_NAMES = sorted(ALGORITHMS)


def build(name: str, data: np.ndarray):
    column = Column(data)
    if name in PROGRESSIVE_ALGORITHMS:
        return ALGORITHMS[name](column, budget=FixedBudget(0.5))
    return ALGORITHMS[name](column)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestTinyColumns:
    def test_single_element_column(self, name):
        index = build(name, np.array([42]))
        for _ in range(5):
            assert index.query(Predicate(42, 42)).count == 1
            assert index.query(Predicate(0, 41)).count == 0
            assert index.query(Predicate(43, 100)).count == 0

    def test_two_element_column(self, name):
        index = build(name, np.array([7, 3]))
        for _ in range(5):
            result = index.query(Predicate(0, 10))
            assert result.count == 2 and result.value_sum == 10

    def test_tiny_constant_column(self, name):
        index = build(name, np.full(17, 5))
        for _ in range(5):
            assert index.query(Predicate(5, 5)).count == 17


@pytest.mark.parametrize("name", ALL_NAMES)
class TestQueryShapes:
    def test_query_covering_entire_domain(self, name, rng):
        data = rng.integers(0, 1_000, size=3_000)
        index = build(name, data)
        for _ in range(5):
            result = index.query(Predicate(-10, 2_000))
            assert result.count == data.size
            assert result.value_sum == data.sum()

    def test_query_below_and_above_domain(self, name, rng):
        data = rng.integers(100, 200, size=2_000)
        index = build(name, data)
        for _ in range(5):
            assert index.query(Predicate(0, 50)).count == 0
            assert index.query(Predicate(500, 600)).count == 0

    def test_boundary_values_are_inclusive(self, name, rng):
        data = rng.integers(0, 100, size=2_000)
        index = build(name, data)
        low, high = int(data.min()), int(data.max())
        for _ in range(5):
            result = index.query(Predicate(low, high))
            assert result.count == data.size

    def test_repeated_identical_query(self, name, rng):
        data = rng.integers(0, 10_000, size=3_000)
        index = build(name, data)
        predicate = Predicate(2_000, 3_000)
        expected = int(((data >= 2_000) & (data <= 3_000)).sum())
        for _ in range(10):
            assert index.query(predicate).count == expected

    def test_alternating_extreme_queries(self, name, rng):
        data = rng.integers(0, 10_000, size=3_000)
        index = build(name, data)
        narrow = Predicate(5_000, 5_001)
        wide = Predicate(0, 10_000)
        for _ in range(5):
            assert index.query(wide).count == data.size
            narrow_expected = int(((data >= 5_000) & (data <= 5_001)).sum())
            assert index.query(narrow).count == narrow_expected


class TestPredicateValidation:
    def test_inverted_predicate_rejected_at_construction(self):
        with pytest.raises(InvalidPredicateError):
            Predicate(10, 5)


@pytest.mark.parametrize("name", sorted(PROGRESSIVE_ALGORITHMS))
class TestProgressiveEdgeBehaviour:
    def test_convergence_on_tiny_column(self, name):
        data = np.arange(32)
        index = build(name, data)
        for _ in range(30):
            index.query(Predicate(0, 31))
            if index.converged:
                break
        assert index.converged

    def test_already_sorted_input(self, name):
        data = np.arange(5_000)
        index = build(name, data)
        for _ in range(40):
            result = index.query(Predicate(1_000, 1_999))
            assert result.count == 1_000
            if index.converged:
                break
        assert index.converged

    def test_reverse_sorted_input(self, name, rng):
        data = np.arange(5_000)[::-1].copy()
        index = build(name, data)
        for _ in range(40):
            result = index.query(Predicate(1_000, 1_999))
            assert result.count == 1_000
            if index.converged:
                break
        assert index.converged
