"""Tests for the progressive B+-tree consolidation."""

import numpy as np
import pytest

from repro.core.query import Predicate
from repro.progressive.consolidation import ProgressiveConsolidator


class TestProgressiveConsolidator:
    def test_small_input_is_immediately_done(self):
        consolidator = ProgressiveConsolidator(np.arange(10), fanout=64)
        assert consolidator.done
        assert consolidator.total_elements == 0
        assert consolidator.progress == 1.0

    def test_total_elements_matches_level_plan(self):
        n = 10_000
        consolidator = ProgressiveConsolidator(np.arange(n), fanout=16)
        expected = 0
        size = n
        while size > 16:
            size = int(np.ceil(size / 16))
            expected += size
        assert consolidator.total_elements == expected

    def test_step_respects_budget(self):
        consolidator = ProgressiveConsolidator(np.arange(10_000), fanout=16)
        copied = consolidator.step(100)
        assert copied == 100
        assert consolidator.copied_elements == 100
        assert not consolidator.done

    def test_progressive_completion(self):
        values = np.sort(np.random.default_rng(0).integers(0, 100_000, size=20_000))
        consolidator = ProgressiveConsolidator(values, fanout=32)
        steps = 0
        while not consolidator.done:
            consolidator.step(64)
            steps += 1
            assert steps < 100_000
        assert consolidator.remaining_elements == 0
        assert consolidator.progress == 1.0
        tree = consolidator.result()
        assert tree.range_query(0, 100_000).count == 20_000

    def test_levels_match_eager_construction(self):
        values = np.arange(5_000)
        consolidator = ProgressiveConsolidator(values, fanout=16)
        consolidator.step(consolidator.total_elements)
        from repro.btree.cascade import CascadeTree

        eager = CascadeTree(values, fanout=16)
        assert len(consolidator.levels) == len(eager.levels)
        for built, expected in zip(consolidator.levels, eager.levels):
            assert built.tolist() == expected.tolist()

    def test_queries_exact_during_consolidation(self):
        rng = np.random.default_rng(1)
        values = np.sort(rng.integers(0, 50_000, size=10_000))
        consolidator = ProgressiveConsolidator(values, fanout=16)
        while not consolidator.done:
            consolidator.step(50)
            low = int(rng.integers(0, 45_000))
            predicate = Predicate(low, low + 5_000)
            result = consolidator.query(predicate)
            mask = (values >= predicate.low) & (values <= predicate.high)
            assert result.count == mask.sum()
            assert result.value_sum == values[mask].sum()

    def test_matching_fraction(self):
        values = np.arange(1_000)
        consolidator = ProgressiveConsolidator(values, fanout=16)
        assert consolidator.matching_fraction(Predicate(0, 99)) == pytest.approx(0.1)
        assert consolidator.matching_fraction(Predicate(5_000, 6_000)) == 0.0

    def test_result_finishes_eagerly_when_requested(self):
        consolidator = ProgressiveConsolidator(np.arange(5_000), fanout=16)
        tree = consolidator.result()
        assert consolidator.done
        assert tree.range_query(10, 19).count == 10

    def test_step_after_done_is_noop(self):
        consolidator = ProgressiveConsolidator(np.arange(10), fanout=64)
        assert consolidator.step(100) == 0

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            ProgressiveConsolidator(np.arange(10), fanout=1)
