"""Tests for the data distributions and workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    SYNTHETIC_PATTERNS,
    Workload,
    generate_pattern,
    skewed_data,
    skyserver_data,
    skyserver_workload,
    uniform_data,
)
from repro.workloads.patterns import POINT_QUERY_PATTERNS, to_point_queries
from repro.workloads.skyserver import DEGREE_SCALE, skyserver_benchmark


class TestDistributions:
    def test_uniform_unique_permutation(self):
        data = uniform_data(10_000, rng=np.random.default_rng(0))
        assert data.size == 10_000
        assert np.unique(data).size == 10_000
        assert data.min() == 0 and data.max() == 9_999

    def test_uniform_with_larger_domain(self):
        data = uniform_data(1_000, domain=1_000_000, rng=np.random.default_rng(0))
        assert data.max() < 1_000_000

    def test_skewed_concentrates_in_middle(self):
        n = 50_000
        data = skewed_data(n, rng=np.random.default_rng(0))
        middle = ((data >= 0.45 * n) & (data <= 0.55 * n)).mean()
        assert middle > 0.85

    def test_skewed_parameters_validated(self):
        with pytest.raises(WorkloadError):
            skewed_data(100, hot_fraction=0.0)
        with pytest.raises(WorkloadError):
            skewed_data(0)

    def test_uniform_parameters_validated(self):
        with pytest.raises(WorkloadError):
            uniform_data(0)
        with pytest.raises(WorkloadError):
            uniform_data(10, domain=-1)


class TestWorkloadContainer:
    def test_from_bounds(self):
        workload = Workload.from_bounds("test", [0, 10], [5, 20], 0, 100)
        assert len(workload) == 2
        assert workload[0].low == 0 and workload[0].high == 5
        assert workload.mean_selectivity() == pytest.approx(0.075)

    def test_head(self):
        workload = Workload.from_bounds("test", [0, 10, 20], [5, 15, 25], 0, 100)
        assert len(workload.head(2)) == 2

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            Workload("empty", [])

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(WorkloadError):
            Workload.from_bounds("bad", [0, 1], [2], 0, 10)


class TestSyntheticPatterns:
    @pytest.mark.parametrize("pattern", sorted(SYNTHETIC_PATTERNS))
    def test_all_patterns_generate_valid_ranges(self, pattern):
        workload = generate_pattern(pattern, 0, 100_000, 50, selectivity=0.1,
                                    rng=np.random.default_rng(1))
        assert len(workload) == 50
        for predicate in workload:
            assert 0 <= predicate.low <= predicate.high <= 100_000

    @pytest.mark.parametrize("pattern", ["SeqOver", "Random", "Skew", "Periodic"])
    def test_fixed_selectivity_patterns_have_constant_width(self, pattern):
        workload = generate_pattern(pattern, 0, 10_000, 30, selectivity=0.1,
                                    rng=np.random.default_rng(2))
        widths = {round(p.width()) for p in workload}
        assert len(widths) == 1
        assert widths.pop() == pytest.approx(1_000, rel=0.01)

    def test_seq_over_sweeps_forward(self):
        workload = generate_pattern("SeqOver", 0, 10_000, 10, selectivity=0.05)
        lows = [p.low for p in workload]
        assert lows == sorted(lows)

    def test_zoom_in_narrows(self):
        workload = generate_pattern("ZoomIn", 0, 10_000, 20)
        widths = [p.width() for p in workload]
        assert widths[0] > widths[-1]
        assert all(b <= a * 1.0001 for a, b in zip(widths, widths[1:]))

    def test_zoom_out_alternate_widens(self):
        workload = generate_pattern("ZoomOutAlt", 0, 10_000, 20)
        widths = [p.width() for p in workload]
        assert widths[-1] > widths[0]

    def test_skew_concentrates_queries(self):
        workload = generate_pattern("Skew", 0, 100_000, 200, rng=np.random.default_rng(3))
        centres = np.array([(p.low + p.high) / 2 for p in workload])
        hot = ((centres > 35_000) & (centres < 65_000)).mean()
        assert hot > 0.8

    def test_periodic_revisits_positions(self):
        workload = generate_pattern("Periodic", 0, 10_000, 40, selectivity=0.05)
        lows = [round(p.low) for p in workload]
        assert lows[0] == lows[10] == lows[20]

    def test_point_query_conversion(self):
        workload = generate_pattern("Random", 0, 10_000, 20, point_queries=True)
        assert workload.point_queries
        assert all(p.is_point for p in workload)

    def test_point_query_pattern_list(self):
        assert set(POINT_QUERY_PATTERNS).issubset(SYNTHETIC_PATTERNS)

    def test_to_point_queries_uses_range_centres(self):
        workload = Workload.from_bounds("x", [0], [10], 0, 100)
        points = to_point_queries(workload)
        assert points[0].low == 5 and points[0].is_point

    def test_unknown_pattern_rejected(self):
        with pytest.raises(WorkloadError):
            generate_pattern("DoesNotExist", 0, 1, 10)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            generate_pattern("Random", 10, 0, 5)
        with pytest.raises(WorkloadError):
            generate_pattern("Random", 0, 10, 0)
        with pytest.raises(WorkloadError):
            generate_pattern("Random", 0, 10, 5, selectivity=0.0)


class TestSkyServer:
    def test_data_domain_and_type(self):
        data = skyserver_data(20_000, rng=np.random.default_rng(0))
        assert data.dtype == np.int64
        assert data.min() >= 0
        assert data.max() < 360 * DEGREE_SCALE

    def test_data_is_multimodal(self):
        data = skyserver_data(50_000, rng=np.random.default_rng(0))
        counts, _ = np.histogram(data, bins=50)
        assert counts.max() > 3 * counts.mean()

    def test_workload_ranges_within_domain(self):
        workload = skyserver_workload(200, rng=np.random.default_rng(0))
        for predicate in workload:
            assert 0 <= predicate.low <= predicate.high <= 360 * DEGREE_SCALE

    def test_workload_is_spatially_clustered(self):
        workload = skyserver_workload(400, segment_length=50, rng=np.random.default_rng(0))
        centres = np.array([(p.low + p.high) / 2 for p in workload])
        jumps = np.abs(np.diff(centres))
        domain = 360 * DEGREE_SCALE
        # Within a segment the centre drifts slowly; the median jump must be
        # far smaller than a random workload's expected jump (~domain / 3).
        assert np.median(jumps) < domain * 0.05

    def test_benchmark_helper(self):
        data, workload = skyserver_benchmark(5_000, 50, rng=np.random.default_rng(1))
        assert data.size == 5_000
        assert len(workload) == 50

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            skyserver_data(0)
        with pytest.raises(WorkloadError):
            skyserver_workload(0)
        with pytest.raises(WorkloadError):
            skyserver_workload(10, segment_length=0)
