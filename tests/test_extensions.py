"""Tests for the future-work extensions (Section 6 of the paper)."""

import numpy as np
import pytest

from repro.core.budget import FixedBudget
from repro.core.phase import IndexPhase
from repro.core.query import Predicate
from repro.extensions import ProgressiveColumnImprints, ProgressiveHashIndex
from repro.storage.column import Column

from tests.conftest import (
    assert_matches_brute_force,
    random_point_predicates,
    random_range_predicates,
)


class TestProgressiveHashIndex:
    def test_point_queries_exact_during_build(self, uniform_column, uniform_data, rng):
        index = ProgressiveHashIndex(uniform_column, budget=FixedBudget(0.2))
        predicates = random_point_predicates(uniform_data, 60, rng)
        assert_matches_brute_force(index, uniform_data, predicates)

    def test_range_queries_fall_back_to_scans(self, uniform_column, uniform_data, rng):
        index = ProgressiveHashIndex(uniform_column, budget=FixedBudget(0.2))
        predicates = random_range_predicates(uniform_data, 30, rng)
        assert_matches_brute_force(index, uniform_data, predicates)

    def test_convergence(self, uniform_column, uniform_data, rng):
        index = ProgressiveHashIndex(uniform_column, budget=FixedBudget(0.25))
        for predicate in random_point_predicates(uniform_data, 10, rng):
            index.query(predicate)
        assert index.phase is IndexPhase.CONVERGED
        assert index.elements_inserted == uniform_data.size

    def test_zero_delta_never_converges(self, uniform_column, uniform_data, rng):
        index = ProgressiveHashIndex(uniform_column, budget=FixedBudget(0.0))
        for predicate in random_point_predicates(uniform_data, 5, rng):
            index.query(predicate)
        assert not index.converged
        assert index.elements_inserted == 0

    def test_duplicates_are_aggregated(self):
        data = np.array([7, 7, 7, 3, 3, 9], dtype=np.int64)
        index = ProgressiveHashIndex(Column(data), budget=FixedBudget(1.0))
        result = index.query(Predicate(7, 7))
        assert result.count == 3 and result.value_sum == 21
        assert index.converged

    def test_memory_footprint_grows_with_distinct_values(self, uniform_column):
        index = ProgressiveHashIndex(uniform_column, budget=FixedBudget(0.5))
        index.query(Predicate(0, 0))
        first = index.memory_footprint()
        index.query(Predicate(0, 0))
        assert index.memory_footprint() >= first > 0


class TestProgressiveColumnImprints:
    def test_range_queries_exact_during_build(self, uniform_column, uniform_data, rng):
        index = ProgressiveColumnImprints(uniform_column, budget=FixedBudget(0.2))
        predicates = random_range_predicates(uniform_data, 40, rng)
        assert_matches_brute_force(index, uniform_data, predicates)

    def test_point_queries_exact(self, uniform_column, uniform_data, rng):
        index = ProgressiveColumnImprints(uniform_column, budget=FixedBudget(0.3))
        predicates = random_point_predicates(uniform_data, 40, rng)
        assert_matches_brute_force(index, uniform_data, predicates)

    def test_convergence_and_block_count(self, uniform_column, uniform_data, rng):
        index = ProgressiveColumnImprints(
            uniform_column, budget=FixedBudget(0.5), block_elements=128
        )
        for predicate in random_range_predicates(uniform_data, 10, rng):
            index.query(predicate)
        assert index.converged
        assert index.blocks_imprinted == int(np.ceil(uniform_data.size / 128))

    def test_imprints_prune_narrow_queries_on_clustered_data(self):
        # Clustered (sorted) data: a narrow range touches only a few blocks.
        data = np.arange(50_000, dtype=np.int64)
        index = ProgressiveColumnImprints(Column(data), budget=FixedBudget(1.0))
        index.query(Predicate(0, 10))  # builds all imprints
        assert index.converged
        narrow = Predicate(1_000, 1_500)
        assert index.pruning_fraction(narrow) > 0.9
        result = index.query(narrow)
        assert result.count == 501

    def test_all_equal_column(self):
        data = np.full(1_000, 4, dtype=np.int64)
        index = ProgressiveColumnImprints(Column(data), budget=FixedBudget(1.0))
        for _ in range(3):
            assert index.query(Predicate(4, 4)).count == 1_000
            assert index.query(Predicate(5, 9)).count == 0
        assert index.converged

    def test_invalid_parameters(self, uniform_column):
        with pytest.raises(ValueError):
            ProgressiveColumnImprints(uniform_column, n_bins=1)
        with pytest.raises(ValueError):
            ProgressiveColumnImprints(uniform_column, block_elements=0)

    def test_memory_footprint(self, uniform_column):
        index = ProgressiveColumnImprints(uniform_column, budget=FixedBudget(1.0))
        assert index.memory_footprint() == 0
        index.query(Predicate(0, 10))
        assert index.memory_footprint() > 0
