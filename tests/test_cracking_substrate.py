"""Tests for the cracking substrate: cracker index, cracker column, kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cracking.cracker_column import CrackerColumn, upper_exclusive
from repro.cracking.cracker_index import AVLCrackerIndex, CrackerIndex
from repro.cracking.kernels import (
    choose_kernel,
    partition_branched,
    partition_predicated,
    partition_two_sided,
)
from repro.storage.column import Column


class TestCrackerIndex:
    def test_initial_single_piece(self):
        index = CrackerIndex(100, 0, 1_000)
        piece = index.piece_for(500)
        assert (piece.start, piece.end) == (0, 100)
        assert index.n_pieces == 1

    def test_piece_lookup_after_cracks(self):
        index = CrackerIndex(100, 0, 1_000)
        index.add(300, 30)
        index.add(700, 70)
        assert index.n_pieces == 3
        assert (index.piece_for(100).start, index.piece_for(100).end) == (0, 30)
        assert (index.piece_for(300).start, index.piece_for(300).end) == (30, 70)
        assert (index.piece_for(999).start, index.piece_for(999).end) == (70, 100)

    def test_piece_value_bounds(self):
        index = CrackerIndex(100, 0, 1_000)
        index.add(300, 30)
        piece = index.piece_for(100)
        assert piece.value_low == 0 and piece.value_high == 300

    def test_position_of(self):
        index = CrackerIndex(100, 0, 1_000)
        index.add(300, 30)
        assert index.position_of(300) == 30
        assert index.position_of(299) is None

    def test_largest_piece(self):
        index = CrackerIndex(100, 0, 1_000)
        index.add(100, 10)
        index.add(900, 90)
        largest = index.largest_piece()
        assert (largest.start, largest.end) == (10, 90)

    def test_piece_sizes(self):
        index = CrackerIndex(100, 0, 1_000)
        index.add(500, 40)
        assert index.piece_sizes() == [40, 60]

    def test_add_existing_key_replaces_position(self):
        index = CrackerIndex(100, 0, 1_000)
        index.add(300, 30)
        index.add(300, 35)
        assert len(index) == 1
        assert index.position_of(300) == 35


class TestCrackerIndexMatchesAVLReference:
    """Differential: the flat-array index vs. the seed's AVL-backed one.

    The AVL implementation is kept precisely to serve as this oracle; every
    query of every operation sequence must agree between the two.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=400),
                st.integers(min_value=0, max_value=1_000),
            ),
            min_size=0,
            max_size=60,
        ),
        probes=st.lists(
            st.floats(min_value=-10, max_value=410, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
    )
    def test_property_same_answers_for_any_sequence(self, entries, probes):
        flat = CrackerIndex(1_000, -50.0, 450.0)
        reference = AVLCrackerIndex(1_000, -50.0, 450.0)
        for key, position in entries:
            flat.add(key, position)
            reference.add(key, position)
        assert len(flat) == len(reference)
        assert flat.n_pieces == reference.n_pieces
        assert list(flat.boundaries()) == list(reference.boundaries())
        assert flat.piece_sizes() == reference.piece_sizes()
        assert flat.largest_piece() == reference.largest_piece()
        for probe in probes:
            assert flat.position_of(probe) == reference.position_of(probe)
            assert flat.piece_for(probe) == reference.piece_for(probe)

    def test_float_keys_including_nextafter_bounds(self, rng):
        flat = CrackerIndex(10_000, 0.0, 1.0)
        reference = AVLCrackerIndex(10_000, 0.0, 1.0)
        keys = rng.uniform(0, 1, size=200)
        for key in keys.tolist():
            bumped = upper_exclusive(key, np.dtype(np.float64))
            position = int(key * 10_000)
            flat.add(key, position)
            flat.add(bumped, position)
            reference.add(key, position)
            reference.add(bumped, position)
        assert list(flat.boundaries()) == list(reference.boundaries())
        for key in keys.tolist():
            assert flat.position_of(key) == reference.position_of(key)

    def test_capacity_growth_beyond_initial_allocation(self):
        flat = CrackerIndex(100_000, 0, 100_000)
        reference = AVLCrackerIndex(100_000, 0, 100_000)
        for key in range(1_000):
            flat.add(key * 100, key * 100)
            reference.add(key * 100, key * 100)
        assert len(flat) == 1_000
        assert list(flat.boundaries()) == list(reference.boundaries())


class TestUpperExclusive:
    def test_integer(self):
        assert upper_exclusive(10, np.dtype(np.int64)) == 11

    def test_float(self):
        bumped = upper_exclusive(10.0, np.dtype(np.float64))
        assert bumped > 10.0
        assert np.nextafter(10.0, np.inf) == bumped


class TestCrackerColumn:
    def make(self, data):
        return CrackerColumn(Column(np.asarray(data, dtype=np.int64)))

    def test_crack_partitions_around_value(self, rng):
        data = rng.integers(0, 1_000, size=2_000)
        cracker = self.make(data)
        position = cracker.crack(500)
        assert np.all(cracker.values[:position] < 500)
        assert np.all(cracker.values[position:] >= 500)
        assert cracker.n_pieces == 2

    def test_crack_is_idempotent(self, rng):
        data = rng.integers(0, 1_000, size=500)
        cracker = self.make(data)
        first = cracker.crack(300)
        swaps_after_first = cracker.swaps_performed
        second = cracker.crack(300)
        assert first == second
        assert cracker.swaps_performed == swaps_after_first

    def test_values_remain_a_permutation(self, rng):
        data = rng.integers(0, 10_000, size=3_000)
        cracker = self.make(data)
        for pivot in rng.integers(0, 10_000, size=20):
            cracker.crack(int(pivot))
        assert np.array_equal(np.sort(cracker.values), np.sort(data))

    def test_range_query_matches_reference(self, rng):
        data = rng.integers(0, 10_000, size=5_000)
        cracker = self.make(data)
        for _ in range(50):
            low = int(rng.integers(0, 9_000))
            high = low + 500
            result = cracker.range_query(low, high)
            mask = (data >= low) & (data <= high)
            assert result.count == mask.sum()
            assert result.value_sum == data[mask].sum()

    def test_range_query_without_cracking_matches_reference(self, rng):
        data = rng.integers(0, 10_000, size=5_000)
        cracker = self.make(data)
        # Crack a few arbitrary pivots so that queries span several pieces.
        for pivot in (1_000, 4_000, 8_000):
            cracker.crack(pivot)
        pieces_before = cracker.n_pieces
        for _ in range(50):
            low = int(rng.integers(0, 9_000))
            high = low + int(rng.integers(0, 2_000))
            result = cracker.range_query_without_cracking(low, high)
            mask = (data >= low) & (data <= high)
            assert result.count == mask.sum()
            assert result.value_sum == data[mask].sum()
        assert cracker.n_pieces == pieces_before  # no reorganisation happened

    def test_is_fully_sorted_detects_sorted_state(self):
        cracker = self.make(np.arange(100))
        assert cracker.is_fully_sorted()
        cracker = self.make([3, 1, 2])
        assert not cracker.is_fully_sorted()

    def test_memory_footprint(self):
        cracker = self.make(np.arange(1_000))
        assert cracker.memory_footprint() == 1_000 * 8

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(st.integers(min_value=0, max_value=500), min_size=2, max_size=300),
        pivots=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=20),
        low=st.integers(min_value=0, max_value=500),
        width=st.integers(min_value=0, max_value=200),
    )
    def test_property_queries_exact_after_arbitrary_cracks(self, data, pivots, low, width):
        array = np.array(data, dtype=np.int64)
        cracker = CrackerColumn(Column(array))
        for pivot in pivots:
            cracker.crack(pivot)
        high = low + width
        result = cracker.range_query(low, high)
        mask = (array >= low) & (array <= high)
        assert result.count == mask.sum()
        assert result.value_sum == array[mask].sum()


class TestKernels:
    @pytest.mark.parametrize(
        "kernel", [partition_branched, partition_predicated, partition_two_sided]
    )
    def test_kernels_partition_correctly(self, kernel, rng):
        values = rng.integers(0, 100, size=200)
        pivot = 50
        expected_low = np.sort(values[values < pivot])
        working = values.copy()
        boundary = kernel(working, pivot)
        assert boundary == expected_low.size
        assert np.all(working[:boundary] < pivot)
        assert np.all(working[boundary:] >= pivot)
        assert np.array_equal(np.sort(working), np.sort(values))

    def test_kernels_agree_with_each_other(self, rng):
        values = rng.integers(0, 1_000, size=500)
        pivot = 321
        results = []
        for kernel in (partition_branched, partition_predicated, partition_two_sided):
            working = values.copy()
            results.append(kernel(working, pivot))
        assert len(set(results)) == 1

    def test_choose_kernel_decision_tree(self):
        assert choose_kernel(10, 0.5) is partition_branched
        assert choose_kernel(10, 0.01) is partition_predicated
        assert choose_kernel(10_000, 0.5) is partition_predicated
        assert choose_kernel(10_000_000, 0.5) is partition_two_sided
