"""Unit coverage of the out-of-core substrate's building blocks.

Codec round-trips of the v2 compressed column format, the block cache's
pinning and eviction, the spillable scratch allocator, lazy chain views,
the streamed partition kernel, sealed delta runs, and the incremental
checkpoint's content-addressed part reuse.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cracking.kernels import partition_predicated, partition_streamed
from repro.errors import PersistenceError
from repro.persist.checkpoint import CheckpointManager
from repro.persist.compress import (
    BlockCache,
    PagedArray,
    write_compressed_column,
)
from repro.persist.pager import map_column_file
from repro.storage.delta import SealedRun, SortedRunStore
from repro.storage.lazy import ChainArray, array_chunks, is_lazy
from repro.storage.membudget import MemoryBudget
from repro.storage.scratch import ScratchAllocator


# ----------------------------------------------------------------------
# Compressed column format
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "data",
    [
        np.arange(10_000, dtype=np.int64) + 1_000_000_000,      # FOR-friendly
        np.tile(np.array([3, 7, 11], dtype=np.int64), 4000),    # DICT-friendly
        np.random.default_rng(0).normal(size=9999),             # RAW floats
        np.random.default_rng(1).integers(-(2**40), 2**40, 7777),
    ],
    ids=["for", "dict", "raw-float", "wide-int"],
)
def test_compressed_round_trip(tmp_path, data):
    path = str(tmp_path / "c.col")
    stats = write_compressed_column(path, data, block_rows=1024)
    assert stats["rows"] == data.size
    paged = PagedArray.open(path)
    assert is_lazy(paged)
    assert paged.dtype == data.dtype
    np.testing.assert_array_equal(np.asarray(paged), data)
    # Random access forms: scalar, slice, fancy, boolean.
    assert paged[5] == data[5]
    np.testing.assert_array_equal(paged[100:3000], data[100:3000])
    idx = np.random.default_rng(2).integers(0, data.size, 500)
    np.testing.assert_array_equal(paged.take(idx), data[idx])
    assert paged.min() == data.min() and paged.max() == data.max()


def test_chunked_write_matches_monolithic(tmp_path):
    data = np.random.default_rng(3).integers(0, 1000, 5000).astype(np.int64)
    chunked, whole = str(tmp_path / "a.col"), str(tmp_path / "b.col")
    write_compressed_column(chunked, iter(np.array_split(data, 13)), block_rows=256)
    write_compressed_column(whole, data, block_rows=256)
    np.testing.assert_array_equal(
        np.asarray(PagedArray.open(chunked)), np.asarray(PagedArray.open(whole))
    )


def test_block_minmax_bounds_every_block(tmp_path):
    data = np.random.default_rng(4).integers(0, 10_000, 4000).astype(np.int64)
    path = str(tmp_path / "c.col")
    write_compressed_column(path, data, block_rows=512)
    paged = PagedArray.open(path)
    mins, maxs = paged.block_minmax()
    for block, (low, high) in enumerate(zip(mins, maxs)):
        chunk = data[block * 512 : (block + 1) * 512]
        assert low == chunk.min() and high == chunk.max()


def test_map_column_file_sniffs_v2(tmp_path):
    data = np.arange(2048, dtype=np.int64)
    path = str(tmp_path / "c.col")
    write_compressed_column(path, data, block_rows=256)
    mapped = map_column_file(path)
    assert isinstance(mapped, PagedArray)
    np.testing.assert_array_equal(np.asarray(mapped), data)


def test_block_cache_eviction_and_pinning(tmp_path):
    data = np.arange(64 * 1024, dtype=np.int64)
    path = str(tmp_path / "c.col")
    write_compressed_column(path, data, block_rows=1024)  # 8 KB per block
    cache = BlockCache(capacity_bytes=3 * 8192)
    paged = PagedArray.open(path, cache=cache)
    np.asarray(paged)  # touch every block
    stats = cache.stats()
    assert stats["evictions"] > 0
    assert cache.resident_bytes <= 3 * 8192
    # A pinned block survives a full sweep of the other blocks.
    pinned = cache.pin(paged.reader, 0)
    np.asarray(paged)
    np.testing.assert_array_equal(pinned, data[:1024])
    assert cache.resident_bytes >= pinned.nbytes
    cache.unpin(paged.reader, 0)
    hits_before = cache.stats()["hits"]
    paged[100]
    assert cache.stats()["hits"] > hits_before or cache.stats()["misses"] > 0


# ----------------------------------------------------------------------
# Scratch allocator + lazy views
# ----------------------------------------------------------------------
def test_scratch_allocator_spills_past_budget(tmp_path):
    allocator = ScratchAllocator(1 << 20, str(tmp_path))
    small = allocator.allocate(100, np.int64)
    assert isinstance(small, np.ndarray) and not isinstance(small, np.memmap)
    big = allocator.allocate(1_000_000, np.int64)  # 8 MB >> 1 MB budget
    assert isinstance(big, np.memmap)
    big[:] = 7
    assert int(big.sum()) == 7_000_000
    stats = allocator.stats()
    assert stats["spill_count"] >= 1
    allocator.trim()  # must not disturb spilled contents
    assert int(big.sum()) == 7_000_000


def test_chain_array_concatenates_lazily(tmp_path):
    left = np.arange(1000, dtype=np.int64)
    right = np.arange(1000, 1500, dtype=np.int64)
    chain = ChainArray([left, right])
    assert len(chain) == 1500 and is_lazy(chain)
    np.testing.assert_array_equal(np.asarray(chain), np.arange(1500))
    np.testing.assert_array_equal(chain[990:1010], np.arange(990, 1010))
    assert chain.min() == 0 and chain.max() == 1499
    offsets = [offset for offset, _ in array_chunks(chain, 256)]
    assert offsets[0] == 0 and offsets[-1] < 1500


def test_partition_streamed_matches_predicated():
    rng = np.random.default_rng(5)
    for size in (0, 1, 100, 4097):
        values = rng.integers(0, 1000, size).astype(np.int64)
        expected = np.sort(values.copy())
        streamed = values.copy()
        boundary = partition_streamed(streamed, 500, chunk_rows=64)
        reference = values.copy()
        want_boundary = partition_predicated(reference, 500)
        assert boundary == want_boundary
        assert np.all(streamed[:boundary] < 500)
        assert np.all(streamed[boundary:] >= 500)
        np.testing.assert_array_equal(np.sort(streamed), expected)


def test_partition_streamed_uses_scratch_allocator(tmp_path):
    allocator = ScratchAllocator(1 << 20, str(tmp_path))
    values = np.random.default_rng(6).integers(0, 100, 500_000).astype(np.int64)
    boundary = partition_streamed(values, 50, chunk_rows=10_000,
                                  scratch_allocator=allocator)
    assert np.all(values[:boundary] < 50) and np.all(values[boundary:] >= 50)
    assert allocator.stats()["spill_count"] >= 1


# ----------------------------------------------------------------------
# Sealed delta runs
# ----------------------------------------------------------------------
def test_sealed_run_corrections_are_exact(tmp_path):
    values = np.sort(np.random.default_rng(7).integers(0, 1000, 5000)).astype(np.int64)
    run = SealedRun(values, directory=str(tmp_path))
    for low, high in ((0, 999), (100, 100), (500, 700), (1000, 2000)):
        mask = (values >= low) & (values <= high)
        got_sum, got_count = run.correction(low, high)
        assert int(got_count) == int(mask.sum())
        assert int(got_sum) == int(values[mask].sum(dtype=np.int64))
    np.testing.assert_array_equal(run.materialize(), values)


def test_sorted_run_store_accumulates_exactly(tmp_path):
    store = SortedRunStore(directory=str(tmp_path))
    rng = np.random.default_rng(8)
    everything = []
    for _ in range(4):
        chunk = np.sort(rng.integers(0, 10_000, 3000)).astype(np.int64)
        store.seal(chunk)
        everything.append(chunk)
    merged = np.sort(np.concatenate(everything))
    assert store.total_rows == merged.size
    np.testing.assert_array_equal(store.merged(), merged)
    lows = np.array([0, 500, 9000])
    highs = np.array([10_000, 1500, 9100])
    sums, counts = store.correct_many(lows, highs)
    for i in range(lows.size):
        mask = (merged >= lows[i]) & (merged <= highs[i])
        assert int(counts[i]) == int(mask.sum())
        assert int(sums[i]) == int(merged[mask].sum(dtype=np.int64))


# ----------------------------------------------------------------------
# Incremental checkpoints
# ----------------------------------------------------------------------
def test_incremental_checkpoint_reuses_unchanged_parts(tmp_path):
    manager = CheckpointManager(str(tmp_path))
    state = {
        "op_id": 3,
        "columns": {"a": {"rows": np.arange(1000)}, "b": None},
        "indexes": {"a": {"tree": np.arange(5000), "phase": "refinement"}},
    }
    manager.write(state)
    first = dict(manager.last_write_stats)
    assert first["parts_written"] == 2 and first["parts_reused"] == 0

    # Unchanged state: nothing is rewritten.
    manager.write(state)
    second = dict(manager.last_write_stats)
    assert second["parts_written"] == 0 and second["parts_reused"] == 2
    assert second["bytes_written"] == 0

    # One subtree changes: exactly one part is rewritten, and the stale
    # part is garbage-collected after publication.
    state["indexes"]["a"] = {"tree": np.arange(6000), "phase": "converged"}
    manager.write(state)
    third = dict(manager.last_write_stats)
    assert third["parts_written"] == 1 and third["parts_reused"] == 1
    parts = [p for p in os.listdir(manager.parts_directory) if p.endswith(".part")]
    assert len(parts) == 2

    loaded = manager.load()
    assert loaded["op_id"] == 3
    np.testing.assert_array_equal(loaded["columns"]["a"]["rows"], np.arange(1000))
    assert loaded["columns"]["b"] is None
    assert loaded["indexes"]["a"]["phase"] == "converged"
    np.testing.assert_array_equal(loaded["indexes"]["a"]["tree"], np.arange(6000))

    summary = manager.summary()
    assert summary["op_id"] == 3 and summary["parts"] == 2

    manager.remove()
    assert manager.load() is None
    assert not [p for p in os.listdir(manager.parts_directory)
                if p.endswith(".part")]


def test_checkpoint_part_corruption_is_detected(tmp_path):
    manager = CheckpointManager(str(tmp_path))
    manager.write({"op_id": 1, "indexes": {"v": {"tree": np.arange(100)}}})
    (part,) = [p for p in os.listdir(manager.parts_directory) if p.endswith(".part")]
    path = os.path.join(manager.parts_directory, part)
    with open(path, "r+b") as handle:
        handle.seek(50)
        byte = handle.read(1)
        handle.seek(50)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(PersistenceError):
        manager.load()


def test_monolithic_v1_checkpoint_still_loads(tmp_path):
    """A pre-incremental checkpoint (subtrees inline) decodes unchanged."""
    import struct
    import zlib

    from repro.persist.checkpoint import CHECKPOINT_MAGIC, _HEADER
    from repro.persist.pager import encode_state

    state = {"op_id": 9, "indexes": {"v": {"tree": np.arange(64)}}, "columns": {}}
    payload = encode_state(state)
    blob = _HEADER.pack(CHECKPOINT_MAGIC, len(payload), zlib.crc32(payload)) + payload
    manager = CheckpointManager(str(tmp_path))
    with open(manager.path, "wb") as handle:
        handle.write(blob)
    loaded = manager.load()
    assert loaded["op_id"] == 9
    np.testing.assert_array_equal(loaded["indexes"]["v"]["tree"], np.arange(64))


def test_memory_budget_derivations_scale():
    small, large = MemoryBudget(1), MemoryBudget(1 << 30)
    assert small.total_bytes == 1 << 20  # clamped floor
    assert large.cache_bytes == (1 << 30) // 4
    assert large.chunk_rows(np.int64) <= 1 << 22
    assert small.chunk_rows(np.int64) >= 1 << 14
    assert MemoryBudget.coerce(None) is None
    assert MemoryBudget.coerce(large) is large
