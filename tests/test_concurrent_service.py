"""Concurrency test harness: differential oracle for the serving layer.

The tentpole property of the concurrent query service is MVCC exactness
under races: N reader threads (each pinned to a committed snapshot version)
interleave arbitrarily with the single writer, while every query's index
work is serialized through the :class:`~repro.serve.scheduler.
ProgressiveScheduler`'s work lanes.  The oracle here is *serial replay*:
the writer records every committed operation, the test replays the same
history into plain NumPy arrays (one per committed version), and every
answer any reader observed — whatever the interleaving — must equal the
brute-force aggregate over the array of its pinned version.  No torn
reads, no phantom (uncommitted) deltas, exact sums and counts.

The harness runs across three algorithm families (progressive PQ, cracking
STD, full-index FI — covering lock-free converged reads, always-serialized
cracking, and the one-shot bulk build) times all three budget-policy
families (FixedDelta, TimeAdaptive, CostModelGreedy), pre- and
post-convergence.  Any unserialized index mutation would trip the
scheduler's mutation guard (:class:`~repro.errors.ConcurrencyError`) in
the offending reader thread and fail the run.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.policy import CostModelGreedy, FixedDelta, TimeAdaptive
from repro.engine.session import IndexingSession
from repro.engine.shared import SharedEngine
from repro.serve.server import QueryServer
from repro.serve.client import ServiceClient, ServiceError
from repro.storage.column import SNAPSHOT_CACHE_SIZE, Column

ROWS = 4_000
DOMAIN = 1_000_000

FAMILIES = ["PQ", "STD", "FI"]
POLICIES = {
    "fixed-delta": lambda: FixedDelta(0.25),
    "time-adaptive": lambda: TimeAdaptive(scan_fraction=0.2),
    "cost-greedy": lambda: CostModelGreedy(interactivity_budget=0.01),
}


def _base_data(seed: int = 11) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, DOMAIN, size=ROWS, dtype=np.int64)


def _brute(arr: np.ndarray, low, high):
    mask = (arr >= low) & (arr <= high)
    return int(arr[mask].sum()), int(mask.sum())


class _History:
    """The committed write history, as the serial-replay oracle sees it.

    The writer thread applies every operation both through the engine and
    to a plain NumPy array; each commit files a copy of the array under the
    resulting committed version.  Aggregate queries make row order
    irrelevant, so multiset-equivalent replay (delete = mask out,
    update = mask out + append substitutes) is exact.
    """

    def __init__(self, base: np.ndarray) -> None:
        self.arrays = {0: base.copy()}
        self._lock = threading.Lock()

    def record(self, version: int, arr: np.ndarray) -> None:
        with self._lock:
            self.arrays[version] = arr.copy()

    def at(self, version: int) -> np.ndarray:
        with self._lock:
            return self.arrays[version]


def _writer_loop(writer, base, history, errors, stop, seed, n_bursts=8):
    rng = np.random.default_rng(seed)
    arr = base.copy()
    try:
        for _ in range(n_bursts):
            for _ in range(int(rng.integers(1, 4))):
                kind = int(rng.integers(0, 3))
                if kind == 0:
                    values = rng.integers(
                        0, DOMAIN, size=int(rng.integers(1, 60))
                    ).astype(np.int64)
                    writer.insert(values)
                    arr = np.concatenate([arr, values])
                elif kind == 1:
                    low = int(rng.integers(0, DOMAIN))
                    high = low + int(rng.integers(0, DOMAIN // 20))
                    writer.delete("ra", low, high)
                    arr = arr[~((arr >= low) & (arr <= high))]
                else:
                    low = int(rng.integers(0, DOMAIN))
                    high = low + int(rng.integers(0, DOMAIN // 50))
                    value = int(rng.integers(0, DOMAIN))
                    writer.update("ra", low, high, value)
                    mask = (arr >= low) & (arr <= high)
                    arr = np.concatenate(
                        [arr[~mask], np.full(int(mask.sum()), value, dtype=np.int64)]
                    )
            versions = writer.commit()
            history.record(versions["ra"], arr)
            time.sleep(0.002)  # let readers interleave between bursts
    except Exception as exc:  # surfaced by the main thread
        errors.append(exc)
    finally:
        stop.set()


def _reader_loop(view, observations, errors, stop, seed):
    rng = np.random.default_rng(seed)

    def one_range():
        low = int(rng.integers(0, DOMAIN - DOMAIN // 10))
        return low, low + int(rng.integers(1, DOMAIN // 10))

    def step():
        kind = int(rng.integers(0, 10))
        if kind == 9:
            view.refresh()
            return
        pinned = view.snapshot_version("ra")
        if kind >= 7:  # vectorized batch — all answers must share one version
            bounds = [one_range() for _ in range(4)]
            lows = [b[0] for b in bounds]
            highs = [b[1] for b in bounds]
            sums, counts = view.search_many("ra", lows, highs)
            for (low, high), s, c in zip(bounds, sums, counts):
                observations.append((pinned, low, high, int(s), int(c)))
        else:
            low, high = one_range()
            result = view.between("ra", low, high)
            observations.append((pinned, low, high, int(result.value_sum), int(result.count)))

    try:
        while not stop.is_set():
            step()
        # Stale-pin tail: the structure keeps tracking newer committed
        # writes, so these exercise the backward version correction.
        for _ in range(5):
            step()
        view.refresh()
        for _ in range(10):
            step()
    except Exception as exc:
        errors.append(exc)


def _run_harness(method: str, budget_factory, n_readers: int = 3, seed: int = 101):
    base = _base_data()
    session = IndexingSession(Column(base.copy(), name="ra"))
    session.create_index("ra", method=method, budget=budget_factory())
    engine = SharedEngine(session)
    history = _History(base)
    errors: list = []
    observations: list = []
    stop = threading.Event()

    writer = engine.acquire_writer()
    threads = [
        threading.Thread(
            target=_writer_loop,
            args=(writer, base, history, errors, stop, seed),
        )
    ]
    views = [
        engine.reader("interactive" if i % 2 == 0 else "batch")
        for i in range(n_readers)
    ]
    threads += [
        threading.Thread(
            target=_reader_loop,
            args=(view, observations, errors, stop, seed + 100 + i),
        )
        for i, view in enumerate(views)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "harness thread hung"
    writer.release()
    return engine, history, observations, errors


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("method", FAMILIES)
def test_readers_match_serial_replay_oracle(method, policy_name):
    engine, history, observations, errors = _run_harness(
        method, POLICIES[policy_name]
    )
    assert not errors, f"harness thread failed: {errors[0]!r}"
    assert len(history.arrays) > 1, "the writer committed nothing"
    assert observations, "no reader observations collected"

    pinned_seen = set()
    for pinned, low, high, value_sum, count in observations:
        pinned_seen.add(pinned)
        expected_sum, expected_count = _brute(history.at(pinned), low, high)
        assert count == expected_count, (
            f"[{method}/{policy_name}] count at pinned v{pinned} "
            f"({low}..{high}): {count} != {expected_count}"
        )
        assert value_sum == expected_sum, (
            f"[{method}/{policy_name}] sum at pinned v{pinned} "
            f"({low}..{high}): {value_sum} != {expected_sum}"
        )
    # The interleavings must actually have spanned versions: at minimum the
    # initial pin and the post-stop refresh to the final commit.
    assert len(pinned_seen) >= 2, "readers never observed more than one version"


def test_converged_family_serves_lockfree_reads():
    """Post-convergence PQ answers through the shared (lock-free) lane."""
    engine, history, observations, errors = _run_harness("PQ", lambda: FixedDelta(0.5))
    assert not errors
    # Drive well past convergence single-threadedly, then read again.
    view = engine.reader("interactive")
    index = engine.session.index_for("ra")
    lane = engine.scheduler.lane_for(index)
    for _ in range(200):
        view.between("ra", 100_000, 300_000)
        if lane.lockfree_reads > 0:
            break
    assert lane.lockfree_reads > 0, (
        f"converged PQ never took the lock-free path: {engine.scheduler.stats()['lanes']}"
    )


def test_uncommitted_writes_are_invisible_to_readers():
    """No phantom deltas: only commit + refresh moves what a reader sees."""
    base = _base_data()
    session = IndexingSession(Column(base.copy(), name="ra"))
    session.create_index("ra", method="PQ", budget=FixedDelta(0.25))
    engine = SharedEngine(session)
    writer = engine.acquire_writer()

    sentinel = DOMAIN + 7
    before = engine.reader("interactive")
    writer.insert([sentinel] * 5)

    # Pinned before the write and pinned after the (uncommitted) write both
    # see the committed state only.
    after_write = engine.reader("interactive")
    for view in (before, after_write):
        assert view.equals("ra", sentinel).count == 0
        s, c = _brute(base, 0, DOMAIN)
        assert view.between("ra", 0, DOMAIN).count == c

    writer.commit()
    # Commit alone must not move an existing pin...
    assert before.equals("ra", sentinel).count == 0
    # ...until the reader re-pins.
    before.refresh()
    assert before.equals("ra", sentinel).count == 5
    writer.release()


def test_socket_service_end_to_end(tmp_path):
    """The differential contract holds over the wire too."""
    base = _base_data()
    session = IndexingSession(Column(base.copy(), name="ra"))
    session.create_index("ra", method="PQ", budget=FixedDelta(0.25))
    server = QueryServer(session=session, address=str(tmp_path / "svc.sock"))
    server.start()
    try:
        with ServiceClient(server.endpoint, role="writer") as writer:
            # Single-writer: a second writer hello is refused.
            with pytest.raises(ServiceError) as excinfo:
                ServiceClient(server.endpoint, role="writer")
            assert excinfo.value.code == "writer-busy"

            with ServiceClient(server.endpoint, role="reader") as reader:
                expected_sum, expected_count = _brute(base, 100, 600_000)
                answer = reader.between("ra", 100, 600_000)
                assert answer["count"] == expected_count
                assert answer["sum"] == expected_sum

                writer.insert([DOMAIN + 1] * 3)
                assert reader.equals("ra", DOMAIN + 1)["count"] == 0  # uncommitted
                writer.commit()
                assert reader.equals("ra", DOMAIN + 1)["count"] == 0  # still pinned
                reader.refresh()
                assert reader.equals("ra", DOMAIN + 1)["count"] == 3

                bounds = [[0, 250_000], [250_001, 500_000], [DOMAIN + 1, DOMAIN + 1]]
                batch = reader.batch("ra", bounds)
                live = np.concatenate([base, [DOMAIN + 1] * 3])
                for (low, high), s, c in zip(bounds, batch["sums"], batch["counts"]):
                    es, ec = _brute(live, low, high)
                    assert (s, c) == (es, ec)

                status = reader.status()
                assert "scheduler" in status and "ra" in status["indexes"]
        # The writer slot frees on disconnect: a new writer may attach.
        with ServiceClient(server.endpoint, role="writer") as writer2:
            writer2.insert([DOMAIN + 2])
            writer2.commit()
    finally:
        server.stop()


def test_snapshot_cache_is_thread_safe_under_hammer():
    """Regression: the per-column snapshot LRU races under concurrent readers.

    Before the cache got its lock, concurrent ``snapshot()`` calls corrupted
    the shared ``OrderedDict`` (``move_to_end``/evict racing lookup) and
    raised ``KeyError``/``RuntimeError``.  Hammer it from 8 threads across
    far more versions than ``SNAPSHOT_CACHE_SIZE`` keeps, so every hit path,
    miss path and eviction runs concurrently.
    """
    session = IndexingSession(Column(_base_data(), name="ra"))
    column = session.table.column("ra")
    rng = np.random.default_rng(5)
    versions = [0]
    expected = {0: (int(column.data.sum()), len(column))}
    for _ in range(6 * SNAPSHOT_CACHE_SIZE):
        session.insert(rng.integers(0, DOMAIN, size=3).astype(np.int64))
        session.commit_writes()
        version = column.version
        versions.append(version)
        snap = column.snapshot(version)
        expected[version] = (int(snap.data.sum()), len(snap.data))

    errors: list = []
    barrier = threading.Barrier(8)

    def hammer(seed):
        thread_rng = np.random.default_rng(seed)
        try:
            barrier.wait()
            for _ in range(400):
                version = versions[int(thread_rng.integers(0, len(versions)))]
                snap = column.snapshot(version)
                data = snap.data
                assert (int(data.sum()), len(data)) == expected[version]
                column.cached_snapshot_versions()
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(31 + i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive()
    assert not errors, f"snapshot cache raced: {errors[0]!r}"
    assert len(column.cached_snapshot_versions()) <= SNAPSHOT_CACHE_SIZE
