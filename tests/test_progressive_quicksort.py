"""Tests for Progressive Quicksort."""

import numpy as np
import pytest

from repro.core.budget import AdaptiveBudget, FixedBudget
from repro.core.phase import IndexPhase
from repro.core.query import Predicate
from repro.progressive.quicksort import ProgressiveQuicksort
from repro.storage.column import Column

from tests.conftest import assert_matches_brute_force, brute_force, random_range_predicates


class TestProgressiveQuicksortLifecycle:
    def test_starts_inactive(self, uniform_column):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.25))
        assert index.phase is IndexPhase.INACTIVE
        assert not index.converged
        assert index.memory_footprint() == 0

    def test_first_query_enters_creation(self, uniform_column, uniform_data):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.25))
        index.query(Predicate(0, 1_000))
        assert index.phase in (IndexPhase.CREATION, IndexPhase.REFINEMENT)
        assert index.pivot == pytest.approx(
            (float(uniform_data.min()) + float(uniform_data.max())) / 2
        )
        assert index.memory_footprint() >= uniform_data.nbytes

    def test_phases_progress_in_order(self, uniform_column, uniform_data, rng):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.5))
        seen = []
        for predicate in random_range_predicates(uniform_data, 60, rng):
            index.query(predicate)
            if not seen or seen[-1] is not index.phase:
                seen.append(index.phase)
        orders = [phase.order for phase in seen]
        assert orders == sorted(orders), f"phases regressed: {seen}"
        assert index.phase is IndexPhase.CONVERGED

    def test_creation_takes_about_one_over_delta_queries(self, uniform_column, uniform_data, rng):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.25))
        predicates = random_range_predicates(uniform_data, 10, rng)
        creation_queries = 0
        for predicate in predicates:
            if index.phase in (IndexPhase.INACTIVE, IndexPhase.CREATION):
                creation_queries += 1
            index.query(predicate)
            if index.phase.order > IndexPhase.CREATION.order:
                break
        assert creation_queries == pytest.approx(4, abs=1)

    def test_zero_delta_never_converges(self, uniform_column, uniform_data, rng):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.0))
        for predicate in random_range_predicates(uniform_data, 20, rng):
            index.query(predicate)
        assert index.phase is IndexPhase.CREATION
        assert not index.converged

    def test_delta_one_finishes_creation_first_query(self, uniform_column, uniform_data, rng):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(1.0))
        index.query(Predicate(0, 100))
        assert index.phase.order >= IndexPhase.REFINEMENT.order


class TestProgressiveQuicksortCorrectness:
    def test_exact_answers_throughout_convergence(self, uniform_column, uniform_data, rng):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.2))
        predicates = random_range_predicates(uniform_data, 80, rng)
        assert_matches_brute_force(index, uniform_data, predicates)
        assert index.converged

    def test_exact_answers_on_skewed_data(self, skewed_column, skewed_data, rng):
        index = ProgressiveQuicksort(skewed_column, budget=FixedBudget(0.3))
        predicates = random_range_predicates(skewed_data, 60, rng, selectivity=0.05)
        assert_matches_brute_force(index, skewed_data, predicates)

    def test_point_queries(self, uniform_column, uniform_data, rng):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.25))
        values = uniform_data[rng.integers(0, uniform_data.size, size=50)]
        for value in values:
            predicate = Predicate(int(value), int(value))
            result = index.query(predicate)
            expected = brute_force(uniform_data, predicate)
            assert result.count == expected.count

    def test_queries_outside_domain(self, uniform_column, uniform_data):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.25))
        domain_max = int(uniform_data.max())
        for _ in range(10):
            assert index.query(Predicate(domain_max + 10, domain_max + 20)).count == 0
            assert index.query(Predicate(-100, -1)).count == 0

    def test_whole_domain_query(self, uniform_column, uniform_data):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.5))
        predicate = Predicate(int(uniform_data.min()), int(uniform_data.max()))
        for _ in range(5):
            result = index.query(predicate)
            assert result.count == uniform_data.size
            assert result.value_sum == uniform_data.sum()

    def test_converged_answers_from_cascade(self, uniform_column, uniform_data, rng):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(1.0))
        for predicate in random_range_predicates(uniform_data, 30, rng):
            index.query(predicate)
        assert index.converged
        predicates = random_range_predicates(uniform_data, 20, rng)
        assert_matches_brute_force(index, uniform_data, predicates)


class TestProgressiveQuicksortBudgets:
    def test_adaptive_budget_converges(self, uniform_column, uniform_data, rng):
        index = ProgressiveQuicksort(
            uniform_column, budget=AdaptiveBudget(scan_fraction=0.5)
        )
        predicates = random_range_predicates(uniform_data, 300, rng)
        assert_matches_brute_force(index, uniform_data, predicates)
        assert index.converged

    def test_stats_track_delta_and_phase(self, uniform_column):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.25))
        index.query(Predicate(0, 100))
        stats = index.last_stats
        assert stats.query_number == 1
        assert stats.delta == pytest.approx(0.25)
        assert stats.predicted_cost is not None and stats.predicted_cost > 0
        assert stats.elements_indexed > 0

    def test_converged_stats_have_no_delta(self, uniform_column, uniform_data, rng):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(1.0))
        for predicate in random_range_predicates(uniform_data, 40, rng):
            index.query(predicate)
        assert index.converged
        index.query(Predicate(0, 10))
        assert index.last_stats.delta == 0.0
        assert index.last_stats.elements_indexed == 0

    def test_queries_executed_counter(self, uniform_column):
        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.25))
        for _ in range(5):
            index.query(Predicate(0, 10))
        assert index.queries_executed == 5

    def test_rejects_non_predicate(self, uniform_column):
        from repro.errors import IndexStateError

        index = ProgressiveQuicksort(uniform_column, budget=FixedBudget(0.25))
        with pytest.raises(IndexStateError):
            index.query((0, 10))
