"""Tests for the batch query execution subsystem.

The central invariant: ``execute_batch`` returns results identical to
issuing the same queries sequentially, for every algorithm in the registry,
no matter how the executor splits the batch between per-query driving and
the vectorized ``search_many`` tail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget import AdaptiveBudget, BatchBudget, FixedBudget, FixedTimeBudget
from repro.core.query import ConjunctionResult, Predicate, PredicateVector, QueryResult
from repro.cracking.cracker_column import CrackerColumn
from repro.engine.batch import BatchExecutor, BatchResult, scan_many
from repro.engine.registry import ALGORITHMS, create_index
from repro.engine.session import IndexingSession
from repro.errors import ExperimentError, InvalidPredicateError
from repro.progressive.quicksort import ProgressiveQuicksort
from repro.storage.column import Column
from repro.storage.table import Table
from repro.workloads.batch import conjunctive_queries, iter_batches, predicate_vector
from repro.workloads.patterns import random_workload

from tests.conftest import random_range_predicates


@pytest.fixture
def data(rng) -> np.ndarray:
    return rng.integers(0, 30_000, size=12_000, dtype=np.int64)


@pytest.fixture
def predicates(data, rng):
    return random_range_predicates(data, 120, rng, selectivity=0.05)


class TestPredicateVector:
    def test_roundtrip_and_slicing(self):
        vector = PredicateVector.from_predicates(
            [Predicate(1, 5), Predicate(2, 2), (10, 20)]
        )
        assert len(vector) == 3
        assert vector[1].is_point
        assert vector.slice(1, 3).predicates() == [Predicate(2, 2), Predicate(10, 20)]
        assert [p.low for p in vector] == [1, 2, 10]

    def test_coerce_passthrough_and_workload(self):
        vector = PredicateVector([0], [1])
        assert PredicateVector.coerce(vector) is vector
        workload = random_workload(0, 100, 10, rng=np.random.default_rng(0))
        assert len(PredicateVector.coerce(workload)) == 10

    def test_inverted_range_rejected(self):
        with pytest.raises(InvalidPredicateError):
            PredicateVector([5, 0], [1, 10])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidPredicateError):
            PredicateVector([1, 2], [3])


class TestBatchBudget:
    def test_pool_is_n_queries_times_per_query(self):
        budget = BatchBudget(10, per_query_seconds=0.5)
        assert budget.pool_seconds == pytest.approx(5.0)
        assert not budget.exhausted

    def test_greedy_drain_and_exhaustion(self):
        budget = BatchBudget(4, per_query_seconds=1.0)
        # Pool (4s) covers the 2s of work entirely.
        assert budget.next_delta(2.0) == 1.0
        # 2s remain for 8s of work.
        assert budget.next_delta(8.0) == pytest.approx(0.25)
        assert budget.exhausted
        assert budget.next_delta(8.0) == 0.0

    def test_scan_fraction_resolution(self):
        budget = BatchBudget(100, scan_fraction=0.2)
        with pytest.raises(Exception):
            budget.next_delta(1.0)
        budget.register_scan_time(0.01)
        assert budget.pool_seconds == pytest.approx(0.2)
        budget.register_scan_time(5.0)  # idempotent
        assert budget.pool_seconds == pytest.approx(0.2)

    def test_zero_pool_is_exhausted_immediately(self):
        budget = BatchBudget(100, per_query_seconds=0.0)
        assert budget.exhausted
        assert budget.next_delta(1.0) == 0.0

    def test_for_index_mappings(self):
        column = Column(np.arange(10))
        index = ProgressiveQuicksort(column, budget=FixedTimeBudget(0.25))
        assert BatchBudget.for_index(index, 8).pool_seconds == pytest.approx(2.0)
        index = ProgressiveQuicksort(column, budget=AdaptiveBudget(scan_fraction=0.4))
        assert BatchBudget.for_index(index, 8).scan_fraction == pytest.approx(0.4)
        index = ProgressiveQuicksort(column, budget=FixedBudget(0.3))
        assert BatchBudget.for_index(index, 8).scan_fraction == pytest.approx(0.3)


class TestBatchMatchesSequential:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_identical_results_per_algorithm(self, name, data, predicates):
        sequential = create_index(name, Column(data, name="value"))
        expected = [sequential.query(p) for p in predicates]
        batch_index = create_index(name, Column(data, name="value"))
        batch = BatchExecutor().execute(batch_index, predicates)
        assert len(batch) == len(predicates)
        for query_number, (want, got) in enumerate(zip(expected, batch.results)):
            assert got.count == want.count, f"{name} query {query_number}"
            assert got.value_sum == want.value_sum, f"{name} query {query_number}"

    def test_batch_covers_all_queries(self, data, predicates):
        index = create_index("PQ", Column(data, name="value"))
        batch = BatchExecutor().execute(index, predicates)
        assert batch.driven_queries + batch.vectorized_queries == len(predicates)
        assert batch.vectorized_queries > 0  # the pooled budget converges PQ
        assert index.converged

    def test_original_budget_restored(self, data, predicates):
        original = FixedBudget(0.1)
        index = ProgressiveQuicksort(Column(data), budget=original)
        BatchExecutor().execute(index, predicates)
        assert index.budget is original

    def test_sequential_queries_work_after_batch_first(self, data):
        """A batch as the index's very first operation must leave the
        restored per-query budget resolvable (regression: an adaptive
        scan-fraction budget missed its one-time register_scan_time)."""
        index = ProgressiveQuicksort(
            Column(data), budget=AdaptiveBudget(scan_fraction=0.2)
        )
        BatchExecutor().execute(index, [Predicate(0, 500)])
        follow_up = index.query(Predicate(0, 500))
        mask = (data >= 0) & (data <= 500)
        assert follow_up.count == int(mask.sum())

    def test_empty_batch(self, data):
        index = create_index("PQ", Column(data, name="value"))
        batch = BatchExecutor().execute(index, [])
        assert batch.results == []
        assert index.queries_executed == 0

    def test_exhausted_pool_still_answers_exactly(self, data, predicates):
        index = create_index("PQ", Column(data, name="value"))
        executor = BatchExecutor(per_query_seconds=0.0, verify=True)
        batch = executor.execute(index, predicates)
        assert all(result is not None for result in batch.results)
        # No indexing budget: the index must not have converged.
        assert not index.converged

    def test_result_accessors(self, data, predicates):
        index = create_index("FS", Column(data, name="value"))
        batch = BatchExecutor().execute(index, predicates)
        assert isinstance(batch, BatchResult)
        assert batch.counts().shape == (len(predicates),)
        assert batch.sums().shape == (len(predicates),)
        assert batch.throughput() > 0

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_float_columns_match_sequential(self, name, rng):
        """Batch == sequential also on float data with negative values.

        Every algorithm — including PLSD, whose radix passes now run on
        order-preserving IEEE-754 bit-pattern keys instead of truncated
        integers — constructs a truly sorted array, so the vectorized paths
        apply everywhere.  Counts must match exactly and sums within float
        associativity tolerance.
        """
        data = rng.normal(0.0, 1.0, size=4_000)
        predicates = [Predicate(float(lo), float(lo) + 0.5) for lo in rng.uniform(-3, 2.5, size=60)]
        sequential = create_index(name, Column(data, name="value"), budget=FixedBudget(0.5))
        expected = [sequential.query(p) for p in predicates]
        batch_index = create_index(name, Column(data, name="value"), budget=FixedBudget(0.5))
        batch = BatchExecutor().execute(batch_index, predicates)
        for query_number, (want, got) in enumerate(zip(expected, batch.results)):
            assert got.count == want.count, f"{name} float query {query_number}"
            assert got.approximately_equals(want), f"{name} float query {query_number}"


class TestSearchManyEntryPoints:
    def test_cracker_column_matches_sequential_cracking(self, data, rng):
        predicates = random_range_predicates(data, 50, rng, selectivity=0.02)
        sequential = CrackerColumn(Column(data, name="value"))
        expected = [sequential.range_query(p.low, p.high) for p in predicates]
        batched = CrackerColumn(Column(data, name="value"))
        sums, counts = batched.search_many(
            np.array([p.low for p in predicates]),
            np.array([p.high for p in predicates]),
        )
        for want, got_sum, got_count in zip(expected, sums, counts):
            assert int(got_count) == want.count
            assert got_sum == want.value_sum

    def test_cracker_small_batch_cracks_instead_of_sorting(self, data):
        """A sparse batch keeps cracking's incremental piece behavior: the
        giant initial piece must not be fully sorted for a single query."""
        cracker = CrackerColumn(Column(data, name="value"))
        sums, counts = cracker.search_many(np.array([100]), np.array([500]))
        mask = (data >= 100) & (data <= 500)
        assert int(counts[0]) == int(mask.sum())
        assert sums[0] == data[mask].sum()
        assert not cracker.is_fully_sorted()

    def test_cracker_search_many_registers_bounds(self, data):
        cracker = CrackerColumn(Column(data, name="value"))
        cracker.search_many(np.array([100, 500]), np.array([200, 900]))
        assert cracker.n_pieces > 1
        # A follow-up query reuses the registered boundaries exactly.
        follow_up = cracker.range_query(100, 200)
        mask = (data >= 100) & (data <= 200)
        assert follow_up.count == int(mask.sum())

    def test_progressive_search_many_unavailable_before_sorted(self, data):
        index = create_index("PQ", Column(data, name="value"))
        assert index.search_many(np.array([0]), np.array([10])) is None
        index.query(Predicate(0, 10))  # creation phase, still unsorted
        assert index.search_many(np.array([0]), np.array([10])) is None

    def test_scan_many_matches_scan_range(self, data, predicates):
        column = Column(data, name="value")
        results = scan_many(
            column,
            np.array([p.low for p in predicates]),
            np.array([p.high for p in predicates]),
        )
        for predicate, got in zip(predicates, results):
            value_sum, count = column.scan_range(predicate.low, predicate.high)
            assert got.count == count
            assert got.value_sum == value_sum

    def test_scan_many_small_batch_path(self, data):
        # Below the amortization threshold scan_many uses plain scans.
        column = Column(data, name="value")
        results = scan_many(column, np.array([100]), np.array([500]))
        value_sum, count = column.scan_range(100, 500)
        assert results[0].count == count and results[0].value_sum == value_sum

    def test_cascade_search_many_answers_batches(self):
        from repro.btree.cascade import CascadeTree

        sorted_tree = CascadeTree(np.array([1, 3, 5, 9], dtype=np.int64))
        sums, counts = sorted_tree.search_many(np.array([2]), np.array([6]))
        assert int(counts[0]) == 2 and int(sums[0]) == 8

    def test_plsd_float_converges_truly_sorted(self, rng):
        """The ROADMAP's old PLSD float defect: integer-truncated radix keys
        left converged float arrays unsorted.  The order-preserving key
        codecs close it — the converged cascade leaves must be exactly the
        sorted column."""
        data = rng.normal(0.0, 1.0, size=3_000)
        index = create_index("PLSD", Column(data, name="value"), budget=FixedBudget(0.5))
        iterations = 0
        while not index.converged and iterations < 300:
            index.query(Predicate(-0.25, 0.25))
            iterations += 1
        assert index.converged
        assert np.array_equal(index._cascade.leaf_values, np.sort(data))


class TestSessionBatchAPI:
    def make_session(self, rng):
        ra = rng.integers(0, 20_000, size=8_000, dtype=np.int64)
        dec = rng.integers(0, 20_000, size=8_000, dtype=np.int64)
        table = Table({"ra": ra, "dec": dec})
        session = IndexingSession(table)
        session.create_index("ra", method="PQ", budget_fraction=0.2)
        return session, ra, dec

    def test_single_column_batch_matches_between(self, rng):
        session, ra, _ = self.make_session(rng)
        reference = IndexingSession(Table({"ra": ra, "dec": np.zeros_like(ra)}))
        reference.create_index("ra", method="PQ", budget_fraction=0.2)
        bounds = [(int(lo), int(lo) + 500) for lo in rng.integers(0, 19_000, size=40)]
        expected = [reference.between("ra", lo, hi) for lo, hi in bounds]
        results = session.execute_batch(bounds, column_name="ra")
        for want, got in zip(expected, results):
            assert got.count == want.count
            assert got.value_sum == want.value_sum

    def test_grouped_batch_preserves_submission_order(self, rng):
        session, ra, dec = self.make_session(rng)
        pairs = [
            ("ra", Predicate(0, 1_000)),
            ("dec", Predicate(100, 300)),
            ("ra", Predicate(5_000, 6_000)),
            ("dec", Predicate(0, 19_999)),
        ]
        results = session.execute_batch(pairs)
        for (column_name, predicate), got in zip(pairs, results):
            values = ra if column_name == "ra" else dec
            mask = (values >= predicate.low) & (values <= predicate.high)
            assert got.count == int(mask.sum())
            assert got.value_sum == values[mask].sum()

    def test_workload_batch(self, rng):
        session, ra, _ = self.make_session(rng)
        workload = random_workload(0, 20_000, 30, rng=rng)
        results = session.execute_batch(workload, column_name="ra")
        assert len(results) == 30
        for predicate, got in zip(workload, results):
            mask = (ra >= predicate.low) & (ra <= predicate.high)
            assert got.count == int(mask.sum())

    def test_ambiguous_default_column_rejected(self, rng):
        session, _, _ = self.make_session(rng)
        session.create_index("dec", method="FS")
        with pytest.raises(ExperimentError):
            session.execute_batch([(0, 10)])

    def test_unknown_column_rejected(self, rng):
        session, _, _ = self.make_session(rng)
        with pytest.raises(ExperimentError):
            session.execute_batch([("nope", Predicate(0, 1))])

    def test_inverted_ranges_yield_empty_results_like_between(self, rng):
        """An inverted range must not abort the batch (parity with between())."""
        session, ra, _ = self.make_session(rng)
        results = session.execute_batch(
            [(0, 1_000), (500, 100), (2_000, 3_000)], column_name="ra"
        )
        assert results[1].count == 0 and results[1].value_sum == 0
        for bounds, got in zip([(0, 1_000), (2_000, 3_000)], [results[0], results[2]]):
            mask = (ra >= bounds[0]) & (ra <= bounds[1])
            assert got.count == int(mask.sum())

    def test_all_inverted_batch(self, rng):
        session, _, _ = self.make_session(rng)
        results = session.execute_batch([(9, 1), (5, 2)], column_name="ra")
        assert [r.count for r in results] == [0, 0]

    def test_unindexed_column_batches_reuse_scan_handle(self, rng):
        session, _, dec = self.make_session(rng)
        first = session.execute_batch([(0, 1_000)] * 20, column_name="dec")
        handle = session._scan_handles["dec"]
        second = session.execute_batch([(0, 1_000)] * 20, column_name="dec")
        assert session._scan_handles["dec"] is handle  # cached, not rebuilt
        mask = (dec >= 0) & (dec <= 1_000)
        for got in first + second:
            assert got.count == int(mask.sum())


class TestWhere:
    def make_session(self, rng):
        ra = rng.integers(0, 10_000, size=6_000, dtype=np.int64)
        dec = rng.integers(0, 10_000, size=6_000, dtype=np.int64)
        mag = rng.integers(0, 100, size=6_000, dtype=np.int64)
        table = Table({"ra": ra, "dec": dec, "mag": mag})
        session = IndexingSession(table)
        session.create_index("ra", method="PQ", budget_fraction=0.2)
        return session, ra, dec, mag

    def test_matches_vectorized_reference(self, rng):
        session, ra, dec, mag = self.make_session(rng)
        result = session.where({"ra": (1_000, 4_000), "dec": (2_000, 9_000), "mag": (10, 60)})
        mask = (
            (ra >= 1_000) & (ra <= 4_000)
            & (dec >= 2_000) & (dec <= 9_000)
            & (mag >= 10) & (mag <= 60)
        )
        assert isinstance(result, ConjunctionResult)
        assert result.count == int(mask.sum())
        assert result.sum_of("ra") == ra[mask].sum()
        assert result.sum_of("dec") == dec[mask].sum()
        assert result.sum_of("mag") == mag[mask].sum()

    def test_single_column_where_matches_between(self, rng):
        session, ra, _, _ = self.make_session(rng)
        result = session.where({"ra": (500, 1_500)})
        reference = session.between("ra", 500, 1_500)
        assert result.count == reference.count
        assert result.sum_of("ra") == reference.value_sum

    def test_driving_column_is_the_indexed_one(self, rng):
        session, _, _, _ = self.make_session(rng)
        result = session.where({"ra": (0, 9_999), "dec": (0, 9_999)})
        assert result.driving_column == "ra"

    def test_where_advances_the_driving_index(self, rng):
        session, _, _, _ = self.make_session(rng)
        before = session.index_for("ra").queries_executed
        session.where({"ra": (100, 5_000), "dec": (0, 9_999)})
        assert session.index_for("ra").queries_executed == before + 1

    def test_disjoint_conjunction_is_empty(self, rng):
        session, _, _, _ = self.make_session(rng)
        result = session.where({"ra": (0, 9_999), "mag": (200, 300)})
        assert result.count == 0
        assert result.sum_of("ra") == 0

    def test_inverted_range_is_empty_not_an_error(self, rng):
        session, _, _, _ = self.make_session(rng)
        before = session.index_for("ra").queries_executed
        result = session.where({"ra": (5_000, 100)})
        assert result.count == 0
        # The index was not advanced for a provably empty conjunction.
        assert session.index_for("ra").queries_executed == before

    def test_empty_mapping_rejected(self, rng):
        session, _, _, _ = self.make_session(rng)
        with pytest.raises(ExperimentError):
            session.where({})

    def test_as_query_result_and_unknown_column(self, rng):
        session, ra, _, _ = self.make_session(rng)
        result = session.where({"ra": (0, 9_999)})
        as_result = result.as_query_result("ra")
        assert isinstance(as_result, QueryResult)
        assert as_result.count == result.count
        with pytest.raises(InvalidPredicateError):
            result.sum_of("dec")


class TestWorkloadBatchAdapters:
    def test_predicate_vector_roundtrip(self):
        workload = random_workload(0, 1_000, 25, rng=np.random.default_rng(3))
        vector = predicate_vector(workload)
        assert len(vector) == 25
        assert vector[0].low == workload[0].low

    def test_iter_batches_sizes(self):
        workload = random_workload(0, 1_000, 25, rng=np.random.default_rng(3))
        batches = list(iter_batches(workload, 10))
        assert [len(b) for b in batches] == [10, 10, 5]

    def test_conjunctive_queries_shape(self, rng):
        table = Table({"ra": rng.integers(0, 100, 500), "dec": rng.integers(0, 100, 500)})
        queries = conjunctive_queries(table, ["ra", "dec"], 7, selectivity=0.2, rng=rng)
        assert len(queries) == 7
        for query in queries:
            assert set(query) == {"ra", "dec"}
            for low, high in query.values():
                assert low <= high
