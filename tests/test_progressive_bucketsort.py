"""Tests for Progressive Bucketsort (Equi-Height)."""

import numpy as np
import pytest

from repro.core.budget import AdaptiveBudget, FixedBudget
from repro.core.phase import IndexPhase
from repro.core.query import Predicate
from repro.progressive.bucketsort import BoundsRouter, ProgressiveBucketsort
from repro.storage.column import Column

from tests.conftest import assert_matches_brute_force, random_range_predicates


class TestBoundsRouter:
    """The grid-accelerated router must be bit-identical to the binary search."""

    def reference(self, bounds, values):
        return np.searchsorted(bounds, values, side="right")

    def test_uniform_int_data(self, rng):
        data = rng.integers(0, 100_000, size=50_000)
        bounds = np.quantile(data, np.linspace(0, 1, 65)[1:-1])
        router = BoundsRouter(bounds, data.min(), data.max())
        assert np.array_equal(router.route(data), self.reference(bounds, data))

    def test_skewed_data_with_clustered_bounds(self, rng):
        data = np.concatenate(
            [rng.integers(0, 100, size=45_000), rng.integers(0, 1_000_000, size=5_000)]
        )
        bounds = np.quantile(data, np.linspace(0, 1, 33)[1:-1])
        router = BoundsRouter(bounds, data.min(), data.max())
        assert np.array_equal(router.route(data), self.reference(bounds, data))

    def test_float_data_and_boundary_values(self, rng):
        data = rng.normal(0.0, 1.0, size=20_000)
        bounds = np.quantile(data, np.linspace(0, 1, 17)[1:-1])
        router = BoundsRouter(bounds, data.min(), data.max())
        probes = np.concatenate([data, bounds, np.nextafter(bounds, -np.inf),
                                 np.nextafter(bounds, np.inf)])
        assert np.array_equal(router.route(probes), self.reference(bounds, probes))

    def test_degenerate_single_value_domain(self):
        bounds = np.array([5.0, 5.0, 5.0])
        router = BoundsRouter(bounds, 5, 5)
        values = np.full(100, 5)
        assert np.array_equal(router.route(values), self.reference(bounds, values))

    def test_non_finite_span_falls_back(self):
        huge = np.finfo(np.float64).max
        bounds = np.array([-1.0, 0.0, 1.0])
        router = BoundsRouter(bounds, -huge, huge)
        values = np.array([-huge, -2.0, -0.5, 0.5, 2.0, huge])
        assert np.array_equal(router.route(values), self.reference(bounds, values))


class TestBucketsortLifecycle:
    def test_rejects_too_few_buckets(self, uniform_column):
        with pytest.raises(ValueError):
            ProgressiveBucketsort(uniform_column, n_buckets=1)

    def test_bounds_are_established_on_first_query(self, uniform_column):
        index = ProgressiveBucketsort(uniform_column, budget=FixedBudget(0.25), n_buckets=16)
        assert index.bounds is None
        index.query(Predicate(0, 100))
        assert index.bounds is not None
        assert index.bounds.size == 15
        assert np.all(np.diff(index.bounds) >= 0)

    def test_equi_height_buckets_on_skewed_data(self, skewed_column, skewed_data):
        # The defining property versus radix clustering: bucket sizes stay
        # balanced even when the data is heavily skewed.
        index = ProgressiveBucketsort(skewed_column, budget=FixedBudget(1.0), n_buckets=16)
        index.query(Predicate(0, 100))  # finishes the creation phase (delta=1)
        sizes = index._buckets.sizes() if index._buckets is not None else None
        if sizes is None:
            pytest.skip("creation already completed and buckets were released")
        largest = sizes.max()
        expected = skewed_data.size / 16
        assert largest < 4 * expected

    def test_phase_progression(self, uniform_column, uniform_data, rng):
        index = ProgressiveBucketsort(uniform_column, budget=FixedBudget(0.5))
        seen = []
        for predicate in random_range_predicates(uniform_data, 80, rng):
            index.query(predicate)
            if not seen or seen[-1] is not index.phase:
                seen.append(index.phase)
        orders = [phase.order for phase in seen]
        assert orders == sorted(orders)
        assert index.converged

    def test_final_array_sorted(self, skewed_column, skewed_data):
        index = ProgressiveBucketsort(skewed_column, budget=FixedBudget(0.5))
        iterations = 0
        while not index.converged and iterations < 300:
            index.query(Predicate(0, 1_000))
            iterations += 1
        assert index.converged
        assert np.array_equal(index._cascade.leaf_values, np.sort(skewed_data))


class TestBucketsortCorrectness:
    def test_exact_answers_uniform(self, uniform_column, uniform_data, rng):
        index = ProgressiveBucketsort(uniform_column, budget=FixedBudget(0.2))
        predicates = random_range_predicates(uniform_data, 80, rng)
        assert_matches_brute_force(index, uniform_data, predicates)
        assert index.converged

    def test_exact_answers_skewed(self, skewed_column, skewed_data, rng):
        index = ProgressiveBucketsort(skewed_column, budget=FixedBudget(0.25))
        predicates = random_range_predicates(skewed_data, 80, rng, selectivity=0.05)
        assert_matches_brute_force(index, skewed_data, predicates)
        assert index.converged

    def test_adaptive_budget(self, skewed_column, skewed_data, rng):
        index = ProgressiveBucketsort(
            skewed_column, budget=AdaptiveBudget(scan_fraction=0.5)
        )
        predicates = random_range_predicates(skewed_data, 250, rng)
        assert_matches_brute_force(index, skewed_data, predicates)
        assert index.converged

    def test_all_equal_values(self):
        data = np.full(4_000, 5, dtype=np.int64)
        index = ProgressiveBucketsort(Column(data), budget=FixedBudget(0.5))
        for _ in range(30):
            assert index.query(Predicate(5, 5)).count == 4_000
            assert index.query(Predicate(6, 10)).count == 0
        assert index.converged

    def test_float_column(self, rng):
        data = rng.uniform(0.0, 1_000.0, size=8_000)
        index = ProgressiveBucketsort(Column(data), budget=FixedBudget(0.3))
        for _ in range(40):
            low = float(rng.uniform(0, 900))
            predicate = Predicate(low, low + 100.0)
            result = index.query(predicate)
            mask = (data >= predicate.low) & (data <= predicate.high)
            assert result.count == mask.sum()
            assert result.value_sum == pytest.approx(float(data[mask].sum()))
        assert index.converged

    def test_stats_report_prediction(self, uniform_column):
        index = ProgressiveBucketsort(uniform_column, budget=FixedBudget(0.25))
        index.query(Predicate(0, 5_000))
        assert index.last_stats.predicted_cost is not None
        assert index.last_stats.delta == pytest.approx(0.25)
