"""The unified observability layer: registry exactness, trace propagation,
live export, and the wiring contracts the rest of the engine relies on.

The metrics registry promises *exact* counters under free-running threads
(per-thread cells, no locks on the hot path), JSON-safe snapshots with no
numpy scalars, and monotone counter reads even while writers are mid-
increment.  The tracer promises that spans crossing the parallel shard
executor's worker pipes come back stitched into the parent's trace, and
that a budgeted query's per-phase spans reconcile with its wall time.
The serving layer promises a ``metrics`` verb whose successive snapshots
never run backwards under a concurrent reader/writer mix.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core.policy import CostModelGreedy, FixedDelta
from repro.engine.session import IndexingSession
from repro.obs.registry import MetricsRegistry
from repro.serve.client import ServiceClient
from repro.serve.server import QueryServer
from repro.storage.column import Column
from repro.storage.membudget import MemoryBudget
from repro.storage.table import Table


@pytest.fixture(autouse=True)
def _reset_obs():
    """Every test starts from a fresh registry and a quiet tracer."""
    obs.configure(metrics=True, tracing=False)
    yield
    obs.configure(metrics=True, tracing=False)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_exact_under_eight_threads(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("t.events", help="thread hammer")
        per_thread, n_threads = 25_000, 8
        start = threading.Barrier(n_threads)

        def hammer():
            start.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == per_thread * n_threads

    def test_histogram_exact_under_threads(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("t.seconds")
        per_thread, n_threads = 10_000, 8

        def hammer():
            for _ in range(per_thread):
                hist.observe(1e-4)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sample = hist.to_sample()
        assert sample["count"] == per_thread * n_threads
        assert sample["sum"] == pytest.approx(per_thread * n_threads * 1e-4)

    def test_histogram_bucket_edges(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("t.edges", edges=(1.0, 2.0, 4.0))
        for value in (0.5, 2.0, 3.0, 8.0):
            hist.observe(value)
        sample = hist.to_sample()
        # bisect_right: 0.5 -> bucket 0 (<=1); an exact edge hit (2.0)
        # falls in the bucket it OPENS, alongside 3.0; 8.0 overflows.
        assert sample["edges"] == [1.0, 2.0, 4.0]
        assert sample["buckets"] == [1, 0, 2, 1]
        assert sample["count"] == 4
        assert sample["min"] == 0.5 and sample["max"] == 8.0

    def test_snapshot_is_json_safe_with_numpy_inputs(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("np.count").inc(np.int64(3))
        registry.gauge("np.level").set(np.float32(1.5))
        registry.histogram("np.seconds").observe(np.float64(2.5e-5))
        owner = Column(np.arange(10), name="x")
        registry.register_pull(
            "np.pulled", owner, lambda o: np.int64(7), kind="counter"
        )
        snapshot = registry.snapshot()
        text = json.dumps(snapshot)  # must not need a numpy-aware encoder
        for entry in json.loads(text)["series"]:
            for key in ("value", "count", "sum", "min", "max"):
                if key in entry and entry[key] is not None:
                    assert isinstance(entry[key], (int, float)), entry
        by_name = {e["name"]: e for e in snapshot["series"]}
        assert by_name["np.count"]["value"] == 3
        assert by_name["np.pulled"]["value"] == 7

    def test_pull_series_vanishes_with_owner(self):
        registry = MetricsRegistry(enabled=True)

        class Owner:
            pass

        owner = Owner()
        registry.register_pull("gone.soon", owner, lambda o: 1, kind="counter")
        assert any(e["name"] == "gone.soon" for e in registry.snapshot()["series"])
        del owner
        assert not any(
            e["name"] == "gone.soon" for e in registry.snapshot()["series"]
        )

    def test_counter_snapshots_monotone_under_writers(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("mono.events")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                counter.inc()

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            last = 0
            for _ in range(200):
                value = counter.value
                assert value >= last
                last = value
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_disabled_registry_hands_out_falsy_noops(self):
        registry = MetricsRegistry(enabled=False)
        hist = registry.histogram("off.seconds")
        assert not hist
        hist.observe(1.0)  # no-op, no error
        assert registry.snapshot()["enabled"] is False


# ----------------------------------------------------------------------
# Trace propagation
# ----------------------------------------------------------------------
def _phase_children(spans: list[dict], parent: dict) -> list[dict]:
    return [
        s
        for s in spans
        if s["parent_id"] == parent["span_id"]
        and (s["name"].startswith("phase.") or s["name"].startswith("overlay."))
    ]


class TestTracing:
    def test_where_spans_reconcile_under_cost_model(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 1_000_000, size=200_000).astype(np.int64)
        session = IndexingSession(Column(data, name="ra"))
        session.create_index(
            "ra", method="PQ", budget=CostModelGreedy(interactivity_budget=0.01)
        )
        obs.configure(tracing=True)
        tracer = obs.tracer()
        tracer.clear()
        started = time.perf_counter()
        result = session.where({"ra": (100, 600_000)})
        wall = time.perf_counter() - started
        spans = tracer.drain()

        where_span = next(s for s in spans if s["name"] == "session.where")
        query_span = next(s for s in spans if s["name"] == "index.query")
        assert query_span["parent_id"] == where_span["span_id"]
        assert query_span["trace_id"] == where_span["trace_id"]

        # The per-phase spans must account for the query's wall time: the
        # budgeted work happens inside them, glue is microseconds.
        children = _phase_children(spans, query_span)
        assert children, "no phase spans under index.query"
        covered = sum(s["duration"] for s in children)
        assert covered == pytest.approx(query_span["duration"], rel=0.10)
        assert query_span["duration"] == pytest.approx(wall, rel=0.10)

        # The budget decision rode along, with its predicted CostBreakdown
        # (attached to the phase span that executed under that decision).
        decisions = [
            d
            for s in (query_span, *children)
            for d in s["attrs"].get("decisions", ())
        ]
        assert decisions, "no delta decision attached to the trace"
        breakdown = decisions[0]["breakdown"]
        assert set(breakdown) >= {"scan", "lookup", "indexing", "total"}
        assert decisions[0]["predicted_seconds"] > 0.0
        # Sanity: the traced query really answered something.
        mask = (data >= 100) & (data <= 600_000)
        assert result.count == int(mask.sum())

    def test_trace_crosses_parallel_shard_worker_pipes(self):
        rng = np.random.default_rng(5)
        table = Table({"a": rng.integers(0, 100_000, 40_000)})
        session = IndexingSession(table)
        session.create_sharded_index(
            "a", method="PQ", shards=4, parallel=True, workers=2
        )
        session.between("a", 0, 100_000)  # fork workers / warm untraced path
        obs.configure(tracing=True)
        tracer = obs.tracer()
        tracer.clear()
        result = session.between("a", 10_000, 90_000)
        spans = tracer.drain()
        obs.configure(tracing=False)

        route = next(s for s in spans if s["name"] == "shard.route")
        shard_spans = [s for s in spans if s["name"] == "shard.query"]
        assert shard_spans, "no per-shard spans came back"
        # Worker-side spans carry the worker's pid and were shipped back
        # over the reply pipes into the parent's ring, same trace.
        worker_pids = {
            s["attrs"]["worker_pid"]
            for s in shard_spans
            if "worker_pid" in s["attrs"]
        }
        assert worker_pids and all(pid != os.getpid() for pid in worker_pids)
        assert {s["trace_id"] for s in spans} == {route["trace_id"]}
        data = np.asarray(table.column("a").data)
        mask = (data >= 10_000) & (data <= 90_000)
        assert result.count == int(mask.sum())


# ----------------------------------------------------------------------
# Live export and status wiring
# ----------------------------------------------------------------------
ROWS = 4_000
DOMAIN = 1_000_000


def _serve_session() -> IndexingSession:
    base = np.random.default_rng(11).integers(0, DOMAIN, size=ROWS, dtype=np.int64)
    session = IndexingSession(Column(base.copy(), name="ra"))
    session.create_index("ra", method="PQ", budget=FixedDelta(0.25))
    return session


class TestServeExport:
    def test_metrics_verb_matches_query_oracle(self, tmp_path):
        session = _serve_session()
        server = QueryServer(session=session, address=str(tmp_path / "svc.sock"))
        server.start()
        try:
            with ServiceClient(server.endpoint, role="reader") as reader:
                for n in range(20):
                    reader.between("ra", n * 1_000, n * 1_000 + 200_000)
                snapshot = reader.metrics()
                assert snapshot["enabled"] is True
                series = snapshot["series"]
                executed = session.index_for("ra").queries_executed
                pulled = [
                    e
                    for e in series
                    if e["name"] == "index.queries"
                    and e["labels"].get("column") == "ra"
                ]
                assert pulled and pulled[0]["value"] == executed
                assert any(e["name"] == "index.query.seconds" for e in series)
                assert any(e["name"] == "index.tau.ratio" for e in series)
                assert any(e["name"] == "scheduler.admitted" for e in series)
                json.dumps(snapshot)

                text = reader.metrics(format="prometheus")
                assert "# TYPE repro_index_queries_total counter" in text
                assert f'column="ra"' in text
                assert "repro_index_query_seconds_bucket" in text
        finally:
            server.stop()

    def test_trace_verb_returns_spans(self, tmp_path):
        session = _serve_session()
        server = QueryServer(session=session, address=str(tmp_path / "svc.sock"))
        server.start()
        obs.configure(tracing=True)
        try:
            with ServiceClient(server.endpoint, role="reader") as reader:
                reader.between("ra", 0, DOMAIN)
                reply = reader.trace(drain=True)
                assert reply["enabled"] is True
                assert any(s["name"] == "index.query" for s in reply["spans"])
        finally:
            obs.configure(tracing=False)
            server.stop()

    def test_status_carries_scheduler_fairness_and_buckets(self, tmp_path):
        session = _serve_session()
        server = QueryServer(session=session, address=str(tmp_path / "svc.sock"))
        server.start()
        try:
            with ServiceClient(server.endpoint, role="reader") as reader:
                reader.between("ra", 0, 250_000)
                status = reader.status()
                scheduler = status["scheduler"]
                assert "burst_queries" in scheduler
                assert "min_throttle" in scheduler and "total_weight" in scheduler
                interactive = scheduler["classes"]["interactive"]
                assert {"tau", "balance", "balance_cap"} <= set(interactive)
                fairness = scheduler["fairness"]
                entry = fairness.get("interactive:ra")
                assert entry is not None
                assert {"charged", "share", "fair_share", "throttle"} <= set(entry)
                assert 0.0 <= entry["share"] <= 1.0
        finally:
            server.stop()

    def test_metrics_snapshots_monotone_under_reader_writer_mix(self, tmp_path):
        session = _serve_session()
        server = QueryServer(session=session, address=str(tmp_path / "svc.sock"))
        server.start()
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader_loop():
            try:
                with ServiceClient(server.endpoint, role="reader") as client:
                    n = 0
                    while not stop.is_set():
                        client.between("ra", (n % 9) * 100_000, DOMAIN)
                        n += 1
            except BaseException as exc:  # surfaced in the main thread
                errors.append(exc)

        def writer_loop():
            try:
                with ServiceClient(server.endpoint, role="writer") as client:
                    while not stop.is_set():
                        client.insert([1, 2, 3])
                        client.commit()
                        time.sleep(0.002)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=reader_loop),
            threading.Thread(target=reader_loop),
            threading.Thread(target=writer_loop),
        ]
        for t in threads:
            t.start()
        try:
            with ServiceClient(server.endpoint, role="reader") as admin:
                last: dict[tuple, float] = {}
                for _ in range(25):
                    snapshot = admin.metrics()
                    json.dumps(snapshot)
                    for entry in snapshot["series"]:
                        key = (
                            entry["name"],
                            tuple(sorted(entry["labels"].items())),
                        )
                        if entry["kind"] == "counter":
                            value = entry["value"]
                        elif entry["kind"] == "histogram":
                            value = entry["count"]
                        else:
                            continue  # gauges legitimately move both ways
                        assert value >= last.get(key, 0.0), key
                        last[key] = value
        finally:
            stop.set()
            for t in threads:
                t.join()
            server.stop()
        assert not errors, errors


# ----------------------------------------------------------------------
# Session/status wiring (satellite: cache + spill counters surfaced)
# ----------------------------------------------------------------------
class TestStatusWiring:
    def test_session_status_surfaces_memory_counters(self, tmp_path):
        from repro.persist.compress import write_compressed_column

        path = str(tmp_path / "v.col")
        data = np.random.default_rng(11).integers(0, 40_000, 6_000).astype(np.int64)
        write_compressed_column(path, data, block_rows=512)
        budget = MemoryBudget(1, spill_dir=str(tmp_path))
        session = IndexingSession(
            Table({"v": Column.from_file(path, name="v", memory_budget=budget)})
        )
        session.create_index("v", method="PQ", fixed_delta=0.5)
        for low in range(0, 30_000, 5_000):
            session.between("v", low, low + 2_000)
        report = session.status()
        memory = report["memory"]
        assert memory["total_bytes"] == budget.total_bytes
        cache = memory["block_cache"]
        assert cache["hits"] + cache["misses"] > 0
        json.dumps(report)

        # The same counters surface as registry pull series.
        series = obs.metrics().snapshot()["series"]
        assert any(e["name"] == "cache.block.hits" for e in series)
        assert any(e["name"] == "scratch.spill.count" for e in series)

    def test_database_stats_bundles_metrics(self, tmp_path):
        from repro.persist.database import Database

        data = np.random.default_rng(7).integers(0, 10_000, 2_000)
        db = Database.create(str(tmp_path / "db"), {"ra": data})
        try:
            db.create_index("ra", method="PQ", fixed_delta=0.5)
            for low in range(0, 8_000, 1_000):
                db.between("ra", low, low + 500)
            stats = db.stats()
            assert stats["rows"] == 2_000
            names = {e["name"] for e in stats["metrics"]["series"]}
            assert "index.queries" in names
            assert "wal.size.bytes" in names
            json.dumps(stats)
        finally:
            db.close(checkpoint=False)
