"""Scheduler contracts: serialized mutation, τ admission, cross-class fairness.

Three properties of :class:`~repro.serve.scheduler.ProgressiveScheduler`:

* **Mutation is serialized.**  Once an index has a work lane, every
  life-cycle mutation (phase advance, query accounting) must happen on the
  thread holding the lane exclusively.  The racing-mutation detector — the
  guard the scheduler installs into :class:`~repro.core.phase.IndexLifecycle`
  — turns any unserialized advance into a :class:`~repro.errors.
  ConcurrencyError`; an in-flight probe proves at most one serialized query
  runs at a time under an 8-thread hammer.
* **τ admission.**  Every serialized query runs under a
  :class:`~repro.core.policy.CappedBudget` clamped to its class's admission
  allowance, so per-query granted indexing work never exceeds τ and the
  per-class p99 stays within the interactivity budget (all in
  deterministic model seconds).
* **Fairness.**  A class that consumed more than its weight-proportional
  share of a hot column's work sees its next allowance scaled down, while
  an under-served class keeps its full τ.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.phase import IndexPhase
from repro.core.policy import CappedBudget, FixedDelta
from repro.core.query import Predicate
from repro.engine.session import IndexingSession
from repro.engine.shared import SharedEngine
from repro.errors import ConcurrencyError
from repro.serve.connection import ConnectionClass
from repro.serve.scheduler import ProgressiveScheduler
from repro.storage.column import Column

ROWS = 4_000
DOMAIN = 1_000_000


def _session(method: str = "PQ", delta: float = 0.25) -> IndexingSession:
    data = np.random.default_rng(3).integers(0, DOMAIN, size=ROWS, dtype=np.int64)
    session = IndexingSession(Column(data, name="ra"))
    session.create_index("ra", method=method, budget=FixedDelta(delta))
    return session


def _predicate(rng) -> Predicate:
    low = int(rng.integers(0, DOMAIN - DOMAIN // 10))
    return Predicate(low, low + DOMAIN // 10)


# ----------------------------------------------------------------------
# Mutation guard / work-queue serialization
# ----------------------------------------------------------------------
class TestMutationGuard:
    def test_unserialized_query_trips_the_detector(self):
        """Bypassing the work queue on a scheduled index is a hard error."""
        session = _session()
        scheduler = ProgressiveScheduler()
        index = session.index_for("ra")
        scheduler.lane_for(index)  # installs the racing-mutation detector

        with pytest.raises(ConcurrencyError, match="work lane"):
            index.query(Predicate(1_000, 100_000))

    def test_unserialized_phase_advance_trips_the_detector(self):
        session = _session()
        scheduler = ProgressiveScheduler()
        index = session.index_for("ra")
        scheduler.lane_for(index)

        with pytest.raises(ConcurrencyError, match="work lane"):
            index.lifecycle.advance(IndexPhase.CREATION, 1)

    def test_scheduled_queries_pass_the_detector(self):
        """The same mutations are legal through the serialized lane."""
        session = _session()
        scheduler = ProgressiveScheduler()
        index = session.index_for("ra")
        cls = scheduler.class_named("interactive")
        result = scheduler.run_serialized(
            index, cls, "ra", lambda: index.query(Predicate(1_000, 100_000))
        )
        data = session.table.column("ra").data
        mask = (data >= 1_000) & (data <= 100_000)
        assert result.count == int(mask.sum())

    def test_unscheduled_index_stays_unguarded(self):
        """Negative control: without a lane the single-client API is unchanged."""
        session = _session()
        result = session.between("ra", 1_000, 100_000)
        assert result.count >= 0  # no ConcurrencyError

    def test_work_queue_admits_one_mutator_at_a_time(self):
        """8 racing threads, every query serialized, zero overlap observed."""
        session = _session()
        engine = SharedEngine(session)
        scheduler = engine.scheduler
        index = session.index_for("ra")
        cls = scheduler.class_named("interactive")

        in_flight = []
        overlaps = []
        errors = []
        barrier = threading.Barrier(8)

        def probe_query(rng):
            in_flight.append(None)
            if len(in_flight) > 1:
                overlaps.append(len(in_flight))
            try:
                return index.query(_predicate(rng))
            finally:
                in_flight.pop()

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                barrier.wait()
                for _ in range(25):
                    scheduler.run_serialized(
                        index, cls, "ra", lambda: probe_query(rng)
                    )
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(50 + i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        assert not errors, f"serialized query failed: {errors[0]!r}"
        assert not overlaps, f"work queue admitted {max(overlaps)} mutators at once"
        lane = scheduler.lane_for(index)
        assert lane.serialized_ops == 8 * 25


# ----------------------------------------------------------------------
# τ admission
# ----------------------------------------------------------------------
class TestAdmission:
    def test_capped_budget_clamps_each_grant(self):
        """Unit contract: a CappedBudget never grants past its allowance."""
        inner = FixedDelta(1.0)  # wants the whole column every query
        capped = CappedBudget(inner, allowance_seconds=0.004)
        full_work_time = 0.1
        delta = capped.next_delta(full_work_time=full_work_time, query_base_cost=0.01)
        assert delta * full_work_time <= 0.004 + 1e-12
        assert capped.granted_seconds == pytest.approx(delta * full_work_time)

    def test_per_query_grant_never_exceeds_tau(self):
        """The scheduler's admission ticket caps a greedy policy at τ."""
        tau = 0.002
        cls = ConnectionClass("tight", tau=tau, weight=1.0)
        scheduler = ProgressiveScheduler(classes=(cls,))
        session = _session(delta=1.0)  # policy wants full convergence per query
        index = session.index_for("ra")
        rng = np.random.default_rng(9)

        charges = []
        previous = 0.0
        for _ in range(30):
            scheduler.run_serialized(
                index, cls, "ra", lambda: index.query(_predicate(rng))
            )
            charged = scheduler.stats()["classes"]["tight"]["work_charged"]
            charges.append(charged - previous)
            previous = charged

        assert max(charges) <= tau * (1.0 + 1e-9), (
            f"a single query was granted {max(charges):.6f}s of indexing work "
            f"against tau={tau}"
        )
        # Admission must still grant *some* work — the index converges
        # eventually, it is not starved outright.
        assert sum(charges) > 0.0

    def test_per_class_p99_stays_within_budget(self):
        """Per-class p99 of granted indexing seconds ≤ τ (model seconds)."""
        classes = (
            ConnectionClass("interactive", tau=0.002, weight=4.0),
            ConnectionClass("batch", tau=0.02, weight=1.0),
        )
        scheduler = ProgressiveScheduler(classes=classes)
        session = _session(delta=1.0)
        index = session.index_for("ra")
        rng = np.random.default_rng(17)

        per_class_grants = {cls.name: [] for cls in classes}
        previous = {cls.name: 0.0 for cls in classes}
        for step in range(80):
            cls = classes[step % len(classes)]
            scheduler.run_serialized(
                index, cls, "ra", lambda: index.query(_predicate(rng))
            )
            charged = scheduler.stats()["classes"][cls.name]["work_charged"]
            per_class_grants[cls.name].append(charged - previous[cls.name])
            previous[cls.name] = charged

        for cls in classes:
            grants = per_class_grants[cls.name]
            p99 = float(np.percentile(grants, 99))
            assert p99 <= cls.tau * (1.0 + 1e-9), (
                f"class {cls.name!r}: p99 granted {p99:.6f}s > tau {cls.tau}"
            )

    def test_aggregate_charge_bounded_by_admissions(self):
        """Token bucket: total spend ≤ admitted queries × τ, balance ≥ 0."""
        tau = 0.003
        cls = ConnectionClass("metered", tau=tau, weight=1.0)
        scheduler = ProgressiveScheduler(classes=(cls,))
        session = _session(delta=1.0)
        index = session.index_for("ra")
        rng = np.random.default_rng(23)
        for _ in range(40):
            scheduler.run_serialized(
                index, cls, "ra", lambda: index.query(_predicate(rng))
            )
        account = scheduler.stats()["classes"]["metered"]
        assert account["queries_admitted"] == 40
        assert account["work_charged"] <= 40 * tau * (1.0 + 1e-9)
        assert account["balance"] >= 0.0

    def test_uncapped_class_is_never_throttled(self):
        scheduler = ProgressiveScheduler()
        admin = scheduler.class_named("admin")
        assert scheduler._admit(admin, "ra") == float("inf")


# ----------------------------------------------------------------------
# Fairness across hot columns
# ----------------------------------------------------------------------
class TestFairness:
    def test_greedy_class_is_throttled_on_a_hot_column(self):
        tau = 0.01
        greedy = ConnectionClass("greedy", tau=tau, weight=1.0)
        light = ConnectionClass("light", tau=tau, weight=1.0)
        scheduler = ProgressiveScheduler(classes=(greedy, light))
        session = _session(delta=1.0)
        index = session.index_for("ra")
        rng = np.random.default_rng(29)

        # The greedy class buys all of the column's convergence work.
        for _ in range(40):
            scheduler.run_serialized(
                index, greedy, "ra", lambda: index.query(_predicate(rng))
            )
        ledger = scheduler.stats()["columns"]
        assert ledger.get("greedy:ra", 0.0) > 0.0, "no work was ever charged"

        # Equal weights: the fair share is 1/2, the greedy class holds ~1.0
        # of it, so its next allowance is scaled to ~tau/2; the light class
        # has consumed nothing and keeps its full tau.
        greedy_allowance = scheduler._admit(greedy, "ra")
        light_allowance = scheduler._admit(light, "ra")
        assert light_allowance == pytest.approx(tau)
        assert greedy_allowance < light_allowance
        assert greedy_allowance == pytest.approx(tau / 2, rel=1e-6)

    def test_throttle_never_starves_below_the_floor(self):
        """Even a maximally over-served class keeps min_throttle × τ."""
        tau = 0.01
        greedy = ConnectionClass("greedy", tau=tau, weight=1.0)
        light = ConnectionClass("light", tau=tau, weight=99.0)
        scheduler = ProgressiveScheduler(classes=(greedy, light), min_throttle=0.1)
        session = _session(delta=1.0)
        index = session.index_for("ra")
        rng = np.random.default_rng(31)
        for _ in range(40):
            scheduler.run_serialized(
                index, greedy, "ra", lambda: index.query(_predicate(rng))
            )
        assert scheduler.stats()["columns"].get("greedy:ra", 0.0) > 0.0
        # fair share 1/100 against an actual share of ~1.0 would scale the
        # allowance to 1% — the floor keeps it at 10%.
        allowance = scheduler._admit(greedy, "ra")
        assert allowance == pytest.approx(0.1 * tau, rel=1e-6)

    def test_unknown_connection_class_is_rejected(self):
        scheduler = ProgressiveScheduler()
        with pytest.raises(ConcurrencyError, match="unknown connection class"):
            scheduler.class_named("warehouse")
