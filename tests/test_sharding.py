"""Unit tests for the sharding layer: layouts, columns, router, budget pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.phase import IndexPhase
from repro.core.policy import PooledBudgetController
from repro.core.query import Predicate
from repro.engine.session import IndexingSession
from repro.errors import ExperimentError, InvalidColumnError
from repro.shard import zonemaps
from repro.shard.column import ShardedColumn, shard_column, shard_table
from repro.shard.index import build_sharded_index, merge_phase
from repro.shard.partition import build_layout, rebalance_empty_shards
from repro.shard.router import ShardRouter
from repro.storage.column import Column
from repro.storage.table import Table


# ----------------------------------------------------------------------
# Layouts
# ----------------------------------------------------------------------
class TestLayout:
    def test_range_layout_splits_evenly(self, uniform_data):
        layout, source_rows, shard_ids = build_layout(uniform_data, 4, kind="range")
        sizes = layout.shard_sizes()
        assert sizes.sum() == uniform_data.size
        assert sizes.min() >= 0.8 * uniform_data.size / 4
        # every row assigned exactly once
        assert np.sort(np.concatenate(source_rows)).tolist() == list(
            range(uniform_data.size)
        )

    def test_range_layout_even_under_skew(self, skewed_data):
        layout, _, _ = build_layout(skewed_data, 8, kind="range")
        sizes = layout.shard_sizes()
        # quantile cuts keep shards near-even despite 90% value concentration
        assert sizes.min() >= 0.5 * skewed_data.size / 8

    def test_hash_layout_balanced(self, uniform_data):
        layout, _, _ = build_layout(uniform_data, 4, kind="hash")
        sizes = layout.shard_sizes()
        assert sizes.min() >= 0.5 * uniform_data.size / 4

    def test_route_values_matches_build_assignment(self, uniform_data):
        for kind in ("range", "hash"):
            layout, _, shard_ids = build_layout(uniform_data, 4, kind=kind)
            again = layout.route_values(uniform_data)
            assert np.array_equal(again, shard_ids), kind

    def test_shard_of_base_rid_inverts_offsets(self, uniform_data):
        layout, _, _ = build_layout(uniform_data, 4)
        rids = np.arange(layout.total_base_rows)
        owners = layout.shard_of_base_rid(rids)
        for shard in range(4):
            block = rids[owners == shard]
            assert block.min() == layout.offsets[shard]
            assert block.max() == layout.offsets[shard + 1] - 1

    def test_rebalance_fills_empty_shards(self):
        data = np.array([5] * 99 + [7], dtype=np.int64)
        layout, source_rows, _ = build_layout(data, 4)
        source_rows = rebalance_empty_shards(layout, source_rows)
        assert all(rows.size > 0 for rows in source_rows)
        assert layout.shard_sizes().sum() == 100

    def test_invalid_layouts_rejected(self):
        with pytest.raises(InvalidColumnError):
            build_layout(np.arange(10), 0)
        with pytest.raises(InvalidColumnError):
            build_layout(np.arange(3), 5)
        with pytest.raises(InvalidColumnError):
            build_layout(np.arange(10), 2, kind="modulo")


# ----------------------------------------------------------------------
# Zone-map primitives
# ----------------------------------------------------------------------
class TestZonemaps:
    def test_bin_range_bitmap_closed_form(self):
        for low, high in [(0, 0), (0, 63), (5, 12), (63, 63), (12, 5)]:
            expected = 0
            for bit in range(low, high + 1):
                expected |= 1 << bit
            assert int(zonemaps.bin_range_bitmap(low, high)) == expected

    def test_occupancy_bitmaps_match_per_block_loop(self, rng):
        values = rng.integers(0, 1000, 1000)
        edges = zonemaps.bin_edges(0, 1000, 64)
        block = 96  # non-divisor: exercises the partial tail block
        vectorized = zonemaps.occupancy_bitmaps(edges, values, block)
        for number in range(vectorized.size):
            chunk = values[number * block : (number + 1) * block]
            assert vectorized[number] == zonemaps.occupancy_bitmap(edges, chunk)

    def test_interval_candidates(self):
        mins = np.array([0.0, 100.0, 200.0])
        maxs = np.array([99.0, 199.0, 299.0])
        assert zonemaps.interval_candidates(mins, maxs, 150, 250).tolist() == [1, 2]
        assert zonemaps.interval_candidates(mins, maxs, 300, 400).tolist() == []

    def test_interval_overlap_matrix(self):
        mins = np.array([0.0, 100.0])
        maxs = np.array([99.0, 199.0])
        matrix = zonemaps.interval_overlap_matrix(mins, maxs, [0, 150], [50, 160])
        assert matrix.tolist() == [[True, False], [False, True]]


# ----------------------------------------------------------------------
# ShardedColumn
# ----------------------------------------------------------------------
class TestShardedColumn:
    def test_rids_where_globally_sorted_no_resort(self, uniform_data):
        column = shard_column(Column(uniform_data, name="v"), 4)
        plain = Column(uniform_data.copy(), name="v")
        # The sharded view permutes rows, so compare against the *sharded*
        # visible order's reference: rids map to the sharded value space.
        rids = column.rids_where(10_000, 20_000)
        assert np.all(np.diff(rids) > 0), "rids must be strictly ascending"
        values = column.values_at(rids)
        assert np.all((values >= 10_000) & (values <= 20_000))
        mask = (uniform_data >= 10_000) & (uniform_data <= 20_000)
        assert rids.size == int(mask.sum())
        assert int(values.sum()) == int(uniform_data[mask].sum())

    def test_rids_where_after_inserts_and_deletes(self, uniform_data, rng):
        column = shard_column(Column(uniform_data, name="v"), 4)
        inserted = rng.integers(0, 50_000, 500)
        new_rids = column.insert(inserted)
        assert new_rids.min() == column.total_base_rows
        total = column.total_base_rows + inserted.size
        # rid -> value map captured before deleting (rids are stable)
        values_by_rid = column.values_at(np.arange(total))
        deleted_rids = column.delete_where(5_000, 6_000)
        alive = np.ones(total, dtype=bool)
        alive[deleted_rids] = False
        rids = column.rids_where(0, 50_000)
        assert np.all(np.diff(rids) > 0)
        # every value is in [0, 50_000], so the answer is exactly the
        # alive rid set
        assert np.array_equal(rids, np.flatnonzero(alive))
        assert int(column.values_at(rids).sum()) == int(
            values_by_rid[alive].sum()
        )

    def test_sibling_columns_row_aligned(self, rng):
        a = rng.integers(0, 10_000, 5_000)
        b = rng.normal(size=5_000)
        table = Table({"a": a, "b": b})
        shard_table(table, "a", 4)
        col_a, col_b = table.column("a"), table.column("b")
        # the (shard, local-rid) concatenated views are row-aligned
        mask = np.asarray(col_a.data) < 5_000
        assert np.isclose(
            np.asarray(col_b.data)[mask].sum(), b[a < 5_000].sum()
        )
        # table-level insert routes every column with one assignment
        # (sentinels outside the base domain so the lookup is unambiguous)
        table.insert_rows(
            {"a": np.array([20_000, 30_000]), "b": np.array([0.5, -0.5])}
        )
        mask = np.asarray(col_a.data) == 20_000
        assert np.asarray(col_b.data)[mask].tolist() == [0.5]

    def test_non_driving_column_insert_requires_shard_ids(self, rng):
        table = Table({"a": rng.integers(0, 100, 500), "b": rng.normal(size=500)})
        shard_table(table, "a", 2)
        with pytest.raises(InvalidColumnError):
            table.column("b").insert([1.0])

    def test_shard_bounds_widen_with_inserts(self, uniform_data):
        column = shard_column(Column(uniform_data, name="v"), 4)
        mins_before, maxs_before = column.shard_bounds()
        column.insert(np.array([200_000]))
        _, maxs_after = column.shard_bounds()
        assert maxs_after.max() == 200_000.0
        assert maxs_after.max() > maxs_before.max()

    def test_ensure_shareable_rejected_after_write(self, uniform_data):
        column = shard_column(Column(uniform_data, name="v"), 2)
        column.insert(np.array([1]))
        with pytest.raises(InvalidColumnError):
            column.ensure_shareable()

    def test_shard_column_rejects_written_column(self, uniform_data):
        plain = Column(uniform_data, name="v")
        plain.insert(np.array([1]))
        with pytest.raises(InvalidColumnError):
            shard_column(plain, 2)


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class TestRouter:
    def test_pruned_shards_provably_empty(self, uniform_data, rng):
        """Property test: force-scan pruned shards — they must hold nothing."""
        column = shard_column(Column(uniform_data, name="v"), 7)
        router = ShardRouter(column)
        column.insert(rng.integers(0, 50_000, 200))
        for _ in range(50):
            low = int(rng.integers(0, 45_000))
            high = low + int(rng.integers(0, 5_000))
            survivors = set(router.route(low, high).tolist())
            for shard_number, shard in enumerate(column.shards):
                if shard_number not in survivors:
                    _, count = shard.scan_range(low, high)
                    assert count == 0, (
                        f"router pruned shard {shard_number} for "
                        f"[{low}, {high}] but it holds {count} rows"
                    )

    def test_range_layout_prunes_clustered_predicates(self, uniform_data):
        column = shard_column(Column(uniform_data, name="v"), 8)
        router = ShardRouter(column)
        # a narrow band inside one shard's value range
        survivors = router.route(1_000, 1_500)
        assert survivors.size <= 2
        assert router.pruned_fraction() >= 0.5

    def test_bitmap_router_prunes_hash_layout_clusters(self, rng):
        # values come in two well-separated clusters; hash sharding spreads
        # them across shards, but each shard's bitmap knows its bins
        values = np.concatenate(
            [rng.integers(0, 1_000, 5_000), rng.integers(60_000, 61_000, 5_000)]
        )
        column = shard_column(Column(values, name="v"), 4, kind="hash")
        plain = ShardRouter(column)
        binned = ShardRouter(column, bin_bits=True)
        # the gap region matches nothing: interval bounds cannot prune
        # (every shard spans the gap) but the bin bitmaps can
        assert plain.route(20_000, 40_000).size == 4
        assert binned.route(20_000, 40_000).size == 0

    def test_route_many_matches_route(self, uniform_data, rng):
        column = shard_column(Column(uniform_data, name="v"), 5)
        router = ShardRouter(column)
        lows = rng.integers(0, 45_000, 20)
        highs = lows + rng.integers(0, 5_000, 20)
        matrix = router.route_many(lows, highs)
        for number, (low, high) in enumerate(zip(lows, highs)):
            assert matrix[number].nonzero()[0].tolist() == router.route(
                low, high
            ).tolist()

    def test_counters_and_describe(self, uniform_data):
        column = shard_column(Column(uniform_data, name="v"), 4)
        router = ShardRouter(column)
        router.route(0, 50_000)
        report = router.describe()
        assert report["queries_routed"] == 1
        assert report["shards_dispatched"] == 4


# ----------------------------------------------------------------------
# Pooled budget controller
# ----------------------------------------------------------------------
class TestPooledBudget:
    def test_serial_split(self):
        pool = PooledBudgetController(0.01, n_shards=4, parallelism=1)
        assert pool.shard_budget(4) == pytest.approx(0.0025)
        assert pool.shard_budget(2) == pytest.approx(0.005)
        assert pool.shard_budget(1) == pytest.approx(0.01)

    def test_parallel_lanes_restore_tau(self):
        pool = PooledBudgetController(0.01, n_shards=4, parallelism=4)
        # all lanes concurrent: every shard gets the full tau
        assert pool.shard_budget(4) == pytest.approx(0.01)
        pool = PooledBudgetController(0.01, n_shards=4, parallelism=2)
        assert pool.shard_budget(4) == pytest.approx(0.005)

    def test_pruning_donates_budget(self):
        pool = PooledBudgetController(0.012, n_shards=6, parallelism=1)
        assert pool.shard_budget(2) > pool.shard_budget(6)

    def test_uncapped_when_no_tau(self):
        pool = PooledBudgetController(None, n_shards=4)
        assert pool.shard_budget(4) is None
        assert pool.shard_allowance(4, 0.001) == float("inf")

    def test_allowance_subtracts_base_cost(self):
        pool = PooledBudgetController(0.01, n_shards=2, parallelism=1)
        assert pool.shard_allowance(2, 0.001) == pytest.approx(0.004)
        assert pool.shard_allowance(2, 1.0) == 0.0

    def test_charge_accounting(self):
        pool = PooledBudgetController(0.01, n_shards=4)
        pool.charge(3, 0.002)
        snapshot = pool.snapshot()
        assert snapshot["queries"] == 1
        assert snapshot["shards_charged"] == 3
        assert snapshot["granted_seconds"] == pytest.approx(0.002)


# ----------------------------------------------------------------------
# Merged phase facade
# ----------------------------------------------------------------------
class TestMergedPhase:
    def test_merge_phase_rules(self):
        C, R, M, V = (
            IndexPhase.CREATION,
            IndexPhase.REFINEMENT,
            IndexPhase.MERGE,
            IndexPhase.CONVERGED,
        )
        assert merge_phase([V, V, V]) is V
        assert merge_phase([M, V, M]) is M
        assert merge_phase([C, R, V]) is C
        assert merge_phase([R, M, V]) is R
        assert merge_phase([IndexPhase.INACTIVE, C]) is IndexPhase.INACTIVE


# ----------------------------------------------------------------------
# Session wiring
# ----------------------------------------------------------------------
class TestSessionSharding:
    def test_conflicting_unsharded_index_rejected(self, rng):
        table = Table({"a": rng.integers(0, 100, 1_000)})
        session = IndexingSession(table)
        session.create_index("a", method="PQ")
        with pytest.raises(ExperimentError):
            session.create_sharded_index("a", method="PQ")
        session2 = IndexingSession(Table({"a": rng.integers(0, 100, 1_000)}))
        session2.create_index("a", method="FS")
        with pytest.raises(ExperimentError):
            session2.create_sharded_index("a", method="PQ", shards=2)

    def test_shard_count_mismatch_rejected(self, rng):
        table = Table(
            {"a": rng.integers(0, 100, 1_000), "b": rng.integers(0, 100, 1_000)}
        )
        session = IndexingSession(table)
        session.create_sharded_index("a", method="PQ", shards=4)
        with pytest.raises(ExperimentError):
            session.create_sharded_index("b", method="PQ", shards=2)

    def test_decision_tree_picks_method(self, rng):
        session = IndexingSession(Table({"a": rng.integers(0, 1000, 2_000)}))
        index = session.create_sharded_index("a", shards=2)
        assert index.name in ("PQ", "PMSD", "PLSD", "PB")

    def test_status_includes_sharding_block(self, rng):
        import json

        session = IndexingSession(Table({"a": rng.integers(0, 1000, 2_000)}))
        session.create_sharded_index(
            "a", method="PQ", shards=3, interactivity_budget=0.005
        )
        session.between("a", 100, 200)
        session.insert(np.array([5, 6, 7]), "a")
        status = session.status()["a"]
        json.dumps(status)  # must stay JSON-serializable
        sharding = status["sharding"]
        assert sharding["layout"]["n_shards"] == 3
        assert sharding["pool"]["tau"] == pytest.approx(0.005)
        assert set(sharding["shards"]) == {"0", "1", "2"}
        assert status["writes"]["column_inserts"] == 3

    def test_where_composes_across_sharded_columns(self, rng):
        a = rng.integers(0, 10_000, 8_000)
        b = rng.integers(0, 10_000, 8_000)
        table = Table({"a": a, "b": b})
        session = IndexingSession(table)
        session.create_sharded_index("a", method="PQ", shards=4)
        for _ in range(3):
            result = session.where({"a": (1_000, 4_000), "b": (2_000, 9_000)})
            mask = (a >= 1_000) & (a <= 4_000) & (b >= 2_000) & (b <= 9_000)
            assert result.count == int(mask.sum())
            assert int(result.sum_of("a")) == int(a[mask].sum())
            assert int(result.sum_of("b")) == int(b[mask].sum())

    def test_drop_index_closes_executor(self, rng):
        session = IndexingSession(Table({"a": rng.integers(0, 1000, 2_000)}))
        index = session.create_sharded_index("a", method="PQ", shards=2)
        session.between("a", 0, 100)
        session.drop_index("a")
        assert index._closed

    def test_swap_budget_rejected(self, rng):
        index = build_sharded_index(np.arange(1_000), "PQ", shards=2)
        with pytest.raises(ExperimentError):
            index.swap_budget(None)
