"""Tests for the high-level IndexingSession API."""

import numpy as np
import pytest

from repro.core.budget import AdaptiveBudget
from repro.core.policy import CostModelGreedy
from repro.engine import IndexingSession
from repro.errors import ExperimentError, IndexStateError
from repro.storage import Column, Table


@pytest.fixture
def table(uniform_data, skewed_data):
    return Table({"uniform": uniform_data, "skewed": skewed_data[: len(uniform_data)]})


class TestSessionConstruction:
    def test_from_table(self, table):
        session = IndexingSession(table)
        assert set(session.table.column_names) == {"uniform", "skewed"}

    def test_from_column(self, uniform_data):
        session = IndexingSession(Column(uniform_data, name="ra"))
        assert "ra" in session.table

    def test_from_array(self, uniform_data):
        session = IndexingSession(uniform_data)
        assert "value" in session.table


class TestSessionIndexing:
    def test_create_named_index(self, table):
        session = IndexingSession(table)
        index = session.create_index("uniform", method="PMSD", fixed_delta=0.25)
        assert index.name == "PMSD"
        assert session.index_for("uniform") is index

    def test_create_index_with_decision_tree(self, table):
        session = IndexingSession(table)
        index = session.create_index("skewed", skewed_data=True)
        assert index.name == "PB"

    def test_create_index_defaults_to_adaptive_budget(self, table):
        session = IndexingSession(table)
        index = session.create_index("uniform", method="PQ")
        assert isinstance(index.budget, AdaptiveBudget)

    def test_duplicate_index_rejected(self, table):
        session = IndexingSession(table)
        session.create_index("uniform", method="PQ")
        with pytest.raises(ExperimentError):
            session.create_index("uniform", method="PB")

    def test_drop_index(self, table):
        session = IndexingSession(table)
        session.create_index("uniform", method="PQ")
        session.drop_index("uniform")
        with pytest.raises(IndexStateError):
            session.index_for("uniform")

    def test_index_for_unknown_column(self, table):
        session = IndexingSession(table)
        with pytest.raises(IndexStateError):
            session.index_for("uniform")


class TestSessionQueries:
    def test_between_uses_index_and_is_exact(self, table, uniform_data, rng):
        session = IndexingSession(table)
        session.create_index("uniform", method="PQ", fixed_delta=0.25)
        for _ in range(30):
            low = int(rng.integers(0, 40_000))
            high = low + 5_000
            result = session.between("uniform", low, high)
            mask = (uniform_data >= low) & (uniform_data <= high)
            assert result.count == mask.sum()
            assert result.value_sum == uniform_data[mask].sum()

    def test_between_without_index_scans(self, table, uniform_data):
        session = IndexingSession(table)
        result = session.between("uniform", 0, 1_000)
        mask = uniform_data <= 1_000
        assert result.count == mask.sum()

    def test_equals(self, table, uniform_data):
        session = IndexingSession(table)
        value = int(uniform_data[0])
        result = session.equals("uniform", value)
        assert result.count == int((uniform_data == value).sum())

    def test_status_reports_progress(self, table, rng):
        session = IndexingSession(table)
        session.create_index("uniform", method="PB", fixed_delta=0.5)
        for _ in range(10):
            low = int(rng.integers(0, 40_000))
            session.between("uniform", low, low + 1_000)
        status = session.status()
        assert status["uniform"]["algorithm"] == "PB"
        assert status["uniform"]["queries_executed"] == 10
        assert status["uniform"]["memory_bytes"] > 0

    def test_queries_drive_convergence(self, table, rng):
        session = IndexingSession(table)
        session.create_index("uniform", method="PMSD", fixed_delta=1.0)
        for _ in range(30):
            low = int(rng.integers(0, 40_000))
            session.between("uniform", low, low + 1_000)
            if session.index_for("uniform").converged:
                break
        assert session.index_for("uniform").converged
        assert session.status()["uniform"]["converged"]


class TestInteractivityBudget:
    def test_create_index_with_interactivity_budget(self, table):
        session = IndexingSession(table)
        index = session.create_index("uniform", method="PQ", interactivity_budget=0.5)
        assert isinstance(index.budget, CostModelGreedy)
        assert index.budget.interactivity_budget == pytest.approx(0.5)
        result = session.between("uniform", 100, 5_000)
        assert result.count >= 0

    def test_budget_parameters_are_mutually_exclusive(self, table):
        session = IndexingSession(table)
        with pytest.raises(ExperimentError):
            session.create_index(
                "uniform", method="PQ", fixed_delta=0.1, interactivity_budget=0.5
            )

    def test_status_reports_phase_stats(self, table):
        session = IndexingSession(table)
        session.create_index("uniform", method="PMSD", fixed_delta=0.5)
        for low in range(0, 2_000, 100):
            session.between("uniform", low, low + 500)
        status = session.status()["uniform"]
        assert "phase_stats" in status and "budget" in status
        phase_stats = status["phase_stats"]
        assert sum(stats["queries"] for stats in phase_stats.values()) == 20
        assert any(stats["indexing_seconds"] > 0 for stats in phase_stats.values())
