"""Tests for the budget-policy layer and the budget controller.

Covers the cost-model-greedy solve (exact, against a linear ``predict``),
the deterministic clock-driven feedback loops, the pooled batch policy's
mapping from per-query policies, the controller's clamping contract, and
the convergence / interactivity properties of every registry algorithm
under each policy flavour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost_model import CostBreakdown
from repro.core.phase import IndexPhase
from repro.core.policy import (
    MINIMUM_DELTA,
    ManualClock,
    BatchPool,
    BudgetController,
    BudgetPolicy,
    CostModelGreedy,
    DeltaRequest,
    FixedDelta,
    FixedTime,
    TimeAdaptive,
)
from repro.core.query import Predicate
from repro.engine.registry import ALGORITHMS, PROGRESSIVE_ALGORITHMS, create_index
from repro.errors import InvalidBudgetError
from repro.storage.column import Column
from repro.workloads.distributions import uniform_data


def linear_predict(base: float, slope: float):
    """A linear-in-delta cost function, like every per-phase formula."""
    return lambda delta: CostBreakdown(scan=base, lookup=0.0, indexing=delta * slope)


# ----------------------------------------------------------------------
# CostModelGreedy
# ----------------------------------------------------------------------
class TestCostModelGreedy:
    def test_requires_exactly_one_parameter(self):
        with pytest.raises(InvalidBudgetError):
            CostModelGreedy()
        with pytest.raises(InvalidBudgetError):
            CostModelGreedy(interactivity_budget=1.0, scan_fraction=0.2)

    def test_rejects_non_positive(self):
        with pytest.raises(InvalidBudgetError):
            CostModelGreedy(interactivity_budget=0.0)
        with pytest.raises(InvalidBudgetError):
            CostModelGreedy(scan_fraction=-0.5)

    def test_scan_fraction_requires_registration(self):
        policy = CostModelGreedy(scan_fraction=0.2)
        with pytest.raises(InvalidBudgetError):
            policy.next_delta(1.0)

    def test_tau_resolution_from_scan_fraction(self):
        policy = CostModelGreedy(scan_fraction=0.2)
        policy.register_scan_time(1.0)
        assert policy.tau == pytest.approx(1.2)

    def test_solves_exactly_against_linear_predict(self):
        # tau = 2.0, base = 1.0, full work adds 4.0 -> delta = 0.25 lands
        # the predicted total exactly on tau.
        policy = CostModelGreedy(interactivity_budget=2.0)
        predict = linear_predict(base=1.0, slope=4.0)
        request = DeltaRequest(full_work_time=4.0, base_cost=predict(0.0), predict=predict)
        delta = policy.choose(request)
        assert delta == pytest.approx(0.25)
        assert predict(delta).total == pytest.approx(2.0)

    def test_no_slack_falls_back_to_minimum_delta(self):
        policy = CostModelGreedy(interactivity_budget=1.0)
        predict = linear_predict(base=5.0, slope=4.0)
        request = DeltaRequest(full_work_time=4.0, base_cost=predict(0.0), predict=predict)
        assert policy.choose(request) == pytest.approx(MINIMUM_DELTA)

    def test_caps_at_one(self):
        policy = CostModelGreedy(interactivity_budget=100.0)
        predict = linear_predict(base=1.0, slope=4.0)
        request = DeltaRequest(full_work_time=4.0, base_cost=predict(0.0), predict=predict)
        assert policy.choose(request) == 1.0

    def test_next_delta_matches_slack_formula(self):
        policy = CostModelGreedy(interactivity_budget=2.0)
        assert policy.next_delta(4.0, query_base_cost=1.0) == pytest.approx(0.25)

    def test_no_clock_means_no_correction(self):
        policy = CostModelGreedy(interactivity_budget=2.0)
        policy.observe(100.0, 1.0)  # would be a huge miss
        assert policy.correction_for(IndexPhase.CREATION) == 1.0

    def test_backoff_when_predictions_miss(self):
        # Measured times 2x the prediction: the correction rises, the
        # effective tau falls, delta shrinks.
        clock = ManualClock()
        policy = CostModelGreedy(interactivity_budget=2.0, clock=clock)
        predict = linear_predict(base=1.0, slope=4.0)
        request = DeltaRequest(
            full_work_time=4.0, base_cost=predict(0.0), predict=predict,
            phase=IndexPhase.CREATION,
        )
        first = policy.choose(request)
        policy.observe(elapsed_seconds=4.0, predicted_seconds=2.0)  # 2x miss
        backed_off = policy.choose(request)
        assert backed_off < first
        assert policy.correction_for(IndexPhase.CREATION) > 1.0

    def test_default_correction_is_backoff_only(self):
        clock = ManualClock()
        policy = CostModelGreedy(interactivity_budget=2.0, clock=clock)
        predict = linear_predict(base=1.0, slope=4.0)
        request = DeltaRequest(
            full_work_time=4.0, base_cost=predict(0.0), predict=predict,
            phase=IndexPhase.CREATION,
        )
        policy.choose(request)
        # Queries running faster than predicted must not inflate delta with
        # the default (backoff-only) correction range.
        policy.observe(elapsed_seconds=0.5, predicted_seconds=2.0)
        assert policy.correction_for(IndexPhase.CREATION) == 1.0

    def test_symmetric_range_reclaims_slack(self):
        clock = ManualClock()
        policy = CostModelGreedy(
            interactivity_budget=2.0, correction_range=(0.25, 4.0), clock=clock
        )
        predict = linear_predict(base=1.0, slope=4.0)
        request = DeltaRequest(
            full_work_time=4.0, base_cost=predict(0.0), predict=predict,
            phase=IndexPhase.CREATION,
        )
        first = policy.choose(request)
        policy.observe(elapsed_seconds=0.5, predicted_seconds=2.0)
        assert policy.choose(request) > first

    def test_corrections_are_per_phase(self):
        clock = ManualClock()
        policy = CostModelGreedy(interactivity_budget=2.0, clock=clock)
        predict = linear_predict(base=1.0, slope=4.0)
        creation = DeltaRequest(
            full_work_time=4.0, base_cost=predict(0.0), predict=predict,
            phase=IndexPhase.CREATION,
        )
        refinement = DeltaRequest(
            full_work_time=4.0, base_cost=predict(0.0), predict=predict,
            phase=IndexPhase.REFINEMENT,
        )
        policy.choose(creation)
        policy.observe(4.0, 2.0)  # creation misses by 2x
        assert policy.correction_for(IndexPhase.CREATION) > 1.0
        assert policy.correction_for(IndexPhase.REFINEMENT) == 1.0
        # Refinement decisions are unaffected by the creation miss.
        assert policy.choose(refinement) == pytest.approx(0.25)

    def test_correction_is_clamped(self):
        clock = ManualClock()
        policy = CostModelGreedy(interactivity_budget=2.0, clock=clock)
        predict = linear_predict(base=1.0, slope=4.0)
        request = DeltaRequest(
            full_work_time=4.0, base_cost=predict(0.0), predict=predict,
            phase=IndexPhase.CREATION,
        )
        for _ in range(50):
            policy.choose(request)
            policy.observe(1000.0, 1.0)
        assert policy.correction_for(IndexPhase.CREATION) <= policy.correction_range[1]

    def test_describe(self):
        assert "0.2" in CostModelGreedy(scan_fraction=0.2).describe()
        assert "tau" in CostModelGreedy(interactivity_budget=0.5).describe()


# ----------------------------------------------------------------------
# BudgetController
# ----------------------------------------------------------------------
class TestBudgetController:
    def test_rejects_non_policy(self):
        with pytest.raises(InvalidBudgetError):
            BudgetController(object())

    def test_decide_clamps_to_max_delta(self):
        controller = BudgetController(FixedDelta(0.8))
        predict = linear_predict(base=0.0, slope=1.0)
        decision = controller.decide(
            DeltaRequest(full_work_time=1.0, base_cost=predict(0.0),
                         predict=predict, max_delta=0.3)
        )
        assert decision.delta == pytest.approx(0.3)
        assert decision.predicted.total == pytest.approx(0.3)

    def test_decide_without_predict_has_no_prediction(self):
        controller = BudgetController(FixedDelta(0.5))
        decision = controller.decide(DeltaRequest(full_work_time=1.0))
        assert decision.predicted is None
        assert decision.predicted_seconds is None

    def test_swap_policy_resolves_against_known_scan_time(self):
        controller = BudgetController(FixedDelta(0.5))
        controller.register_scan_time(1.0)
        incoming = TimeAdaptive(scan_fraction=0.2)
        previous = controller.swap_policy(incoming)
        assert previous.delta == 0.5
        # The swapped-in policy was resolved immediately.
        assert incoming.budget_seconds == pytest.approx(0.2)
        assert incoming.next_delta(1.0, query_base_cost=0.4) == pytest.approx(0.8)

    def test_swap_policy_rejects_non_policy(self):
        controller = BudgetController(FixedDelta(0.5))
        with pytest.raises(InvalidBudgetError):
            controller.swap_policy("nope")

    def test_query_timing_flows_into_policy(self):
        clock = ManualClock()
        policy = CostModelGreedy(interactivity_budget=2.0, clock=clock)
        controller = BudgetController(policy)
        predict = linear_predict(base=1.0, slope=4.0)
        controller.decide(DeltaRequest(
            full_work_time=4.0, base_cost=predict(0.0), predict=predict,
            phase=IndexPhase.CREATION,
        ))
        started = controller.query_started()
        clock.advance(4.0)
        controller.query_finished(started, predicted_seconds=2.0)
        assert policy.correction_for(IndexPhase.CREATION) > 1.0

    def test_no_clock_no_timing(self):
        controller = BudgetController(FixedDelta(0.5))
        assert controller.query_started() is None
        controller.query_finished(None, predicted_seconds=1.0)  # no-op


# ----------------------------------------------------------------------
# BatchPool
# ----------------------------------------------------------------------
class TestBatchPool:
    def test_for_index_maps_greedy_to_interactivity_slack(self, uniform_column):
        index = create_index("PQ", uniform_column,
                             budget=CostModelGreedy(interactivity_budget=3.0))
        pool = BatchPool.for_index(index, n_queries=10)
        pool.register_scan_time(1.0)
        # Per-query slack is tau - t_scan = 2.0 seconds.
        assert pool.pool_seconds == pytest.approx(20.0)

    def test_for_index_maps_greedy_scan_fraction(self, uniform_column):
        index = create_index("PQ", uniform_column,
                             budget=CostModelGreedy(scan_fraction=0.5))
        pool = BatchPool.for_index(index, n_queries=4)
        pool.register_scan_time(2.0)
        # tau = (1 + 0.5) * 2 = 3; slack per query = 1.
        assert pool.pool_seconds == pytest.approx(4.0)

    def test_for_index_maps_time_adaptive(self, uniform_column):
        index = create_index("PQ", uniform_column,
                             budget=TimeAdaptive(budget_seconds=0.5))
        pool = BatchPool.for_index(index, n_queries=8)
        pool.register_scan_time(1.0)
        assert pool.pool_seconds == pytest.approx(4.0)

    def test_for_index_maps_fixed_time(self, uniform_column):
        index = create_index("PQ", uniform_column, budget=FixedTime(0.25))
        pool = BatchPool.for_index(index, n_queries=4)
        pool.register_scan_time(1.0)
        assert pool.pool_seconds == pytest.approx(1.0)

    def test_reservoir_drains_and_exhausts(self):
        pool = BatchPool(2, per_query_seconds=1.0)
        assert pool.next_delta(4.0) == pytest.approx(0.5)
        assert pool.remaining_seconds == pytest.approx(0.0)
        assert pool.exhausted
        assert pool.next_delta(4.0) == 0.0

    def test_interactivity_budget_below_scan_yields_empty_pool(self):
        pool = BatchPool(5, interactivity_budget=0.5)
        pool.register_scan_time(1.0)
        assert pool.pool_seconds == pytest.approx(0.0)
        assert pool.exhausted


# ----------------------------------------------------------------------
# Registry-wide policy properties
# ----------------------------------------------------------------------
N_PROPERTY_ELEMENTS = 3_000
MAX_PROPERTY_QUERIES = 150

#: The policy flavours of the tentpole, each generous enough to converge a
#: progressive index well within MAX_PROPERTY_QUERIES.
POLICY_FACTORIES = {
    "fixed_delta": lambda: FixedDelta(0.5),
    "time_adaptive": lambda: TimeAdaptive(scan_fraction=4.0),
    "cost_model_greedy": lambda: CostModelGreedy(scan_fraction=4.0),
}


def property_workload(data: np.ndarray, rng: np.random.Generator):
    low, high = int(data.min()), int(data.max())
    span = max(1, high - low)
    predicates = []
    for query_number in range(MAX_PROPERTY_QUERIES):
        if query_number % 3 == 0:
            value = int(data[rng.integers(0, data.size)])
            predicates.append(Predicate(value, value))
        else:
            start = int(rng.integers(low, high))
            predicates.append(Predicate(start, start + span // 5))
    return predicates


@pytest.mark.parametrize("policy_name", sorted(POLICY_FACTORIES))
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_registry_algorithms_run_under_every_policy(name, policy_name):
    """Every algorithm accepts every policy; progressive ones converge.

    The lifecycle also proves the phase order stayed monotone: its
    transition history is ordered by construction (advance() raises on a
    backward move), so reaching CONVERGED means the canonical sequence was
    walked forward only.
    """
    rng = np.random.default_rng(97)
    data = uniform_data(N_PROPERTY_ELEMENTS, rng=rng)
    index = create_index(name, Column(data, name="value"),
                         budget=POLICY_FACTORIES[policy_name]())
    for predicate in property_workload(data, rng):
        index.query(predicate)
        if index.converged:
            break
    if name in PROGRESSIVE_ALGORITHMS or name == "FI":
        assert index.converged, f"{name} failed to converge under {policy_name}"
        orders = [phase.order for _, phase in index.lifecycle.transitions]
        assert orders == sorted(orders)
        assert index.lifecycle.transitions[-1][1] is IndexPhase.CONVERGED
    else:
        # Baselines / cracking never converge but must stay functional.
        assert not index.converged


@pytest.mark.parametrize("name", sorted(PROGRESSIVE_ALGORITHMS))
def test_greedy_keeps_predicted_totals_within_tau(name):
    """Pre-convergence, the greedy policy's predicted totals land on tau."""
    rng = np.random.default_rng(11)
    data = uniform_data(N_PROPERTY_ELEMENTS, rng=rng)
    policy = CostModelGreedy(scan_fraction=4.0)
    index = create_index(name, Column(data, name="value"), budget=policy)
    # Tolerance: the minimum-delta floor and the creation cap (delta can
    # never exceed the uncopied fraction) may push a query marginally off.
    for predicate in property_workload(data, rng):
        converged_before = index.converged
        index.query(predicate)
        if converged_before:
            break
        assert index.last_stats.predicted_cost is not None
        assert index.last_stats.predicted_cost <= policy.tau * 1.05, (
            f"{name}: predicted {index.last_stats.predicted_cost} "
            f"exceeds tau {policy.tau}"
        )


def test_legacy_budget_aliases_point_at_policy_classes():
    from repro.core import budget as legacy

    assert legacy.IndexingBudget is BudgetPolicy
    assert legacy.FixedBudget is FixedDelta
    assert legacy.FixedTimeBudget is FixedTime
    assert legacy.AdaptiveBudget is TimeAdaptive
    assert legacy.BatchBudget is BatchPool
