"""Tests for the column and table storage layer."""

import numpy as np
import pytest

from repro.errors import InvalidColumnError
from repro.storage import Column, Table


class TestColumnConstruction:
    def test_from_list(self):
        column = Column([3, 1, 2])
        assert len(column) == 3
        assert column.dtype == np.int64

    def test_from_numpy_int(self):
        column = Column(np.array([1, 2, 3], dtype=np.int32))
        assert column.dtype == np.int64

    def test_from_numpy_float(self):
        column = Column(np.array([1.5, 2.5]))
        assert column.dtype == np.float64

    def test_name(self):
        assert Column([1], name="ra").name == "ra"

    def test_rejects_empty(self):
        with pytest.raises(InvalidColumnError):
            Column([])

    def test_rejects_two_dimensional(self):
        with pytest.raises(InvalidColumnError):
            Column(np.zeros((2, 2)))

    def test_rejects_object_dtype(self):
        with pytest.raises(InvalidColumnError):
            Column(np.array(["a", "b"]))

    def test_data_is_read_only(self):
        column = Column([1, 2, 3])
        with pytest.raises(ValueError):
            column.data[0] = 99

    def test_copy_data_is_writable(self):
        column = Column([1, 2, 3])
        copy = column.copy_data()
        copy[0] = 99
        assert column.data[0] == 1

    def test_getitem_and_iter(self):
        column = Column([5, 6, 7])
        assert column[1] == 6
        assert list(column) == [5, 6, 7]


class TestColumnStatistics:
    def test_min_max(self):
        column = Column([5, 3, 9, 1])
        assert column.min() == 1
        assert column.max() == 9
        assert column.value_range() == (1, 9)

    def test_min_max_cached(self):
        column = Column([2, 4])
        assert column.min() == column.min()


class TestColumnScans:
    def test_scan_range_inclusive(self):
        column = Column([1, 2, 3, 4, 5])
        total, count = column.scan_range(2, 4)
        assert (total, count) == (9, 3)

    def test_scan_range_empty(self):
        column = Column([1, 2, 3])
        total, count = column.scan_range(10, 20)
        assert (total, count) == (0, 0)

    def test_scan_range_partial_window(self):
        column = Column([1, 2, 3, 4, 5])
        total, count = column.scan_range(0, 10, start=2, stop=4)
        assert (total, count) == (7, 2)

    def test_scan_count(self):
        column = Column([1, 1, 2, 3])
        assert column.scan_count(1, 1) == 2

    def test_scan_matches_numpy(self, uniform_data):
        column = Column(uniform_data)
        total, count = column.scan_range(1000, 4000)
        mask = (uniform_data >= 1000) & (uniform_data <= 4000)
        assert count == mask.sum()
        assert total == uniform_data[mask].sum()


class TestTable:
    def test_basic_access(self):
        table = Table({"a": [1, 2, 3], "b": [4, 5, 6]}, name="t")
        assert len(table) == 3
        assert set(table.column_names) == {"a", "b"}
        assert table["a"][0] == 1
        assert "a" in table and "c" not in table

    def test_accepts_column_instances(self):
        column = Column([1, 2], name="x")
        table = Table({"x": column})
        assert table.column("x") is column

    def test_rejects_empty(self):
        with pytest.raises(InvalidColumnError):
            Table({})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(InvalidColumnError):
            Table({"a": [1, 2], "b": [1]})

    def test_unknown_column(self):
        table = Table({"a": [1]})
        with pytest.raises(InvalidColumnError):
            table.column("missing")

    def test_from_arrays(self):
        table = Table.from_arrays(a=np.array([1, 2]), b=np.array([3, 4]))
        assert len(table) == 2
