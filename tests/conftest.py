"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import Predicate, QueryResult
from repro.storage.column import Column


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running soak/stress tests (deselect with -m 'not slow')"
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def uniform_data(rng) -> np.ndarray:
    """Uniform integers with duplicates over a domain of 50_000."""
    return rng.integers(0, 50_000, size=20_000, dtype=np.int64)


@pytest.fixture
def skewed_data(rng) -> np.ndarray:
    """Skewed integers: 90% concentrated in the middle tenth of the domain."""
    hot = rng.integers(22_500, 27_500, size=18_000, dtype=np.int64)
    cold = rng.integers(0, 50_000, size=2_000, dtype=np.int64)
    data = np.concatenate([hot, cold])
    rng.shuffle(data)
    return data


@pytest.fixture
def uniform_column(uniform_data) -> Column:
    """A column over the uniform test data."""
    return Column(uniform_data, name="value")


@pytest.fixture
def skewed_column(skewed_data) -> Column:
    """A column over the skewed test data."""
    return Column(skewed_data, name="value")


def brute_force(data: np.ndarray, predicate: Predicate) -> QueryResult:
    """Reference answer computed with a plain NumPy filter."""
    mask = (data >= predicate.low) & (data <= predicate.high)
    count = int(mask.sum())
    if count == 0:
        return QueryResult(0, 0)
    return QueryResult(data[mask].sum(), count)


def random_range_predicates(data: np.ndarray, n_queries: int, rng, selectivity: float = 0.1):
    """Random range predicates over the data's domain."""
    low, high = int(data.min()), int(data.max())
    width = max(1, int((high - low) * selectivity))
    predicates = []
    for _ in range(n_queries):
        start = int(rng.integers(low, max(low + 1, high - width)))
        predicates.append(Predicate(start, start + width))
    return predicates


def random_point_predicates(data: np.ndarray, n_queries: int, rng):
    """Random point predicates on existing values."""
    return [
        Predicate(int(value), int(value))
        for value in data[rng.integers(0, data.size, size=n_queries)]
    ]


def assert_matches_brute_force(index, data: np.ndarray, predicates) -> None:
    """Every predicate must be answered exactly like the reference scan."""
    for query_number, predicate in enumerate(predicates):
        result = index.query(predicate)
        expected = brute_force(data, predicate)
        assert result.count == expected.count, (
            f"query {query_number} ({predicate}): count {result.count} != {expected.count} "
            f"in phase {index.phase}"
        )
        assert result.value_sum == expected.value_sum, (
            f"query {query_number} ({predicate}): sum mismatch in phase {index.phase}"
        )
