"""Subprocess worker for the crash-injection suite.

Runs a deterministic write workload against a persisted database and kills
itself (``SIGKILL``, via the durability layer's fault-point hooks) at a
scenario-specific protocol step.  The parent test then recovers the
directory and asserts the durability contract.

Usage: ``python crash_worker.py <directory> <scenario>``

Scenarios (sentinel values document what must / must not survive):

``uncommitted-lost``
    Dies mid-append of an *uncommitted* insert (no commit marker).  The
    committed history (A, B) must survive; the dying insert (C) must not.
``commit-durable``
    Dies immediately after B's commit marker fsync.  B must survive.
``commit-marker-torn``
    Dies after B's commit marker is written and flushed but *before* its
    fsync.  Under ``kill -9`` the flushed marker reaches the page cache and
    survives the process (only power loss could drop it), so B must be
    recovered — and recovery must treat the boundary consistently either
    way (no partial replay, no divergence from the oracle).
``mid-checkpoint``
    Dies after writing the second checkpoint's temp file but before its
    atomic publish.  Recovery uses the *first* checkpoint plus WAL replay.
``checkpoint-published``
    Dies after the second checkpoint is published but before the WAL is
    reset — the window where WAL records are also covered by the
    checkpoint.  Recovery must not double-apply them.
"""

from __future__ import annotations

import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.persist.database import Database  # noqa: E402
from repro.persist.faults import CRASH_ENV  # noqa: E402

#: Sentinel values; the parent asserts on their exact visible counts.
SENTINEL_A = 9_100_001  # committed before the first checkpoint (3 rows)
SENTINEL_B = 9_200_002  # committed after the first checkpoint (4 rows)
SENTINEL_C = 9_300_003  # never committed (5 rows) — must not survive

ROWS = 5_000
DOMAIN = 1_000_000


def base_data() -> np.ndarray:
    return np.random.default_rng(42).integers(0, DOMAIN, size=ROWS)


def main() -> int:
    directory, scenario = sys.argv[1], sys.argv[2]
    db = Database.create(directory, {"ra": base_data()})
    db.create_index("ra", method="PQ", fixed_delta=0.5)
    for low in (1_000, 250_000, 500_000, 750_000):
        db.between("ra", low, low + 100_000)

    db.insert([SENTINEL_A] * 3)
    db.commit()
    db.checkpoint()  # index state + A are on disk; WAL truncated

    if scenario == "commit-durable":
        os.environ[CRASH_ENV] = "wal-after-commit"
    elif scenario == "commit-marker-torn":
        os.environ[CRASH_ENV] = "wal-before-commit-fsync"
    db.insert([SENTINEL_B] * 4)
    db.commit()  # dies here under the two commit scenarios

    if scenario == "mid-checkpoint":
        os.environ[CRASH_ENV] = "checkpoint-before-publish"
    elif scenario == "checkpoint-published":
        os.environ[CRASH_ENV] = "checkpoint-after-publish"
    if scenario in ("mid-checkpoint", "checkpoint-published"):
        db.checkpoint()  # dies inside, around the atomic publish

    if scenario == "uncommitted-lost":
        os.environ[CRASH_ENV] = "wal-after-append"
    db.insert([SENTINEL_C] * 5)  # dies here under uncommitted-lost

    # A scenario must never fall through to a graceful exit: the parent
    # asserts on SIGKILL, so reaching this point is a test bug.
    raise RuntimeError(f"scenario {scenario!r} did not crash")


if __name__ == "__main__":
    sys.exit(main())
