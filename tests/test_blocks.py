"""Tests for the linked block lists and bucket sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import QueryResult
from repro.progressive.blocks import BlockList, BucketSet


class TestBlockList:
    def test_append_and_length(self):
        blocks = BlockList(block_size=4)
        blocks.append_array(np.array([1, 2, 3, 4, 5]))
        assert len(blocks) == 5
        assert blocks.n_blocks == 2

    def test_single_appends(self):
        blocks = BlockList(block_size=2)
        for value in (1, 2, 3):
            blocks.append(value)
        assert blocks.to_array().tolist() == [1, 2, 3]

    def test_block_allocation_counts(self):
        blocks = BlockList(block_size=10)
        blocks.append_array(np.arange(25))
        assert blocks.n_allocations == 3
        assert blocks.memory_footprint() == 3 * 10 * 8

    def test_to_array_preserves_order(self):
        blocks = BlockList(block_size=3)
        blocks.append_array(np.array([5, 1, 4]))
        blocks.append_array(np.array([2, 9]))
        assert blocks.to_array().tolist() == [5, 1, 4, 2, 9]

    def test_to_array_empty(self):
        assert BlockList().to_array().size == 0

    def test_scan(self):
        blocks = BlockList(block_size=4)
        blocks.append_array(np.array([1, 5, 10, 15, 20]))
        result = blocks.scan(5, 15)
        assert isinstance(result, QueryResult)
        assert result.count == 3 and result.value_sum == 30

    def test_scan_empty_result(self):
        blocks = BlockList(block_size=4)
        blocks.append_array(np.array([1, 2]))
        assert blocks.scan(100, 200).count == 0

    def test_slice_array(self):
        blocks = BlockList(block_size=3)
        blocks.append_array(np.arange(10))
        assert blocks.slice_array(2, 5).tolist() == [2, 3, 4, 5, 6]
        assert blocks.slice_array(8, 10).tolist() == [8, 9]
        assert blocks.slice_array(0, 0).size == 0
        assert blocks.slice_array(20, 5).size == 0

    def test_bulk_append_fills_tail_then_full_blocks(self):
        """The vectorised bulk path: a partial tail is topped up first, full
        blocks are materialised in one copy, and the leftover opens a fresh
        writable tail that later appends keep filling."""
        blocks = BlockList(block_size=4)
        blocks.append_array(np.array([1, 2]))          # partial tail (2/4)
        blocks.append_array(np.arange(10, 21))         # tops up + 2 full + tail
        assert len(blocks) == 13
        assert blocks.n_blocks == 4
        assert blocks.to_array().tolist() == [1, 2] + list(range(10, 21))
        blocks.append_array(np.array([99, 98, 97]))    # continues the tail
        assert blocks.to_array().tolist() == [1, 2] + list(range(10, 21)) + [99, 98, 97]

    def test_bulk_append_does_not_alias_caller_array(self):
        """Blocks must own (or exclusively reference) their data: mutating
        the source array after the append must not change stored values."""
        blocks = BlockList(block_size=4)
        source = np.arange(12)
        blocks.append_array(source)
        source[:] = -1
        assert blocks.to_array().tolist() == list(range(12))

    def test_exact_multiple_of_block_size_then_more(self):
        blocks = BlockList(block_size=5)
        blocks.append_array(np.arange(10))             # exactly 2 full blocks
        assert blocks.n_blocks == 2
        blocks.append_array(np.array([77]))            # must open a new block
        assert blocks.n_blocks == 3
        assert blocks.to_array().tolist() == list(range(10)) + [77]

    def test_clear(self):
        blocks = BlockList(block_size=4)
        blocks.append_array(np.arange(10))
        blocks.clear()
        assert len(blocks) == 0 and blocks.n_blocks == 0

    def test_rejects_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockList(block_size=0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=200))
    def test_roundtrip_property(self, values):
        blocks = BlockList(block_size=7)
        blocks.append_array(np.array(values, dtype=np.int64))
        assert blocks.to_array().tolist() == values


class TestBucketSet:
    def test_scatter_routes_by_bucket_id(self):
        buckets = BucketSet(4, block_size=8)
        values = np.array([10, 20, 30, 40])
        ids = np.array([0, 1, 1, 3])
        buckets.scatter(values, ids)
        assert buckets[0].to_array().tolist() == [10]
        assert buckets[1].to_array().tolist() == [20, 30]
        assert buckets[2].to_array().tolist() == []
        assert buckets[3].to_array().tolist() == [40]
        assert len(buckets) == 4

    def test_scatter_is_stable_within_bucket(self):
        buckets = BucketSet(2, block_size=4)
        buckets.scatter(np.array([5, 3, 9]), np.array([1, 1, 1]))
        buckets.scatter(np.array([7]), np.array([1]))
        assert buckets[1].to_array().tolist() == [5, 3, 9, 7]

    def test_scan_selected_buckets(self):
        buckets = BucketSet(3, block_size=4)
        buckets.scatter(np.array([1, 100, 200]), np.array([0, 1, 2]))
        result = buckets.scan(0, 1000, bucket_range=range(1, 3))
        assert result.count == 2 and result.value_sum == 300

    def test_scan_all_buckets(self):
        buckets = BucketSet(3, block_size=4)
        buckets.scatter(np.array([1, 2, 3]), np.array([0, 1, 2]))
        assert buckets.scan(0, 10).count == 3

    def test_sizes_and_footprint(self):
        buckets = BucketSet(2, block_size=4)
        buckets.scatter(np.arange(6), np.array([0, 0, 0, 1, 1, 1]))
        assert buckets.sizes().tolist() == [3, 3]
        assert buckets.total_allocations() == 2
        assert buckets.memory_footprint() == 2 * 4 * 8

    def test_clear(self):
        buckets = BucketSet(2, block_size=4)
        buckets.scatter(np.array([1]), np.array([0]))
        buckets.clear()
        assert len(buckets) == 0

    def test_rejects_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            BucketSet(0)
