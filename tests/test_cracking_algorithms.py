"""Tests for the adaptive-indexing (cracking) comparators."""

import numpy as np
import pytest

from repro.core.phase import IndexPhase
from repro.core.query import Predicate
from repro.cracking import (
    AdaptiveAdaptiveIndexing,
    CoarseGranularIndex,
    ProgressiveStochasticCracking,
    StandardCracking,
    StochasticCracking,
)
from repro.storage.column import Column

from tests.conftest import (
    assert_matches_brute_force,
    random_point_predicates,
    random_range_predicates,
)

ALL_CRACKING = [
    StandardCracking,
    StochasticCracking,
    ProgressiveStochasticCracking,
    CoarseGranularIndex,
    AdaptiveAdaptiveIndexing,
]


@pytest.mark.parametrize("index_class", ALL_CRACKING)
class TestCrackingCorrectness:
    def test_range_queries_uniform(self, index_class, uniform_column, uniform_data, rng):
        index = index_class(uniform_column)
        predicates = random_range_predicates(uniform_data, 60, rng)
        assert_matches_brute_force(index, uniform_data, predicates)

    def test_range_queries_skewed(self, index_class, skewed_column, skewed_data, rng):
        index = index_class(skewed_column)
        predicates = random_range_predicates(skewed_data, 60, rng, selectivity=0.05)
        assert_matches_brute_force(index, skewed_data, predicates)

    def test_point_queries(self, index_class, uniform_column, uniform_data, rng):
        index = index_class(uniform_column)
        predicates = random_point_predicates(uniform_data, 60, rng)
        assert_matches_brute_force(index, uniform_data, predicates)

    def test_sequential_workload(self, index_class, uniform_column, uniform_data):
        # The workload standard cracking is most sensitive to: a sweep.
        index = index_class(uniform_column)
        domain = int(uniform_data.max())
        width = domain // 20
        predicates = [Predicate(start, start + width) for start in range(0, domain - width, width)]
        assert_matches_brute_force(index, uniform_data, predicates)

    def test_never_reports_convergence(self, index_class, uniform_column, uniform_data, rng):
        index = index_class(uniform_column)
        for predicate in random_range_predicates(uniform_data, 20, rng):
            index.query(predicate)
        assert not index.converged
        assert index.phase is IndexPhase.REFINEMENT

    def test_first_query_copies_the_column(self, index_class, uniform_column, uniform_data):
        index = index_class(uniform_column)
        assert index.memory_footprint() == 0
        index.query(Predicate(0, 1_000))
        assert index.memory_footprint() == uniform_data.nbytes
        assert index.last_stats.elements_indexed == uniform_data.size

    def test_cracker_values_stay_a_permutation(self, index_class, uniform_column, uniform_data, rng):
        index = index_class(uniform_column)
        for predicate in random_range_predicates(uniform_data, 30, rng):
            index.query(predicate)
        assert np.array_equal(np.sort(index.cracker.values), np.sort(uniform_data))


class TestStandardCrackingBehaviour:
    def test_pieces_grow_with_distinct_queries(self, uniform_column, uniform_data, rng):
        index = StandardCracking(uniform_column)
        pieces = []
        for predicate in random_range_predicates(uniform_data, 15, rng):
            index.query(predicate)
            pieces.append(index.cracker.n_pieces)
        assert pieces[-1] > pieces[0]
        assert all(b >= a for a, b in zip(pieces, pieces[1:]))

    def test_repeated_query_does_no_extra_work(self, uniform_column):
        index = StandardCracking(uniform_column)
        predicate = Predicate(1_000, 2_000)
        index.query(predicate)
        swaps_after_first = index.cracker.swaps_performed
        index.query(predicate)
        assert index.cracker.swaps_performed == swaps_after_first


class TestStochasticBehaviour:
    def test_random_pivots_limit_large_pieces(self, uniform_column, uniform_data):
        index = StochasticCracking(uniform_column, minimum_piece=1_024)
        index.query(Predicate(100, 200))
        sizes = index.cracker.index.piece_sizes()
        # After the first query, the piece containing the bounds has been cut
        # down below (roughly) the minimum piece size by random cracks.
        assert min(sizes) <= 1_024

    def test_deterministic_with_seeded_rng(self, uniform_column, uniform_data, rng):
        first = StochasticCracking(uniform_column, rng=np.random.default_rng(3))
        second = StochasticCracking(uniform_column, rng=np.random.default_rng(3))
        for predicate in random_range_predicates(uniform_data, 10, rng):
            assert first.query(predicate).count == second.query(predicate).count
        assert np.array_equal(first.cracker.values, second.cracker.values)


class TestProgressiveStochasticBehaviour:
    def test_swap_budget_bounds_per_query_work(self, uniform_column, uniform_data, rng):
        index = ProgressiveStochasticCracking(
            uniform_column, allowed_swaps=0.1, minimum_piece=256
        )
        index.query(Predicate(0, 100))  # first query copies; ignore it
        for predicate in random_range_predicates(uniform_data, 20, rng):
            largest_before = max(index.cracker.index.piece_sizes())
            before = index.cracker.swaps_performed
            index.query(predicate)
            swaps = index.cracker.swaps_performed - before
            # Allowed swaps, plus the documented overshoot of at most one
            # piece-sized crack per query bound, plus two complete cracks of
            # cache-sized pieces (the "always crack small pieces" rule).
            assert swaps <= 0.1 * uniform_data.size + 2 * largest_before + 2 * 256 + 2

    def test_swap_budget_effective_once_pieces_shrink(self, uniform_column, uniform_data, rng):
        index = ProgressiveStochasticCracking(
            uniform_column, allowed_swaps=0.1, minimum_piece=256
        )
        # Warm up until no piece exceeds the per-query allowance any more.
        for predicate in random_range_predicates(uniform_data, 10, rng):
            index.query(predicate)
        if max(index.cracker.index.piece_sizes()) > 0.1 * uniform_data.size:
            pytest.skip("pieces still larger than the allowance on this seed")
        for predicate in random_range_predicates(uniform_data, 10, rng):
            before = index.cracker.swaps_performed
            index.query(predicate)
            swaps = index.cracker.swaps_performed - before
            assert swaps <= 2 * 0.1 * uniform_data.size + 2 * 256 + 2

    def test_rejects_invalid_allowed_swaps(self, uniform_column):
        with pytest.raises(ValueError):
            ProgressiveStochasticCracking(uniform_column, allowed_swaps=0.0)


class TestCoarseGranularBehaviour:
    def test_first_query_creates_equal_partitions(self, skewed_column, skewed_data):
        index = CoarseGranularIndex(skewed_column, initial_partitions=16)
        index.query(Predicate(0, 100))
        sizes = np.array(index.cracker.index.piece_sizes())
        # Equi-depth partitioning keeps pieces balanced even under skew
        # (duplicates can merge some boundaries, hence the generous factor).
        assert sizes.max() <= 8 * skewed_data.size / 16

    def test_rejects_invalid_partition_count(self, uniform_column):
        with pytest.raises(ValueError):
            CoarseGranularIndex(uniform_column, initial_partitions=1)


class TestAdaptiveAdaptiveBehaviour:
    def test_first_query_radix_partitions_everything(self, uniform_column):
        index = AdaptiveAdaptiveIndexing(uniform_column, fanout=64)
        index.query(Predicate(0, 100))
        assert index.cracker.n_pieces >= 32

    def test_touched_pieces_shrink_quickly(self, uniform_column, uniform_data, rng):
        index = AdaptiveAdaptiveIndexing(uniform_column, fanout=16, sort_threshold=512)
        predicate = Predicate(10_000, 15_000)
        index.query(predicate)
        index.query(predicate)
        piece = index.cracker.piece_for(12_000)
        assert piece.size <= 512 or piece.size < uniform_data.size / 16

    def test_rejects_invalid_fanout(self, uniform_column):
        with pytest.raises(ValueError):
            AdaptiveAdaptiveIndexing(uniform_column, fanout=1)
