"""Tests for the mutable column substrate and its engine integration.

Covers the storage layer (delta store, snapshot-versioned reads, row-aligned
table writes), the MERGE life-cycle stage and budget-priced folding, the
session write API with its error guards, the JSON-serializable ``status()``
regression, and the ``MixedReadWrite`` workload pattern.
"""

import json

import numpy as np
import pytest

from repro import IndexingSession, Table
from repro.core.phase import IndexLifecycle, IndexPhase
from repro.core.policy import CostModelGreedy, FixedDelta
from repro.core.query import Predicate
from repro.engine.registry import create_index
from repro.errors import (
    DroppedColumnError,
    IndexStateError,
    InvalidColumnError,
    PendingDeltaError,
    UnknownColumnError,
    WorkloadError,
)
from repro.storage import Column, ColumnSnapshot, merge_sorted_with_delta, remove_tombstones
from repro.workloads.patterns import MIXED_PATTERNS, generate_pattern, mixed_read_write_workload
from repro.workloads.workload import Workload, WriteOp


class TestDeltaStoreColumn:
    def test_insert_returns_stable_rids(self):
        column = Column([5, 1, 9])
        rids = column.insert([7, 8])
        assert rids.tolist() == [3, 4]
        assert column.insert([6]).tolist() == [5]
        assert len(column) == 6
        assert column.version == 3

    def test_visible_data_reflects_writes(self):
        column = Column([5, 1, 9, 1])
        column.delete_where(1, 1)
        column.insert([2])
        assert sorted(column.data.tolist()) == [2, 5, 9]
        assert column.min() == 2 and column.max() == 9

    def test_update_is_delete_plus_insert(self):
        column = Column([10, 20, 30])
        new_rids = column.update_where(20, 20, 25)
        assert new_rids.tolist() == [3]
        assert sorted(column.data.tolist()) == [10, 25, 30]
        # the old rid is dead, the new rid carries the new value
        assert not column.delta.is_alive(1)
        assert column.values_at(new_rids).tolist() == [25]

    def test_delete_unknown_or_dead_rid_raises(self):
        column = Column([1, 2, 3])
        with pytest.raises(InvalidColumnError):
            column.delete_rows([99])
        column.delete_rows([1])
        with pytest.raises(InvalidColumnError):
            column.delete_rows([1])

    def test_scan_range_matches_visible_rows(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 100, 500)
        column = Column(data)
        column.delete_where(10, 30)
        column.insert([15, 16, 17])
        visible = column.data
        mask = (visible >= 5) & (visible <= 40)
        total, count = column.scan_range(5, 40)
        assert count == mask.sum()
        assert total == visible[mask].sum()

    def test_snapshot_is_isolated_from_later_writes(self):
        column = Column([1, 2, 3])
        frozen = column.snapshot()
        column.insert([100])
        column.delete_where(2, 2)
        assert frozen.data.tolist() == [1, 2, 3]
        assert frozen.version == 0
        assert sorted(column.data.tolist()) == [1, 3, 100]

    def test_snapshot_at_version_zero_is_zero_copy(self):
        column = Column([1, 2, 3])
        frozen = column.snapshot()
        assert isinstance(frozen, ColumnSnapshot)
        assert frozen.data is column.base_data

    def test_delta_windows(self):
        column = Column([1, 2, 3])
        column.insert([10])
        mark = column.version
        column.insert([20])
        column.delete_where(2, 2)
        delta = column.delta
        assert delta.insert_window(mark, column.version).tolist() == [20]
        assert delta.delete_window(mark, column.version).tolist() == [2]
        assert delta.insert_window(0, mark).tolist() == [10]

    def test_deleting_every_visible_row_is_rejected(self):
        column = Column([1, 2, 3])
        with pytest.raises(InvalidColumnError):
            column.delete_where(0, 10)
        # ... and the column is untouched by the failed delete.
        assert len(column) == 3
        assert column.min() == 1

    def test_update_of_every_row_is_allowed(self):
        column = Column([1, 2, 3])
        column.update_where(0, 10, 7)
        assert column.data.tolist() == [7, 7, 7]
        table = Table({"a": [1, 2], "b": [3, 4]})
        table.update_where("a", 0, 10, 9)
        assert table["a"].data.tolist() == [9, 9]
        assert sorted(table["b"].data.tolist()) == [3, 4]

    def test_non_integral_floats_rejected_by_int_columns(self):
        column = Column([1, 2, 3])
        with pytest.raises(InvalidColumnError):
            column.insert([2.7])
        with pytest.raises(InvalidColumnError):
            column.update_where(2, 2, 2.5)
        column.insert([4.0])  # integral floats are exact -> allowed
        assert sorted(column.data.tolist()) == [1, 2, 3, 4]

    def test_float_column_writes(self):
        column = Column(np.array([1.5, -2.25, 3.75]))
        column.insert(np.array([0.125]))
        column.delete_where(-3.0, -2.0)
        total, count = column.scan_range(0.0, 4.0)
        assert count == 3
        assert total == pytest.approx(1.5 + 3.75 + 0.125)


class TestMergeHelpers:
    def test_remove_tombstones_removes_one_occurrence_each(self):
        values = np.array([1, 2, 2, 2, 5, 7])
        out = remove_tombstones(values, np.array([2, 2, 7]))
        assert out.tolist() == [1, 2, 5]

    def test_merge_sorted_with_delta(self):
        out = merge_sorted_with_delta(
            np.array([1, 3, 5, 7]), np.array([2, 6]), np.array([3, 7])
        )
        assert out.tolist() == [1, 2, 5, 6]


class TestRowAlignedTable:
    def test_insert_rows_requires_every_column(self):
        table = Table({"a": [1], "b": [2]})
        with pytest.raises(InvalidColumnError):
            table.insert_rows({"a": [5]})
        with pytest.raises(UnknownColumnError):
            table.insert_rows({"a": [5], "b": [6], "c": [7]})

    def test_update_preserves_other_columns(self):
        table = Table({"a": [1, 2, 3], "b": [10, 20, 30]})
        table.update_where("a", 2, 2, 99)
        a, b = table["a"].data, table["b"].data
        assert b[a.tolist().index(99)] == 20

    def test_len_tracks_writes(self):
        table = Table({"a": [1, 2, 3], "b": [4, 5, 6]})
        table.insert_rows({"a": 9, "b": 9})
        table.delete_where("b", 4, 5)
        assert len(table) == 2

    def test_drop_column_guards_stale_writes(self):
        table = Table({"a": [1], "b": [2]})
        stale = table.column("b")
        table.drop_column("b")
        assert "b" not in table
        with pytest.raises(UnknownColumnError):
            table.column("b")
        with pytest.raises(DroppedColumnError):
            stale.insert([3])
        with pytest.raises(InvalidColumnError):
            table.drop_column("a")  # last column must stay


class TestMergeLifecycle:
    def test_merge_backward_edge_is_the_only_one(self):
        lifecycle = IndexLifecycle()
        lifecycle.advance(IndexPhase.CONVERGED)
        lifecycle.advance(IndexPhase.MERGE)
        lifecycle.advance(IndexPhase.CONVERGED)  # legal: fold completed
        lifecycle.advance(IndexPhase.MERGE)  # next write burst
        with pytest.raises(IndexStateError):
            lifecycle.advance(IndexPhase.REFINEMENT)

    def test_merge_phase_does_indexing_work(self):
        assert IndexPhase.MERGE.does_indexing_work
        assert IndexPhase.CONVERGED < IndexPhase.MERGE

    def test_converged_index_folds_pending_delta(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 10_000, 20_000)
        column = Column(data)
        index = create_index("PQ", column, budget=FixedDelta(0.5))
        probe = Predicate(100, 2_000)
        while not index.converged:
            index.query(probe)
        # Write past the merge trigger, then query until the fold lands.
        column.insert(rng.integers(0, 10_000, 200))
        column.delete_where(5_000, 5_100)
        assert index.pending_delta_rows() > 0
        for _ in range(50):
            index.query(probe)
            if index.converged and index.pending_delta_rows() == 0:
                break
        stats = index.overlay_stats()
        assert stats["folds_completed"] >= 1
        assert stats["pending_rows"] == 0
        visited = {phase for _, phase in index.lifecycle.transitions}
        assert IndexPhase.MERGE in visited
        # The folded cascade answers without any overlay correction.
        visible = column.data
        mask = (visible >= probe.low) & (visible <= probe.high)
        result = index.query(probe)
        assert result.count == mask.sum()

    def test_small_delta_stays_buffered_below_trigger(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 10_000, 50_000)
        column = Column(data)
        index = create_index("PQ", column, budget=FixedDelta(0.5))
        probe = Predicate(0, 500)
        while not index.converged:
            index.query(probe)
        column.insert([1, 2, 3])  # far below the trigger
        for _ in range(5):
            index.query(probe)
        assert index.phase is IndexPhase.CONVERGED
        assert index.overlay_stats()["folds_completed"] == 0
        # ... but the answers include the buffered rows regardless.
        assert index.query(Predicate(1, 3)).count == int(
            np.count_nonzero((column.data >= 1) & (column.data <= 3))
        )

    def test_batch_execution_interleaves_pending_merges(self):
        from repro.engine.batch import BatchExecutor

        rng = np.random.default_rng(8)
        data = rng.integers(0, 10_000, 20_000)
        column = Column(data)
        index = create_index("PQ", column, budget=FixedDelta(0.5))
        probe = Predicate(100, 2_000)
        while not index.converged:
            index.query(probe)
        column.insert(rng.integers(0, 10_000, 300))  # past the merge trigger
        predicates = [
            Predicate(int(low), int(low) + 500)
            for low in rng.integers(0, 9_000, 40)
        ]
        batch = BatchExecutor().execute(index, predicates)
        # The pooled budget front-loads the fold: some queries were driven
        # per-query (spending merge budget), the tail went vectorized.
        assert batch.driven_queries >= 1
        assert batch.vectorized_queries >= 1
        assert index.overlay_stats()["folds_completed"] >= 1
        visible = column.data
        for predicate, got in zip(predicates, batch.results):
            mask = (visible >= predicate.low) & (visible <= predicate.high)
            assert got.count == mask.sum()
            assert got.value_sum == visible[mask].sum()

    def test_merge_budget_is_priced_by_the_policy(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 10_000, 20_000)
        column = Column(data)
        index = create_index(
            "PQ", column, budget=CostModelGreedy(scan_fraction=2.0)
        )
        probe = Predicate(100, 2_000)
        while not index.converged:
            index.query(probe)
        column.insert(rng.integers(0, 10_000, 500))
        for _ in range(30):
            index.query(probe)
            if index.overlay_stats()["folds_completed"]:
                break
        stats = index.overlay_stats()
        assert stats["folds_completed"] >= 1
        assert stats["merge_budget_seconds"] > 0.0
        merge_query = next(
            (number, phase)
            for number, phase in index.lifecycle.transitions
            if phase is IndexPhase.MERGE
        )
        assert merge_query is not None


class TestSessionWrites:
    def make_session(self, n=5_000, seed=0):
        rng = np.random.default_rng(seed)
        table = Table({"v": rng.integers(0, 1_000, n)})
        return IndexingSession(table), table

    def test_insert_delete_update_roundtrip(self):
        session, table = self.make_session()
        session.create_index("v", method="PQ", fixed_delta=0.5)
        before = session.between("v", 0, 1_000).count
        session.insert([5, 6, 7])
        deleted = session.delete("v", 100, 110)
        updated = session.update("v", 200, 210, 205)
        result = session.between("v", 0, 1_000)
        visible = table["v"].data
        assert result.count == visible.size == before + 3 - deleted
        assert result.value_sum == visible.sum()
        assert updated == int(np.count_nonzero(visible == 205)) or updated >= 0

    def test_writes_to_unknown_column_raise(self):
        session, _ = self.make_session()
        with pytest.raises(UnknownColumnError):
            session.delete("nope", 0, 1)
        with pytest.raises(UnknownColumnError):
            session.update("nope", 0, 1, 5)
        with pytest.raises(UnknownColumnError):
            session.insert([1], column_name="nope")
        with pytest.raises(UnknownColumnError):
            session.insert({"nope": [1]})

    def test_create_index_rejects_foreign_pending_deltas(self):
        writer, table = self.make_session()
        reader = IndexingSession(table)
        writer.insert([42])
        with pytest.raises(PendingDeltaError):
            reader.create_index("v", method="PQ")
        writer.commit_writes()
        reader.create_index("v", method="PQ")  # committed -> allowed

    def test_garbage_collected_writer_auto_commits(self):
        import gc

        _, table = self.make_session()
        writer = IndexingSession(table)
        writer.insert([42])
        reader = IndexingSession(table)
        with pytest.raises(PendingDeltaError):
            reader.create_index("v", method="PQ")
        del writer
        gc.collect()
        # The abandoned writer no longer blocks indexing.
        reader.create_index("v", method="PQ")

    def test_own_pending_deltas_do_not_block_create_index(self):
        session, _ = self.make_session()
        session.insert([42])
        index = session.create_index("v", method="PQ", fixed_delta=0.5)
        # the snapshot already contains the session's own write
        assert index.query(Predicate(42, 42)).count >= 1

    def test_batch_execution_sees_writes(self):
        session, table = self.make_session()
        session.create_index("v", method="PLSD", fixed_delta=0.5)
        session.execute_batch([(0, 999)] * 3, column_name="v")
        session.insert([5_000, 5_001])
        results = session.execute_batch([(4_999, 5_002)], column_name="v")
        assert results[0].count == 2

    def test_where_after_writes_stays_aligned(self):
        rng = np.random.default_rng(4)
        table = Table(
            {"ra": rng.integers(0, 100, 2_000), "dec": rng.integers(0, 100, 2_000)}
        )
        session = IndexingSession(table)
        session.create_index("ra", method="PQ", fixed_delta=0.5)
        session.insert({"ra": [10, 11], "dec": [50, 51]})
        session.delete("dec", 0, 5)
        session.update("ra", 20, 25, 22)
        result = session.where({"ra": (0, 50), "dec": (40, 60)})
        ra, dec = table["ra"].data, table["dec"].data
        mask = (ra >= 0) & (ra <= 50) & (dec >= 40) & (dec <= 60)
        assert result.count == mask.sum()
        assert result.sum_of("ra") == ra[mask].sum()
        assert result.sum_of("dec") == dec[mask].sum()

    def test_execute_operations_replays_mixed_workload(self):
        session, table = self.make_session()
        session.create_index("v", method="PQ", fixed_delta=0.5)
        workload = mixed_read_write_workload(
            0, 999, n_queries=20, write_ratio=0.25, rng=np.random.default_rng(7)
        )
        results = session.execute_operations(workload, "v")
        assert len(results) == len(workload.operations)
        reads = [r for r in results if r is not None]
        assert len(reads) == len(workload.predicates)
        # final state is exact
        total = session.between("v", -10**9, 10**9)
        assert total.count == len(table)


class TestStatusSerialization:
    def test_status_is_json_serializable_with_write_counters(self):
        rng = np.random.default_rng(0)
        table = Table({"v": rng.integers(0, 1_000, 4_000)})
        session = IndexingSession(table)
        session.create_index("v", method="PB", interactivity_budget=0.001)
        for _ in range(8):
            session.between("v", 10, 500)
        session.insert(rng.integers(0, 1_000, 100))
        session.delete("v", 700, 720)
        for _ in range(10):
            session.between("v", 10, 500)
        status = session.status()
        payload = json.dumps(status)  # must not raise on numpy scalars
        decoded = json.loads(payload)
        entry = decoded["v"]
        assert entry["algorithm"] == "PB"
        assert entry["phase"] in {phase.value for phase in IndexPhase}
        writes = entry["writes"]
        assert writes["mutable"] is True
        assert writes["column_inserts"] >= 100
        assert writes["column_deletes"] >= 1
        for value in (
            writes["pending_rows"],
            writes["rows_absorbed"],
            writes["folds_completed"],
            entry["queries_executed"],
            entry["memory_bytes"],
        ):
            assert isinstance(value, int)
        assert isinstance(writes["merge_budget_seconds"], float)

    def test_status_json_safe_without_writes(self):
        session = IndexingSession(Table({"v": [1, 2, 3]}))
        session.create_index("v", method="FS")
        session.between("v", 1, 2)
        decoded = json.loads(json.dumps(session.status()))
        writes = decoded["v"]["writes"]
        assert writes["mutable"] is True
        assert writes["pending_rows"] == 0
        assert "column_inserts" not in writes  # no delta store yet


class TestMixedReadWritePattern:
    def test_generator_respects_write_ratio(self):
        workload = mixed_read_write_workload(
            0, 10_000, n_queries=90, write_ratio=0.1, rng=np.random.default_rng(0)
        )
        assert workload.is_mixed
        assert len(workload.predicates) == 90
        assert workload.write_ratio() == pytest.approx(0.1, abs=0.02)
        kinds = {op.kind for op in workload.writes}
        assert kinds == {"insert", "delete", "update"}

    def test_zero_ratio_is_read_only(self):
        workload = mixed_read_write_workload(
            0, 10_000, n_queries=20, write_ratio=0.0, rng=np.random.default_rng(0)
        )
        assert not workload.is_mixed
        assert workload.writes == []

    def test_registered_and_rejects_point_conversion(self):
        assert "MixedReadWrite" in MIXED_PATTERNS
        workload = generate_pattern("MixedReadWrite", 0, 1_000, 30)
        assert workload.name == "MixedReadWrite"
        with pytest.raises(WorkloadError):
            generate_pattern("MixedReadWrite", 0, 1_000, 30, point_queries=True)

    def test_head_preserves_the_operation_mix(self):
        workload = mixed_read_write_workload(
            0, 10_000, n_queries=60, write_ratio=0.3, rng=np.random.default_rng(1)
        )
        truncated = workload.head(10)
        assert len(truncated.predicates) == 10
        assert truncated.operations is not None
        reads = [op for op in truncated.operations if isinstance(op, Predicate)]
        assert reads == truncated.predicates
        # the interleaved writes before the 10th read survive
        assert truncated.operations[: len(truncated.operations)] == (
            workload.operations[: len(truncated.operations)]
        )

    def test_insert_values_are_integral(self):
        workload = mixed_read_write_workload(
            0, 10_000, n_queries=30, write_ratio=0.3, rng=np.random.default_rng(2)
        )
        for op in workload.writes:
            if op.kind == "insert":
                assert all(value == int(value) for value in op.values)
            elif op.kind == "update":
                assert op.value == int(op.value)

    def test_operations_must_contain_the_reads(self):
        reads = [Predicate(0, 1)]
        with pytest.raises(WorkloadError):
            Workload(
                name="bad",
                predicates=reads,
                operations=[Predicate(2, 3), WriteOp("insert", values=(1,))],
            )

    def test_write_op_validates_kind(self):
        with pytest.raises(WorkloadError):
            WriteOp("upsert")
