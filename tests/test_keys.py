"""Property tests for the order-preserving key codecs and radix key spaces.

The codecs are the foundation of every radix construction kernel: if
``encode`` is not a strictly order-preserving bijection, the LSD/MSD final
arrays come out unsorted and every downstream binary search silently returns
garbage (the seed's PLSD float defect).  These tests pin the properties the
construction layer relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keys import FloatKeyCodec, IntKeyCodec, RadixKeySpace, codec_for


class TestCodecSelection:
    def test_int_dtypes_get_int_codec(self):
        assert isinstance(codec_for(np.int64), IntKeyCodec)
        assert isinstance(codec_for(np.int32), IntKeyCodec)
        assert isinstance(codec_for(np.uint8), IntKeyCodec)

    def test_float_dtype_gets_float_codec(self):
        assert isinstance(codec_for(np.float64), FloatKeyCodec)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError):
            codec_for(np.dtype("U8"))


class TestOrderPreservation:
    """``encode`` must order keys exactly like the values they encode."""

    def test_int_keys_sort_like_values(self, rng):
        values = rng.integers(-(2**62), 2**62, size=5_000)
        keys = codec_for(np.int64).encode(values)
        assert np.array_equal(values[np.argsort(keys, kind="stable")], np.sort(values))

    def test_float_keys_sort_like_values(self, rng):
        values = np.concatenate(
            [
                rng.normal(0.0, 1.0, size=2_000),
                rng.normal(0.0, 1e300, size=2_000),
                [0.0, -0.0, 1e-308, -1e-308, np.finfo(np.float64).max, -np.finfo(np.float64).max],
            ]
        )
        keys = codec_for(np.float64).encode(values)
        assert np.array_equal(values[np.argsort(keys, kind="stable")], np.sort(values))

    def test_float_keys_are_strictly_monotone(self):
        values = np.array([-np.inf, -1e300, -1.5, -1e-300, -0.0, 0.0, 1e-300, 1.5, 1e300, np.inf])
        keys = codec_for(np.float64).encode(values)
        # -0.0 and +0.0 are equal floats mapped to adjacent keys; everything
        # else is strictly increasing.
        deltas = np.diff(keys.astype(object))
        assert all(delta >= 1 for delta in deltas)

    @settings(max_examples=100, deadline=None)
    @given(
        a=st.floats(allow_nan=False, width=64),
        b=st.floats(allow_nan=False, width=64),
    )
    def test_float_scalar_comparisons_transfer(self, a, b):
        codec = FloatKeyCodec()
        if a < b:
            assert codec.encode_scalar(a) < codec.encode_scalar(b)
        elif a > b:
            assert codec.encode_scalar(a) > codec.encode_scalar(b)
        else:
            # -0.0 == 0.0 maps to adjacent keys; all other equals are exact.
            assert abs(codec.encode_scalar(a) - codec.encode_scalar(b)) <= 1


class TestScalarVectorAgreement:
    def test_float_scalar_matches_vector(self, rng):
        values = np.concatenate([rng.normal(0, 10, 50), [-0.0, 0.0, -1e300, 1e300]])
        codec = FloatKeyCodec()
        vector = codec.encode(values)
        for position, value in enumerate(values.tolist()):
            assert codec.encode_scalar(value) == int(vector[position])

    def test_int_scalar_matches_vector(self, rng):
        values = rng.integers(-(2**40), 2**40, size=50)
        codec = IntKeyCodec()
        vector = codec.encode(values)
        for position, value in enumerate(values.tolist()):
            assert codec.encode_scalar(value) == int(vector[position])

    def test_int_scalar_floors_fractional_bounds(self):
        codec = IntKeyCodec()
        assert codec.encode_scalar(5.5) == codec.encode_scalar(5)
        assert codec.encode_scalar(-5.5) == codec.encode_scalar(-6)


class TestRadixKeySpace:
    def test_paper_pass_count_formula(self):
        # 16-bit domain with 64 buckets: ceil(16 / 6) = 3 passes (Section 3.4).
        space = RadixKeySpace(0, 2**16 - 1, np.int64, bits_per_digit=6)
        assert space.n_digits == 3
        assert space.top_shift == 10

    def test_digits_reconstruct_relative_key(self, rng):
        space = RadixKeySpace(-500, 12_345, np.int64, bits_per_digit=6)
        values = rng.integers(-500, 12_346, size=1_000)
        reconstructed = np.zeros(values.size, dtype=object)
        for digit_number in range(space.n_digits):
            digit = space.digit(values, digit_number).astype(object)
            reconstructed += digit * (1 << (digit_number * space.bits_per_digit))
        expected = space.relative_keys(values)
        assert np.array_equal(reconstructed.astype(np.uint64), expected)

    def test_lsd_digit_sequence_sorts_any_dtype(self, rng):
        """A stable LSD pass per digit must produce a fully sorted array —
        the exact invariant Progressive Radixsort (LSD) relies on."""
        for values in (
            rng.integers(-10_000, 10_000, size=4_000),
            rng.normal(0.0, 1.0, size=4_000),
        ):
            space = RadixKeySpace(values.min(), values.max(), values.dtype, bits_per_digit=6)
            working = values.copy()
            for digit_number in range(space.n_digits):
                order = np.argsort(space.digit(working, digit_number), kind="stable")
                working = working[order]
            assert np.array_equal(working, np.sort(values))

    def test_scalar_digit_matches_vector_digit(self, rng):
        space = RadixKeySpace(-3.5, 3.5, np.float64, bits_per_digit=6)
        values = rng.uniform(-3.5, 3.5, size=64)
        for digit_number in (0, space.n_digits - 1):
            vector = space.digit(values, digit_number)
            for position, value in enumerate(values.tolist()):
                assert space.digit_scalar(value, digit_number) == int(vector[position])

    def test_relative_key_clamps_out_of_domain_bounds(self):
        space = RadixKeySpace(0, 1_000, np.int64, bits_per_digit=6)
        assert space.relative_key(-50) == 0
        assert space.relative_key(2_000) == space.domain
        assert space.relative_key(500) == 500

    def test_single_value_domain(self):
        space = RadixKeySpace(9, 9, np.int64, bits_per_digit=6)
        assert space.n_digits == 1
        assert np.array_equal(space.digit(np.full(10, 9), 0), np.zeros(10, dtype=np.int64))

    def test_inverted_domain_rejected(self):
        with pytest.raises(ValueError):
            RadixKeySpace(10, 0, np.int64, bits_per_digit=6)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            RadixKeySpace(0, 10, np.int64, bits_per_digit=0)
