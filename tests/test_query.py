"""Tests for predicates and query results."""

import numpy as np
import pytest

from repro.core.query import Predicate, QueryResult, point, range_query
from repro.errors import InvalidPredicateError


class TestPredicate:
    def test_range_construction(self):
        predicate = range_query(2, 8)
        assert predicate.low == 2 and predicate.high == 8
        assert not predicate.is_point
        assert predicate.width() == 6

    def test_point_construction(self):
        predicate = point(5)
        assert predicate.is_point
        assert predicate.width() == 0

    def test_invalid_bounds(self):
        with pytest.raises(InvalidPredicateError):
            Predicate(10, 5)

    def test_mask_is_inclusive(self):
        values = np.array([1, 2, 3, 4, 5])
        mask = Predicate(2, 4).mask(values)
        assert mask.tolist() == [False, True, True, True, False]

    def test_selectivity(self):
        assert Predicate(0, 10).selectivity(0, 100) == pytest.approx(0.1)
        assert Predicate(0, 200).selectivity(0, 100) == 1.0
        assert Predicate(5, 5).selectivity(0, 0) == 1.0

    def test_repr(self):
        assert "point" in repr(point(3))
        assert "low" in repr(range_query(1, 2))


class TestQueryResult:
    def test_addition(self):
        combined = QueryResult(10, 2) + QueryResult(5, 1)
        assert combined.value_sum == 15 and combined.count == 3

    def test_inplace_addition(self):
        result = QueryResult(1, 1)
        result += QueryResult(2, 2)
        assert result.value_sum == 3 and result.count == 3

    def test_empty(self):
        empty = QueryResult.empty()
        assert empty.count == 0 and empty.value_sum == 0

    def test_from_values(self):
        result = QueryResult.from_values(np.array([1, 2, 3]))
        assert result.value_sum == 6 and result.count == 3
        assert QueryResult.from_values(np.array([])).count == 0

    def test_from_masked(self):
        values = np.array([1, 2, 3, 4])
        mask = values % 2 == 0
        result = QueryResult.from_masked(values, mask)
        assert result.value_sum == 6 and result.count == 2

    def test_approximate_equality(self):
        a = QueryResult(1000.0, 3)
        b = QueryResult(1000.0 * (1 + 1e-12), 3)
        assert a.approximately_equals(b)
        assert not a.approximately_equals(QueryResult(1000.0, 4))
        assert not a.approximately_equals(QueryResult(900.0, 3))
