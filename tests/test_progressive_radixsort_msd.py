"""Tests for Progressive Radixsort (MSD)."""

import numpy as np
import pytest

from repro.core.budget import AdaptiveBudget, FixedBudget
from repro.core.phase import IndexPhase
from repro.core.query import Predicate
from repro.progressive.radixsort_msd import ProgressiveRadixsortMSD
from repro.storage.column import Column

from tests.conftest import assert_matches_brute_force, random_range_predicates


class TestRadixsortMSDLifecycle:
    def test_rejects_non_power_of_two_buckets(self, uniform_column):
        with pytest.raises(ValueError):
            ProgressiveRadixsortMSD(uniform_column, n_buckets=50)

    def test_creation_scatters_by_most_significant_bits(self, rng):
        # A domain of exactly 64 * 16 values with 64 buckets gives a shift of
        # 4 bits: value 0 lands in bucket 0, value 1023 in bucket 63.
        data = rng.permutation(1024).astype(np.int64)
        index = ProgressiveRadixsortMSD(Column(data), budget=FixedBudget(1.0), n_buckets=64)
        index.query(Predicate(0, 10))
        ids = index._bucket_id(np.array([0, 16, 1023]))
        assert ids.tolist() == [0, 1, 63]

    def test_phase_progression(self, uniform_column, uniform_data, rng):
        index = ProgressiveRadixsortMSD(uniform_column, budget=FixedBudget(0.5))
        seen = []
        for predicate in random_range_predicates(uniform_data, 60, rng):
            index.query(predicate)
            if not seen or seen[-1] is not index.phase:
                seen.append(index.phase)
        orders = [phase.order for phase in seen]
        assert orders == sorted(orders)
        assert index.converged

    def test_memory_footprint_grows_then_holds_buckets(self, uniform_column):
        index = ProgressiveRadixsortMSD(uniform_column, budget=FixedBudget(0.25))
        index.query(Predicate(0, 100))
        assert index.memory_footprint() > 0

    def test_final_array_is_sorted_after_refinement(self, uniform_column, uniform_data, rng):
        index = ProgressiveRadixsortMSD(uniform_column, budget=FixedBudget(0.5))
        iterations = 0
        while not index.converged and iterations < 500:
            index.query(Predicate(0, 1_000))
            iterations += 1
        assert index.converged
        assert np.all(index._final_array[:-1] <= index._final_array[1:])
        assert np.array_equal(np.sort(uniform_data), index._final_array)


class TestRadixsortMSDCorrectness:
    def test_exact_answers_uniform(self, uniform_column, uniform_data, rng):
        index = ProgressiveRadixsortMSD(uniform_column, budget=FixedBudget(0.2))
        predicates = random_range_predicates(uniform_data, 80, rng)
        assert_matches_brute_force(index, uniform_data, predicates)
        assert index.converged

    def test_exact_answers_skewed(self, skewed_column, skewed_data, rng):
        index = ProgressiveRadixsortMSD(skewed_column, budget=FixedBudget(0.3))
        predicates = random_range_predicates(skewed_data, 60, rng, selectivity=0.05)
        assert_matches_brute_force(index, skewed_data, predicates)

    def test_adaptive_budget(self, uniform_column, uniform_data, rng):
        index = ProgressiveRadixsortMSD(
            uniform_column, budget=AdaptiveBudget(scan_fraction=0.5)
        )
        predicates = random_range_predicates(uniform_data, 250, rng)
        assert_matches_brute_force(index, uniform_data, predicates)
        assert index.converged

    def test_small_domain_column(self, rng):
        # Domain smaller than the bucket count exercises the shift == 0 path.
        data = rng.integers(0, 10, size=5_000)
        index = ProgressiveRadixsortMSD(Column(data), budget=FixedBudget(0.5))
        for _ in range(30):
            result = index.query(Predicate(3, 7))
            mask = (data >= 3) & (data <= 7)
            assert result.count == mask.sum()
        assert index.converged

    def test_all_equal_values(self):
        data = np.full(5_000, 42, dtype=np.int64)
        index = ProgressiveRadixsortMSD(Column(data), budget=FixedBudget(0.5))
        for _ in range(30):
            assert index.query(Predicate(42, 42)).count == 5_000
            assert index.query(Predicate(0, 10)).count == 0
        assert index.converged

    def test_negative_values(self, rng):
        data = rng.integers(-50_000, 50_000, size=10_000)
        index = ProgressiveRadixsortMSD(Column(data), budget=FixedBudget(0.4))
        for _ in range(40):
            low = int(rng.integers(-50_000, 40_000))
            predicate = Predicate(low, low + 10_000)
            result = index.query(predicate)
            mask = (data >= predicate.low) & (data <= predicate.high)
            assert result.count == mask.sum()
        assert index.converged

    def test_stats_report_prediction(self, uniform_column):
        index = ProgressiveRadixsortMSD(uniform_column, budget=FixedBudget(0.25))
        index.query(Predicate(0, 5_000))
        assert index.last_stats.predicted_cost is not None
        assert index.last_stats.elements_indexed > 0
