"""Property-based tests shared by all four progressive indexes.

These are the library's core invariants:

* every query is answered exactly, no matter how far index construction has
  progressed (the paper's algorithms never trade correctness for speed);
* with a positive delta the index converges deterministically, and once
  converged it stays converged;
* phases only ever move forward.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import FixedBudget
from repro.core.query import Predicate
from repro.progressive import (
    ProgressiveBucketsort,
    ProgressiveQuicksort,
    ProgressiveRadixsortLSD,
    ProgressiveRadixsortMSD,
)
from repro.storage.column import Column

ALL_PROGRESSIVE = [
    ProgressiveQuicksort,
    ProgressiveRadixsortMSD,
    ProgressiveRadixsortLSD,
    ProgressiveBucketsort,
]


def _reference(data: np.ndarray, predicate: Predicate):
    mask = (data >= predicate.low) & (data <= predicate.high)
    return data[mask].sum(), int(mask.sum())


@pytest.mark.parametrize("index_class", ALL_PROGRESSIVE)
class TestSharedInvariants:
    @settings(max_examples=10, deadline=None)
    @given(
        data=st.lists(st.integers(min_value=0, max_value=5_000), min_size=16, max_size=800),
        delta=st.sampled_from([0.05, 0.2, 0.6, 1.0]),
        seed=st.integers(min_value=0, max_value=2 ** 16),
    )
    def test_answers_always_exact_and_convergence_is_reached(
        self, index_class, data, delta, seed
    ):
        array = np.array(data, dtype=np.int64)
        rng = np.random.default_rng(seed)
        index = index_class(Column(array), budget=FixedBudget(delta))
        domain_low, domain_high = int(array.min()), int(array.max())
        previous_order = -1
        for _ in range(150):
            low = int(rng.integers(domain_low, domain_high + 1))
            high = int(rng.integers(low, domain_high + 1))
            predicate = Predicate(low, high)
            result = index.query(predicate)
            expected_sum, expected_count = _reference(array, predicate)
            assert result.count == expected_count
            assert result.value_sum == expected_sum
            assert index.phase.order >= previous_order
            previous_order = index.phase.order
        assert index.converged

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_converged_state_is_stable(self, index_class, seed):
        rng = np.random.default_rng(seed)
        array = rng.integers(0, 10_000, size=2_000)
        index = index_class(Column(array), budget=FixedBudget(1.0))
        for _ in range(40):
            index.query(Predicate(0, 10_000))
            if index.converged:
                break
        assert index.converged
        for _ in range(5):
            result = index.query(Predicate(0, 10_000))
            assert index.converged
            assert result.count == array.size

    def test_point_queries_on_every_distinct_value(self, index_class, rng):
        array = rng.integers(0, 300, size=3_000)
        index = index_class(Column(array), budget=FixedBudget(0.3))
        values, counts = np.unique(array, return_counts=True)
        probe = rng.permutation(len(values))[:60]
        for position in probe:
            value = int(values[position])
            result = index.query(Predicate(value, value))
            assert result.count == int(counts[position])
            assert result.value_sum == value * int(counts[position])

    def test_sum_of_two_halves_equals_whole(self, index_class, rng):
        array = rng.integers(0, 100_000, size=5_000)
        index = index_class(Column(array), budget=FixedBudget(0.25))
        middle = 50_000
        for _ in range(20):
            left = index.query(Predicate(0, middle))
            right = index.query(Predicate(middle + 1, 100_000))
            assert left.count + right.count == array.size
            assert left.value_sum + right.value_sum == array.sum()

    def test_memory_footprint_reported(self, index_class, rng):
        array = rng.integers(0, 10_000, size=4_000)
        index = index_class(Column(array), budget=FixedBudget(0.5))
        assert index.memory_footprint() == 0
        index.query(Predicate(0, 100))
        assert index.memory_footprint() > 0
