"""Tests for the calibration and cost-model formulas."""

import math

import pytest

from repro.core.calibration import (
    DEFAULT_ELEMENTS_PER_PAGE,
    CostConstants,
    calibrate,
    simulated_constants,
)
from repro.core.cost_model import CostBreakdown, CostModel
from repro.errors import CalibrationError


class TestConstants:
    def test_simulated_constants_are_valid(self):
        constants = simulated_constants()
        constants.validate()
        assert constants.source == "simulated"
        assert constants.gamma == DEFAULT_ELEMENTS_PER_PAGE

    def test_aliases_match_fields(self):
        constants = simulated_constants()
        assert constants.omega == constants.sequential_read_page
        assert constants.kappa == constants.sequential_write_page
        assert constants.phi == constants.random_access
        assert constants.sigma == constants.swap
        assert constants.tau == constants.allocation

    def test_validate_rejects_non_positive(self):
        broken = CostConstants(
            sequential_read_page=0.0,
            sequential_write_page=1e-6,
            random_access=1e-7,
            swap=1e-7,
            allocation=1e-6,
        )
        with pytest.raises(CalibrationError):
            broken.validate()

    def test_calibrate_produces_positive_constants(self):
        constants = calibrate(n_elements=1 << 16)
        constants.validate()
        assert constants.source == "measured"

    def test_calibrate_rejects_tiny_arrays(self):
        with pytest.raises(CalibrationError):
            calibrate(n_elements=100)


class TestCostModel:
    @pytest.fixture
    def model(self):
        return CostModel(simulated_constants())

    def test_scan_time_scales_linearly(self, model):
        assert model.scan_time(2_000_000) == pytest.approx(2 * model.scan_time(1_000_000))

    def test_pivot_time_exceeds_scan_time(self, model):
        n = 1_000_000
        assert model.pivot_time(n) > model.scan_time(n)

    def test_pivot_time_formula(self, model):
        n = 512 * 100
        constants = model.constants
        expected = (constants.kappa + constants.omega) * n / constants.gamma
        assert model.pivot_time(n) == pytest.approx(expected)

    def test_swap_time_formula(self, model):
        # Refinement work is priced per element with the measured sorter
        # primitive sigma, not as bulk page writes.
        n = 512 * 10
        expected = model.constants.sigma * n
        assert model.swap_time(n) == pytest.approx(expected)

    def test_tree_lookup_time(self, model):
        assert model.tree_lookup_time(3) == pytest.approx(3 * model.constants.phi)
        assert model.tree_lookup_time(-1) == 0.0

    def test_binary_search_time(self, model):
        n = 1 << 20
        assert model.binary_search_time(n) == pytest.approx(20 * model.constants.phi)
        assert model.binary_search_time(1) == pytest.approx(model.constants.phi)

    def test_bucket_scan_slower_than_scan(self, model):
        n = 1_000_000
        assert model.bucket_scan_time(n) > model.scan_time(n)

    def test_bucket_write_formula(self, model):
        n = model.block_size * 4
        constants = model.constants
        expected = (constants.kappa + constants.omega) * n / constants.gamma + constants.tau * (
            n / model.block_size
        )
        assert model.bucket_write_time(n) == pytest.approx(expected)

    def test_equiheight_write_adds_one_routing_pass(self, model):
        # The grid BoundsRouter made equi-height routing O(1) per element:
        # the model prices it as one extra scatter-scale pass, not the
        # paper's log2(b) binary-search factor.
        n = 100_000
        assert model.equiheight_bucket_write_time(n, 64) == pytest.approx(
            model.bucket_write_time(n) + model.constants.scatter * n
        )

    def test_btree_copy_count(self, model):
        # 64^3 elements with fanout 64: levels of 64^2 and 64 and 1 elements.
        assert model.btree_copy_count(64 ** 3, 64) == 64 ** 2 + 64 + 1
        assert model.btree_copy_count(10, 64) == 0
        assert model.btree_copy_count(0, 64) == 0

    def test_creation_phase_cost_composition(self, model):
        n = 512 * 100
        breakdown = model.creation_phase_cost(
            n, rho=0.5, alpha=0.25, delta=0.1, index_write_time_full=model.pivot_time(n)
        )
        assert isinstance(breakdown, CostBreakdown)
        expected_scan = (1 - 0.5 - 0.1) * model.scan_time(n) + 0.25 * model.scan_time(n)
        assert breakdown.scan == pytest.approx(expected_scan)
        assert breakdown.indexing == pytest.approx(0.1 * model.pivot_time(n))
        assert breakdown.total == pytest.approx(breakdown.scan + breakdown.lookup + breakdown.indexing)

    def test_refinement_phase_cost_composition(self, model):
        breakdown = model.refinement_phase_cost(
            alpha=0.2,
            delta=0.1,
            lookup_time=1e-6,
            indexed_scan_time_full=1e-3,
            refine_time_full=2e-3,
        )
        assert breakdown.scan == pytest.approx(0.2e-3)
        assert breakdown.lookup == pytest.approx(1e-6)
        assert breakdown.indexing == pytest.approx(0.2e-3)

    def test_rejects_invalid_block_size(self):
        with pytest.raises(ValueError):
            CostModel(simulated_constants(), block_size=0)
