"""Differential oracle: sharded execution must equal the unsharded scan.

Every registry algorithm runs over {1, 4, 7} shards, serial and parallel,
against a brute-force NumPy oracle maintained alongside the workload —
including mutable writes routed to their owning shards and queries on both
sides of convergence.  Zero correctness deviation is the acceptance bar:
counts and integer sums must match *exactly* (float sums within 1e-9
relative, since per-shard partial sums reassociate the addition).

The full parallel matrix spawns a worker pool per case and runs in the
nightly/slow lane (``-m slow``); a two-algorithm parallel smoke subset
stays in the default lane.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policy import FixedDelta
from repro.core.query import Predicate, QueryResult
from repro.engine.registry import ALGORITHMS
from repro.shard.column import shard_column
from repro.shard.index import build_sharded_index
from repro.storage.column import Column

ALL_ALGORITHMS = sorted(ALGORITHMS)
SHARD_COUNTS = (1, 4, 7)


def _oracle(values: np.ndarray, low, high) -> QueryResult:
    mask = (values >= low) & (values <= high)
    return QueryResult(values[mask].sum() if mask.any() else 0, int(mask.sum()))


def _assert_equal(result: QueryResult, expected: QueryResult, context: str) -> None:
    assert result.count == expected.count, f"{context}: count deviates"
    if isinstance(expected.value_sum, (int, np.integer)) or (
        hasattr(expected.value_sum, "dtype")
        and np.issubdtype(expected.value_sum.dtype, np.integer)
    ):
        assert int(result.value_sum) == int(expected.value_sum), (
            f"{context}: integer sum deviates"
        )
    else:
        assert result.approximately_equals(expected), f"{context}: float sum deviates"


def run_differential(
    algorithm: str,
    shards: int,
    parallel: bool,
    data: np.ndarray,
    rng: np.random.Generator,
    n_queries: int = 24,
    with_writes: bool = True,
) -> None:
    """Run a mixed read/write workload, checking every answer exactly."""
    column = shard_column(Column(data.copy(), name="v"), shards)
    index = build_sharded_index(
        column,
        algorithm,
        parallel=parallel,
        workers=2,
        budget=FixedDelta(0.25),
    )
    reference = np.asarray(data).copy()
    try:
        domain_low = int(data.min())
        domain_high = int(data.max())
        width = max(1, (domain_high - domain_low) // 10)
        for query_number in range(n_queries):
            if with_writes and query_number == n_queries // 3:
                # inserts route to their owning shards (and, in parallel
                # mode, forward to the owning workers before later queries)
                fresh = rng.integers(domain_low, domain_high + 1, 200)
                column.insert(fresh)
                reference = np.concatenate([reference, fresh])
            if with_writes and query_number == 2 * n_queries // 3:
                low = domain_low + width
                high = low + width // 2
                column.delete_where(low, high)
                reference = reference[(reference < low) | (reference > high)]
            low = int(rng.integers(domain_low, domain_high - width))
            high = low + int(rng.integers(0, width))
            result = index.query(Predicate(low, high))
            _assert_equal(
                result,
                _oracle(reference, low, high),
                f"{algorithm} x{shards} {'par' if parallel else 'ser'} "
                f"query {query_number} [{low}, {high}] phase {index.phase}",
            )
    finally:
        index.close()
        column.close()


@pytest.fixture
def oracle_data(rng) -> np.ndarray:
    return rng.integers(0, 50_000, size=12_000, dtype=np.int64)


# ----------------------------------------------------------------------
# Serial matrix: every algorithm x every shard count (fast lane)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_serial_matches_oracle(algorithm, shards, oracle_data, rng):
    run_differential(algorithm, shards, False, oracle_data, rng)


# ----------------------------------------------------------------------
# Parallel: smoke subset in the fast lane, full matrix nightly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["PQ", "STD"])
def test_parallel_smoke_matches_oracle(algorithm, oracle_data, rng):
    run_differential(algorithm, 4, True, oracle_data, rng, n_queries=16)


@pytest.mark.slow
@pytest.mark.parametrize("shards", (1, 4, 7))
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_parallel_matches_oracle(algorithm, shards, oracle_data, rng):
    run_differential(algorithm, shards, True, oracle_data, rng)


# ----------------------------------------------------------------------
# Float sums: per-shard partials reassociate the addition
# ----------------------------------------------------------------------
@pytest.mark.parametrize("parallel", [False, True])
def test_float_column_within_tolerance(parallel, rng):
    data = rng.normal(0.0, 1_000.0, 10_000)
    run_differential("PQ", 4, parallel, data, rng, n_queries=12)


# ----------------------------------------------------------------------
# Pre/post-convergence and merge-phase correctness
# ----------------------------------------------------------------------
def test_exact_across_convergence_and_merge(oracle_data, rng):
    column = shard_column(Column(oracle_data.copy(), name="v"), 4)
    index = build_sharded_index(column, "PQ", budget=FixedDelta(0.5))
    reference = oracle_data.copy()

    def check(low, high, context):
        _assert_equal(
            index.query(Predicate(low, high)),
            _oracle(reference, low, high),
            context,
        )

    saw_unconverged = False
    for query_number in range(200):
        if not index.converged:
            saw_unconverged = True
        low = int(rng.integers(0, 45_000))
        check(low, low + 5_000, f"pre-convergence query {query_number}")
        if index.converged:
            break
    assert saw_unconverged, "budget too large: convergence was immediate"
    assert index.converged, "index failed to converge within 200 queries"
    for query_number in range(10):
        low = int(rng.integers(0, 45_000))
        check(low, low + 5_000, f"post-convergence query {query_number}")
    # a write burst after convergence runs the budget-priced merge path
    fresh = rng.integers(0, 50_000, 1_000)
    column.insert(fresh)
    reference = np.concatenate([reference, fresh])
    for query_number in range(20):
        low = int(rng.integers(0, 45_000))
        check(low, low + 5_000, f"post-merge query {query_number}")


# ----------------------------------------------------------------------
# Batch path: whole-batch delegation equals the sequential loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("parallel", [False, True])
def test_batch_path_matches_oracle(parallel, oracle_data, rng):
    from repro.engine.batch import BatchExecutor

    column = shard_column(Column(oracle_data.copy(), name="v"), 4)
    index = build_sharded_index(
        column, "PQ", parallel=parallel, workers=2, budget=FixedDelta(0.25)
    )
    try:
        lows = rng.integers(0, 45_000, 40)
        predicates = [Predicate(int(low), int(low) + 4_000) for low in lows]
        batch = BatchExecutor().execute(index, predicates)
        assert batch.vectorized_queries == len(predicates)
        for predicate, answer in zip(predicates, batch.results):
            _assert_equal(
                answer,
                _oracle(oracle_data, predicate.low, predicate.high),
                f"batch query [{predicate.low}, {predicate.high}]",
            )
    finally:
        index.close()
        column.close()
