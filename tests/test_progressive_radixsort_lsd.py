"""Tests for Progressive Radixsort (LSD)."""

import numpy as np
import pytest

from repro.core.budget import AdaptiveBudget, FixedBudget
from repro.core.phase import IndexPhase
from repro.core.query import Predicate
from repro.progressive.radixsort_lsd import ProgressiveRadixsortLSD
from repro.storage.column import Column

from tests.conftest import (
    assert_matches_brute_force,
    brute_force,
    random_point_predicates,
    random_range_predicates,
)


class TestRadixsortLSDLifecycle:
    def test_rejects_non_power_of_two_buckets(self, uniform_column):
        with pytest.raises(ValueError):
            ProgressiveRadixsortLSD(uniform_column, n_buckets=48)

    def test_total_passes_formula(self, rng):
        # Domain of 2^16 values with 64 buckets needs ceil(16 / 6) = 3 passes,
        # matching the example in Section 3.4 of the paper.
        data = rng.integers(0, 2 ** 16, size=10_000)
        data[0], data[1] = 0, 2 ** 16 - 1  # pin the domain
        index = ProgressiveRadixsortLSD(Column(data), budget=FixedBudget(1.0), n_buckets=64)
        index.query(Predicate(0, 10))
        assert index.total_passes == 3

    def test_phase_progression(self, uniform_column, uniform_data, rng):
        index = ProgressiveRadixsortLSD(uniform_column, budget=FixedBudget(0.5))
        seen = []
        for predicate in random_range_predicates(uniform_data, 80, rng):
            index.query(predicate)
            if not seen or seen[-1] is not index.phase:
                seen.append(index.phase)
        orders = [phase.order for phase in seen]
        assert orders == sorted(orders)
        assert index.converged

    def test_final_array_sorted(self, uniform_column, uniform_data):
        index = ProgressiveRadixsortLSD(uniform_column, budget=FixedBudget(1.0))
        iterations = 0
        while not index.converged and iterations < 200:
            index.query(Predicate(0, 100))
            iterations += 1
        assert index.converged
        assert np.array_equal(index._cascade.leaf_values, np.sort(uniform_data))


class TestRadixsortLSDCorrectness:
    def test_exact_range_answers(self, uniform_column, uniform_data, rng):
        index = ProgressiveRadixsortLSD(uniform_column, budget=FixedBudget(0.25))
        predicates = random_range_predicates(uniform_data, 80, rng)
        assert_matches_brute_force(index, uniform_data, predicates)
        assert index.converged

    def test_exact_point_answers_during_all_phases(self, uniform_column, uniform_data, rng):
        index = ProgressiveRadixsortLSD(uniform_column, budget=FixedBudget(0.1))
        predicates = random_point_predicates(uniform_data, 150, rng)
        assert_matches_brute_force(index, uniform_data, predicates)

    def test_mixed_point_and_range_queries(self, skewed_column, skewed_data, rng):
        index = ProgressiveRadixsortLSD(skewed_column, budget=FixedBudget(0.3))
        for query_number in range(80):
            if query_number % 2 == 0:
                predicate = random_point_predicates(skewed_data, 1, rng)[0]
            else:
                predicate = random_range_predicates(skewed_data, 1, rng)[0]
            result = index.query(predicate)
            expected = brute_force(skewed_data, predicate)
            assert result.count == expected.count
            assert result.value_sum == expected.value_sum

    def test_adaptive_budget(self, uniform_column, uniform_data, rng):
        index = ProgressiveRadixsortLSD(
            uniform_column, budget=AdaptiveBudget(scan_fraction=0.5)
        )
        predicates = random_range_predicates(uniform_data, 250, rng)
        assert_matches_brute_force(index, uniform_data, predicates)
        assert index.converged

    def test_point_query_for_absent_value(self, uniform_column, uniform_data, rng):
        index = ProgressiveRadixsortLSD(uniform_column, budget=FixedBudget(0.2))
        absent = int(uniform_data.max()) + 1_000
        for _ in range(20):
            assert index.query(Predicate(absent, absent)).count == 0
            # keep making progress with range queries as well
            index.query(random_range_predicates(uniform_data, 1, rng)[0])

    def test_small_domain_single_pass(self, rng):
        data = rng.integers(0, 60, size=5_000)
        index = ProgressiveRadixsortLSD(Column(data), budget=FixedBudget(0.5), n_buckets=64)
        index.query(Predicate(0, 10))
        assert index.total_passes == 1
        for _ in range(30):
            result = index.query(Predicate(10, 50))
            mask = (data >= 10) & (data <= 50)
            assert result.count == mask.sum()
        assert index.converged

    def test_all_equal_values(self):
        data = np.full(3_000, 9, dtype=np.int64)
        index = ProgressiveRadixsortLSD(Column(data), budget=FixedBudget(0.5))
        for _ in range(20):
            assert index.query(Predicate(9, 9)).count == 3_000
        assert index.converged
