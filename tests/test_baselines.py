"""Tests for the full-scan and full-index baselines."""

import numpy as np
import pytest

from repro.baselines import FullIndex, FullScan
from repro.core.phase import IndexPhase
from repro.core.query import Predicate

from tests.conftest import assert_matches_brute_force, random_range_predicates


class TestFullScan:
    def test_exact_answers(self, uniform_column, uniform_data, rng):
        index = FullScan(uniform_column)
        predicates = random_range_predicates(uniform_data, 40, rng)
        assert_matches_brute_force(index, uniform_data, predicates)

    def test_never_builds_an_index(self, uniform_column, uniform_data, rng):
        index = FullScan(uniform_column)
        for predicate in random_range_predicates(uniform_data, 10, rng):
            index.query(predicate)
        assert index.phase is IndexPhase.INACTIVE
        assert not index.converged
        assert index.memory_footprint() == 0

    def test_predicted_cost_is_scan_cost(self, uniform_column, uniform_data):
        index = FullScan(uniform_column)
        index.query(Predicate(0, 100))
        expected = index.cost_model.scan_time(uniform_data.size)
        assert index.last_stats.predicted_cost == pytest.approx(expected)


class TestFullIndex:
    def test_exact_answers(self, uniform_column, uniform_data, rng):
        index = FullIndex(uniform_column)
        predicates = random_range_predicates(uniform_data, 40, rng)
        assert_matches_brute_force(index, uniform_data, predicates)

    def test_first_query_builds_the_tree(self, uniform_column, uniform_data):
        index = FullIndex(uniform_column)
        assert index.phase is IndexPhase.INACTIVE
        index.query(Predicate(0, 100))
        assert index.phase is IndexPhase.CONVERGED
        assert index.converged
        assert index.tree is not None
        assert len(index.tree) == uniform_data.size
        assert index.last_stats.elements_indexed == uniform_data.size

    def test_tree_reused_for_later_queries(self, uniform_column):
        index = FullIndex(uniform_column)
        index.query(Predicate(0, 100))
        tree = index.tree
        index.query(Predicate(200, 300))
        assert index.tree is tree

    def test_point_queries_with_duplicates(self, skewed_column, skewed_data, rng):
        index = FullIndex(skewed_column)
        for value in skewed_data[rng.integers(0, skewed_data.size, size=30)]:
            result = index.query(Predicate(int(value), int(value)))
            assert result.count == int((skewed_data == value).sum())

    def test_memory_footprint_after_build(self, uniform_column, uniform_data):
        index = FullIndex(uniform_column)
        index.query(Predicate(0, 100))
        assert index.memory_footprint() >= uniform_data.nbytes * 0.9
