"""Subprocess worker for the service soak suite.

Stands up a real :class:`~repro.serve.server.QueryServer` over a persisted
database, floods it with concurrent reader traffic, then drives the single
writer into one of the durability layer's fault points so the whole process
dies with ``SIGKILL`` *mid-traffic* — readers blocked in queries, the
writer blocked in its WAL protocol step.  The parent test recovers the
directory and asserts the durability contract plus a clean reader
reconnect against the recovered database.

Usage: ``python serve_worker.py <directory> <scenario> <socket-path>``

Scenarios (sentinels follow :mod:`tests.crash_worker`):

``commit-durable``
    The writer connection dies right after B's commit-marker fsync.
    A and B must survive recovery; C was never written.
``uncommitted-lost``
    The writer connection dies mid-append of the uncommitted C insert.
    A and B must survive; C must not.
"""

from __future__ import annotations

import os
import sys
import threading

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.persist.database import Database  # noqa: E402
from repro.persist.faults import CRASH_ENV  # noqa: E402
from repro.serve.client import ServiceClient  # noqa: E402
from repro.serve.server import QueryServer  # noqa: E402

#: Sentinel values; the parent asserts on their exact visible counts.
SENTINEL_A = 9_100_001  # committed before the checkpoint (3 rows)
SENTINEL_B = 9_200_002  # committed through the service (4 rows)
SENTINEL_C = 9_300_003  # never committed (5 rows) — must not survive

ROWS = 4_000
DOMAIN = 1_000_000


def base_data() -> np.ndarray:
    return np.random.default_rng(42).integers(0, DOMAIN, size=ROWS)


def reader_traffic(address: str, stop: threading.Event, seed: int) -> None:
    """One closed-loop reader hammering ranges and re-pinning."""
    rng = np.random.default_rng(seed)
    try:
        client = ServiceClient(address, role="reader", timeout=10.0)
        while not stop.is_set():
            low = int(rng.integers(0, DOMAIN - 100_000))
            client.between("ra", low, low + 100_000)
            if rng.integers(0, 4) == 0:
                client.refresh()
    except Exception:
        # The process is being SIGKILLed under the reader; any transport
        # error here is expected collateral, never a worker failure.
        pass


def main() -> int:
    directory, scenario, socket_path = sys.argv[1], sys.argv[2], sys.argv[3]
    db = Database.create(directory, {"ra": base_data()})
    db.create_index("ra", method="PQ", fixed_delta=0.5)
    for low in (1_000, 250_000, 500_000, 750_000):
        db.between("ra", low, low + 100_000)

    # Committed + checkpointed baseline, all before the service starts so
    # the checkpoint itself is single-threaded (it is not part of the
    # concurrent protocol under test — the WAL commit path is).
    db.insert([SENTINEL_A] * 3)
    db.commit()
    db.checkpoint()

    server = QueryServer(database=db, address=socket_path)
    server.start()

    stop = threading.Event()
    readers = [
        threading.Thread(target=reader_traffic, args=(socket_path, stop, 7 + i))
        for i in range(2)
    ]
    for thread in readers:
        thread.start()

    writer = ServiceClient(socket_path, role="writer", timeout=30.0)
    if scenario == "commit-durable":
        os.environ[CRASH_ENV] = "wal-after-commit"
        writer.insert([SENTINEL_B] * 4)
        writer.commit()  # SIGKILL fires inside the server's WAL commit
    elif scenario == "uncommitted-lost":
        writer.insert([SENTINEL_B] * 4)
        writer.commit()
        os.environ[CRASH_ENV] = "wal-after-append"
        writer.insert([SENTINEL_C] * 5)  # SIGKILL fires mid-append
    else:
        raise SystemExit(f"unknown scenario {scenario!r}")

    # A scenario must never fall through to a graceful exit: the parent
    # asserts on SIGKILL, so reaching this point is a test bug.
    raise RuntimeError(f"scenario {scenario!r} did not crash")


if __name__ == "__main__":
    sys.exit(main())
