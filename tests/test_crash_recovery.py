"""Crash-injection tests: kill -9 between WAL/checkpoint protocol steps.

Each test launches ``tests/crash_worker.py`` in a subprocess with a fault
point armed (see :mod:`repro.persist.faults`), waits for it to die with
``SIGKILL``, then recovers the directory with ``Database.open`` and asserts
the durability contract:

* every committed write is present (exactly once — no replay double-apply);
* uncommitted writes are absent;
* the checkpointed index resumes in a non-RAW phase;
* no index answer diverges from a FullScan-style NumPy oracle over the
  recovered visible rows.
"""

from __future__ import annotations

import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.phase import IndexPhase
from repro.persist.database import Database

from crash_worker import DOMAIN, SENTINEL_A, SENTINEL_B, SENTINEL_C, base_data

WORKER = Path(__file__).resolve().parent / "crash_worker.py"

SCENARIOS = (
    "uncommitted-lost",
    "commit-durable",
    "commit-marker-torn",
    "mid-checkpoint",
    "checkpoint-published",
)


def run_worker(directory: Path, scenario: str) -> None:
    """Run the worker until its injected SIGKILL."""
    process = subprocess.run(
        [sys.executable, str(WORKER), str(directory), scenario],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert process.returncode == -signal.SIGKILL, (
        f"worker for {scenario!r} exited with {process.returncode} instead of "
        f"SIGKILL\nstdout: {process.stdout}\nstderr: {process.stderr}"
    )


def oracle(data: np.ndarray, low: int, high: int):
    mask = (data >= low) & (data <= high)
    return data[mask].sum(), int(mask.sum())


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_crash_recovery_contract(tmp_path, scenario):
    directory = tmp_path / "db"
    run_worker(directory, scenario)

    db = Database.open(str(directory))
    try:
        # Durability of the sentinels: A and B were committed, C never was.
        assert db.equals("ra", SENTINEL_A).count == 3
        assert db.equals("ra", SENTINEL_B).count == 4
        assert db.equals("ra", SENTINEL_C).count == 0

        # The checkpointed index resumed mid-convergence, never RAW.
        index = db.index_for("ra")
        assert index.phase not in (IndexPhase.INACTIVE,)
        assert index.phase.value != "inactive"

        # Differential oracle: the recovered index answers exactly like a
        # scan over the recovered visible rows, and those rows are exactly
        # base + committed sentinels.
        visible = np.asarray(db.table.column("ra").data)
        expected = np.concatenate(
            [base_data(), [SENTINEL_A] * 3, [SENTINEL_B] * 4]
        )
        assert np.array_equal(np.sort(visible), np.sort(expected))
        rng = np.random.default_rng(5)
        for low in rng.integers(0, DOMAIN, size=12):
            low = int(low)
            high = low + 60_000
            result = db.between("ra", low, high)
            expected_sum, expected_count = oracle(visible, low, high)
            assert result.count == expected_count
            assert float(result.value_sum) == float(expected_sum)
    finally:
        db.close(checkpoint=False)


def test_recovery_after_graceful_close(tmp_path):
    """Control run: a clean close/open round trip preserves everything."""
    directory = tmp_path / "db"
    data = base_data()
    db = Database.create(str(directory), {"ra": data})
    db.create_index("ra", method="PQ", fixed_delta=0.5)
    for low in (0, 100_000, 900_000):
        db.between("ra", low, low + 50_000)
    db.insert([SENTINEL_A] * 2)
    db.commit()
    phase_before = db.index_for("ra").phase
    db.close()

    db = Database.open(str(directory))
    try:
        assert db.index_for("ra").phase is phase_before
        assert db.equals("ra", SENTINEL_A).count == 2
        assert len(db.table) == data.size + 2
    finally:
        db.close(checkpoint=False)
