"""On-disk column base arrays and the pickle-free state codec.

Two concerns live here because they share one byte-level vocabulary:

* **Column files.**  A column's read-optimized base array is stored in a raw
  little-endian file with a small fixed header; :func:`map_column_file`
  returns a read-only ``np.memmap`` over the data section, so a
  :class:`~repro.storage.column.Column` built from it (and every
  :class:`~repro.storage.column.ColumnSnapshot` taken before the first
  write) reads straight from the page cache with zero copies.

* **State blobs.**  The WAL and the checkpoints both persist nested
  dictionaries containing NumPy arrays.  :func:`encode_state` walks the
  tree, hoists every ``ndarray`` into a binary section and replaces it with
  a placeholder, producing ``JSON header + raw array bytes`` — no pickle,
  so a corrupted or adversarial file can never execute code on load.

All multi-byte integers in headers are little-endian (``struct`` ``<``).
"""

from __future__ import annotations

import json
import os
import struct
from typing import Tuple

import numpy as np

from repro.errors import PersistenceError

#: Magic prefix of a column base file.
COLUMN_MAGIC = b"RPCOL1\x00\x00"

#: Magic prefix of an encoded state blob.
STATE_MAGIC = b"RPST1\x00"

_ARRAY_KEY = "__ndarray__"

#: Dtypes a persisted array may carry.  The engine only produces these; the
#: allowlist keeps a corrupted header from driving ``np.dtype`` with junk.
_ALLOWED_DTYPES = {
    "int8", "uint8", "int16", "uint16", "int32", "uint32",
    "int64", "uint64", "float32", "float64", "bool",
}


def _json_default(value):
    """Coerce NumPy scalars the state trees routinely contain."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"cannot persist object of type {type(value).__name__}")


def fsync_file(handle) -> None:
    """Flush ``handle`` and force its bytes to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_directory(path: str) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# State blobs
# ----------------------------------------------------------------------
def encode_state(state) -> bytes:
    """Serialize a nested dict/list tree that may contain NumPy arrays.

    Layout::

        STATE_MAGIC | u32 header_len | header_json | array bytes...

    The header holds the JSON tree (arrays replaced by ``{"__ndarray__": i}``)
    and a manifest of ``(dtype, length)`` per array; array payloads follow
    concatenated in manifest order as raw little-endian bytes.
    """
    arrays = []
    manifest = []

    def walk(node):
        if isinstance(node, np.ndarray):
            if node.ndim != 1:
                raise PersistenceError(
                    f"persisted arrays must be one-dimensional, got shape {node.shape}"
                )
            array = np.ascontiguousarray(node)
            name = array.dtype.name
            if name not in _ALLOWED_DTYPES:
                raise PersistenceError(f"cannot persist array dtype {name!r}")
            arrays.append(array)
            manifest.append({"dtype": name, "length": int(array.size)})
            return {_ARRAY_KEY: len(arrays) - 1}
        if isinstance(node, dict):
            return {str(key): walk(item) for key, item in node.items()}
        if isinstance(node, (list, tuple)):
            return [walk(item) for item in node]
        return node

    tree = walk(state)
    header = json.dumps(
        {"tree": tree, "arrays": manifest}, default=_json_default
    ).encode("utf-8")
    parts = [STATE_MAGIC, struct.pack("<I", len(header)), header]
    for array in arrays:
        data = array.astype(array.dtype.newbyteorder("<"), copy=False)
        parts.append(data.tobytes())
    return b"".join(parts)


def decode_state(blob: bytes):
    """Inverse of :func:`encode_state`."""
    if not blob.startswith(STATE_MAGIC):
        raise PersistenceError("state blob has a bad magic prefix")
    offset = len(STATE_MAGIC)
    (header_len,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    header_end = offset + header_len
    if header_end > len(blob):
        raise PersistenceError("state blob header is truncated")
    header = json.loads(blob[offset:header_end].decode("utf-8"))
    arrays = []
    cursor = header_end
    for entry in header["arrays"]:
        name = str(entry["dtype"])
        if name not in _ALLOWED_DTYPES:
            raise PersistenceError(f"state blob declares illegal dtype {name!r}")
        dtype = np.dtype(name).newbyteorder("<")
        nbytes = dtype.itemsize * int(entry["length"])
        if cursor + nbytes > len(blob):
            raise PersistenceError("state blob array section is truncated")
        view = np.frombuffer(blob[cursor : cursor + nbytes], dtype=dtype)
        # Copy out of the immutable bytes buffer: restored structures (index
        # arrays, cracker columns) mutate their arrays in place.
        arrays.append(np.array(view, dtype=np.dtype(name)))
        cursor += nbytes

    def walk(node):
        if isinstance(node, dict):
            if set(node.keys()) == {_ARRAY_KEY}:
                return arrays[int(node[_ARRAY_KEY])]
            return {key: walk(item) for key, item in node.items()}
        if isinstance(node, list):
            return [walk(item) for item in node]
        return node

    return walk(header["tree"])


def peek_state_tree(blob: bytes):
    """Return a state blob's JSON tree without decoding the array section.

    Arrays remain ``{"__ndarray__": i}`` placeholders.  Use for cheap
    introspection (watermarks, key listings) of blobs whose array payloads
    may be hundreds of megabytes.
    """
    if not blob.startswith(STATE_MAGIC):
        raise PersistenceError("state blob has a bad magic prefix")
    offset = len(STATE_MAGIC)
    (header_len,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    if offset + header_len > len(blob):
        raise PersistenceError("state blob header is truncated")
    return json.loads(blob[offset : offset + header_len].decode("utf-8"))["tree"]


# ----------------------------------------------------------------------
# Column files
# ----------------------------------------------------------------------
_COLUMN_HEADER = struct.Struct("<8s8sQ")


def write_column_file(path: str, array: np.ndarray) -> None:
    """Write ``array`` as a mappable column base file (fsynced)."""
    array = np.ascontiguousarray(array)
    name = array.dtype.name
    if name not in _ALLOWED_DTYPES:
        raise PersistenceError(f"cannot persist column dtype {name!r}")
    with open(path, "wb") as handle:
        handle.write(
            _COLUMN_HEADER.pack(COLUMN_MAGIC, name.encode("ascii").ljust(8, b"\x00"), array.size)
        )
        handle.write(array.astype(array.dtype.newbyteorder("<"), copy=False).tobytes())
        fsync_file(handle)


def read_column_header(path: str) -> Tuple[np.dtype, int]:
    """Return ``(dtype, n_rows)`` of a column base file."""
    with open(path, "rb") as handle:
        header = handle.read(_COLUMN_HEADER.size)
    if len(header) != _COLUMN_HEADER.size:
        raise PersistenceError(f"column file {path!r} is truncated")
    magic, dtype_bytes, count = _COLUMN_HEADER.unpack(header)
    if magic != COLUMN_MAGIC:
        raise PersistenceError(f"column file {path!r} has a bad magic prefix")
    name = dtype_bytes.rstrip(b"\x00").decode("ascii")
    if name not in _ALLOWED_DTYPES:
        raise PersistenceError(f"column file {path!r} declares illegal dtype {name!r}")
    return np.dtype(name), int(count)


def map_column_file(path: str, cache=None):
    """Open the data section of a column base file without copying it.

    For a v1 (raw) file the result is a read-only ``np.memmap`` view:
    nothing is read until touched, and a
    :class:`~repro.storage.column.Column` built from it keeps the mapping
    (``_coerce`` performs no copy for a contiguous array of a native
    dtype), so snapshots are zero-copy over the file.

    For a v2 (compressed) file the result is a
    :class:`~repro.persist.compress.PagedArray` decompressing one block at
    a time through ``cache`` (or the process-wide default
    :class:`~repro.persist.compress.BlockCache`).
    """
    with open(path, "rb") as handle:
        magic = handle.read(8)
    if magic == b"RPCOL2\x00\x00":
        from repro.persist.compress import PagedArray

        return PagedArray.open(path, cache=cache)
    dtype, count = read_column_header(path)
    expected = _COLUMN_HEADER.size + dtype.itemsize * count
    actual = os.path.getsize(path)
    if actual < expected:
        raise PersistenceError(
            f"column file {path!r} is truncated: {actual} bytes, expected {expected}"
        )
    return np.memmap(path, dtype=dtype, mode="r", offset=_COLUMN_HEADER.size, shape=(count,))


class ColumnPager:
    """Manages the ``columns/`` directory of one persisted database."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def path_for(self, column_name: str) -> str:
        # Column names come from user schemas; encode anything outside a
        # conservative charset so names can never escape the directory.
        safe = "".join(
            ch if ch.isalnum() or ch in ("-", "_") else f"%{ord(ch):02x}"
            for ch in str(column_name)
        )
        return os.path.join(self.directory, f"{safe}.col")

    def store(
        self,
        column_name: str,
        array,
        compress: bool = False,
        block_rows: int | None = None,
    ) -> str:
        """Persist a base array; returns the file path.

        With ``compress=True`` the file is written in the v2 block format
        (``array`` may then also be a lazy array or an iterable of chunks);
        otherwise the raw v1 format is used.
        """
        path = self.path_for(column_name)
        if compress:
            from repro.persist.compress import DEFAULT_BLOCK_ROWS, write_compressed_column

            write_compressed_column(path, array, block_rows=block_rows or DEFAULT_BLOCK_ROWS)
        else:
            write_column_file(path, np.asarray(array))
        return path

    def load(self, column_name: str, cache=None):
        """Open a previously stored base array (memmap or paged view)."""
        return map_column_file(self.path_for(column_name), cache=cache)
