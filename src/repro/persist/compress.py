"""Compressed on-disk column format (v2): FOR / dictionary blocks.

A v2 column file splits the base array into fixed-size blocks, encodes each
block independently and records a per-block directory entry carrying the
codec, the payload location and the block's **min/max** — which is exactly
the statistic the shard zone maps route on, so a compressed column feeds
:class:`~repro.shard.zonemaps.ShardRouter`-style pruning for free.

Layout::

    RPCOL2 header | block payloads ... | directory | u32 crc(directory)

    header    = <8s8sQIIQ>  magic, dtype, n_rows, block_rows, n_blocks,
                            directory offset
    dir entry = <BBHIQQ8s8s8s> codec, code width, reserved, count,
                            payload offset, payload length,
                            raw min, raw max, raw FOR reference

Codecs (chosen per block, smallest encoding wins):

* ``RAW`` — values as little-endian bytes (incompressible blocks);
* ``FOR`` — frame of reference: ``value - block_min`` cast to the
  narrowest unsigned width that holds the block's span (int64 only);
* ``DICT`` — dictionary: sorted unique values + per-row codes, for
  low-cardinality blocks of either dtype.

Reads decompress **one block at a time** through a :class:`BlockCache`
(LRU with pinning), and :class:`PagedArray` wraps a reader + cache into the
lazy array-like the column/kernel layers stream over.  Decompression cost
is priced into the cost model via ``CostConstants.decompress`` (see
:meth:`~repro.core.index.BaseIndex._price_decompression`).
"""

from __future__ import annotations

import itertools
import os
import struct
import threading
import time
from collections import OrderedDict
from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.errors import PersistenceError
from repro.persist.pager import fsync_file
from repro.storage.lazy import LazyArray

#: Magic prefix of a v2 (compressed) column file.
COLUMN2_MAGIC = b"RPCOL2\x00\x00"

#: Default rows per compression block (64 K rows = 512 KiB of int64).
DEFAULT_BLOCK_ROWS = 1 << 16

#: Capacity of the fallback module-level cache (columns opened without a
#: memory budget still decompress one block at a time).
DEFAULT_CACHE_BYTES = 64 << 20

_HEADER = struct.Struct("<8s8sQIIQ")
_DIR_ENTRY = struct.Struct("<BBHIQQ8s8s8s")

CODEC_RAW = 0
CODEC_FOR = 1
CODEC_DICT = 2

_COLUMN_DTYPES = {"int64", "float64"}

_reader_tokens = itertools.count(1)


def _raw8(value, dtype: np.dtype) -> bytes:
    return np.asarray([value], dtype=dtype.newbyteorder("<")).tobytes()


def _from_raw8(blob: bytes, dtype: np.dtype):
    return np.frombuffer(blob, dtype=dtype.newbyteorder("<"))[0]


# ----------------------------------------------------------------------
# Block codecs
# ----------------------------------------------------------------------
def _for_width(span: int) -> int:
    """Narrowest unsigned byte width holding ``span`` (1, 2, 4 or 8)."""
    for width in (1, 2, 4):
        if span < (1 << (8 * width)):
            return width
    return 8


def encode_block(values: np.ndarray) -> Tuple[int, int, bytes, object, object, object]:
    """Encode one block; returns ``(codec, width, payload, min, max, ref)``."""
    if values.size == 0:
        raise PersistenceError("cannot encode an empty column block")
    vmin = values.min()
    vmax = values.max()
    little = values.dtype.newbyteorder("<")
    raw_payload = values.astype(little, copy=False).tobytes()
    best = (CODEC_RAW, values.dtype.itemsize, raw_payload)

    unique = np.unique(values)
    if unique.size <= 1 << 16 and unique.size < values.size:
        code_width = 1 if unique.size <= 1 << 8 else 2
        code_dtype = np.dtype(f"<u{code_width}")
        codes = np.searchsorted(unique, values).astype(code_dtype)
        payload = (
            struct.pack("<I", unique.size)
            + unique.astype(little, copy=False).tobytes()
            + codes.tobytes()
        )
        if len(payload) < len(best[2]):
            best = (CODEC_DICT, code_width, payload)

    if values.dtype.kind == "i":
        span = int(vmax) - int(vmin)
        width = _for_width(span)
        if width < values.dtype.itemsize:
            deltas = (values.astype(np.int64) - np.int64(vmin)).astype(np.uint64)
            payload = deltas.astype(np.dtype(f"<u{width}")).tobytes()
            if len(payload) < len(best[2]):
                best = (CODEC_FOR, width, payload)

    codec, width, payload = best
    return codec, width, payload, vmin, vmax, vmin


def decode_block(
    payload: bytes, codec: int, width: int, count: int, dtype: np.dtype, ref
) -> np.ndarray:
    """Inverse of :func:`encode_block`; returns a read-only array."""
    little = dtype.newbyteorder("<")
    if codec == CODEC_RAW:
        values = np.frombuffer(payload, dtype=little, count=count).astype(dtype, copy=True)
    elif codec == CODEC_FOR:
        deltas = np.frombuffer(payload, dtype=np.dtype(f"<u{width}"), count=count)
        values = deltas.astype(np.int64) + np.int64(ref)
        values = values.astype(dtype, copy=False)
    elif codec == CODEC_DICT:
        (n_unique,) = struct.unpack_from("<I", payload, 0)
        cursor = 4
        unique = np.frombuffer(payload, dtype=little, count=n_unique, offset=cursor)
        cursor += n_unique * dtype.itemsize
        codes = np.frombuffer(payload, dtype=np.dtype(f"<u{width}"), count=count, offset=cursor)
        values = unique.astype(dtype, copy=False)[codes]
    else:
        raise PersistenceError(f"column block declares unknown codec {codec}")
    if values.size != count:
        raise PersistenceError("column block payload does not match its count")
    values.setflags(write=False)
    return values


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def _iter_blocks(source, block_rows: int) -> Iterator[np.ndarray]:
    """Regroup an array or an iterable of chunks into exact-size blocks."""
    if isinstance(source, np.ndarray):
        chunks: Iterable[np.ndarray] = (source,)
    elif isinstance(source, LazyArray):
        chunks = (chunk for _, chunk in source.iter_chunks(block_rows))
    else:
        chunks = source
    pending: list[np.ndarray] = []
    pending_rows = 0
    for chunk in chunks:
        chunk = np.ascontiguousarray(chunk)
        while chunk.size:
            take = min(chunk.size, block_rows - pending_rows)
            pending.append(chunk[:take])
            pending_rows += take
            chunk = chunk[take:]
            if pending_rows == block_rows:
                yield pending[0] if len(pending) == 1 else np.concatenate(pending)
                pending = []
                pending_rows = 0
    if pending_rows:
        yield pending[0] if len(pending) == 1 else np.concatenate(pending)


def write_compressed_column(
    path: str,
    source,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> dict:
    """Write a v2 compressed column file; ``source`` may be chunked.

    ``source`` is an ndarray, a lazy array, or an iterable of ndarray
    chunks — the writer itself streams, so datasets larger than RAM can be
    written chunk-by-chunk.  Returns summary stats (rows, blocks, bytes).
    """
    block_rows = int(block_rows)
    if block_rows <= 0:
        raise PersistenceError(f"block_rows must be positive, got {block_rows}")
    entries = []
    n_rows = 0
    dtype: np.dtype | None = None
    payload_bytes = 0
    with open(path, "wb") as handle:
        handle.write(b"\x00" * _HEADER.size)
        for block in _iter_blocks(source, block_rows):
            if dtype is None:
                dtype = block.dtype
                if dtype.name not in _COLUMN_DTYPES:
                    raise PersistenceError(
                        f"cannot compress column dtype {dtype.name!r}"
                    )
            elif block.dtype != dtype:
                raise PersistenceError("column chunks disagree on dtype")
            codec, width, payload, vmin, vmax, ref = encode_block(block)
            offset = handle.tell()
            handle.write(payload)
            payload_bytes += len(payload)
            entries.append(
                _DIR_ENTRY.pack(
                    codec,
                    width,
                    0,
                    block.size,
                    offset,
                    len(payload),
                    _raw8(vmin, dtype),
                    _raw8(vmax, dtype),
                    _raw8(ref, dtype),
                )
            )
            n_rows += int(block.size)
        if dtype is None or n_rows == 0:
            raise PersistenceError("cannot write an empty compressed column")
        directory = b"".join(entries)
        dir_offset = handle.tell()
        handle.write(directory)
        import zlib

        handle.write(struct.pack("<I", zlib.crc32(directory)))
        handle.seek(0)
        handle.write(
            _HEADER.pack(
                COLUMN2_MAGIC,
                dtype.name.encode("ascii").ljust(8, b"\x00"),
                n_rows,
                block_rows,
                len(entries),
                dir_offset,
            )
        )
        fsync_file(handle)
    return {
        "rows": n_rows,
        "blocks": len(entries),
        "payload_bytes": payload_bytes,
        "logical_bytes": n_rows * dtype.itemsize,
    }


def is_compressed_column(path: str) -> bool:
    """Whether ``path`` carries the v2 compressed-column magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(COLUMN2_MAGIC)) == COLUMN2_MAGIC
    except OSError:
        return False


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
class CompressedColumnReader:
    """Random-access block reader over a v2 compressed column file."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.cache_token = next(_reader_tokens)
        with open(self.path, "rb") as handle:
            header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise PersistenceError(f"column file {path!r} is truncated")
        magic, dtype_bytes, n_rows, block_rows, n_blocks, dir_offset = _HEADER.unpack(header)
        if magic != COLUMN2_MAGIC:
            raise PersistenceError(f"column file {path!r} has a bad magic prefix")
        name = dtype_bytes.rstrip(b"\x00").decode("ascii")
        if name not in _COLUMN_DTYPES:
            raise PersistenceError(f"column file {path!r} declares illegal dtype {name!r}")
        self.dtype = np.dtype(name)
        self.n_rows = int(n_rows)
        self.block_rows = int(block_rows)
        self.n_blocks = int(n_blocks)
        self._fd = os.open(self.path, os.O_RDONLY)
        try:
            self._load_directory(dir_offset)
        except Exception:
            os.close(self._fd)
            self._fd = -1
            raise

    def _load_directory(self, dir_offset: int) -> None:
        import zlib

        size = self.n_blocks * _DIR_ENTRY.size
        blob = os.pread(self._fd, size + 4, dir_offset)
        if len(blob) != size + 4:
            raise PersistenceError(f"column file {self.path!r} has a truncated directory")
        directory, crc_blob = blob[:size], blob[size:]
        (crc,) = struct.unpack("<I", crc_blob)
        if zlib.crc32(directory) != crc:
            raise PersistenceError(f"column file {self.path!r} fails its directory CRC")
        codecs = np.empty(self.n_blocks, dtype=np.uint8)
        widths = np.empty(self.n_blocks, dtype=np.uint8)
        counts = np.empty(self.n_blocks, dtype=np.int64)
        offsets = np.empty(self.n_blocks, dtype=np.int64)
        lengths = np.empty(self.n_blocks, dtype=np.int64)
        mins = np.empty(self.n_blocks, dtype=self.dtype)
        maxs = np.empty(self.n_blocks, dtype=self.dtype)
        refs = np.empty(self.n_blocks, dtype=self.dtype)
        for i in range(self.n_blocks):
            codec, width, _, count, offset, length, rmin, rmax, rref = _DIR_ENTRY.unpack_from(
                directory, i * _DIR_ENTRY.size
            )
            codecs[i] = codec
            widths[i] = width
            counts[i] = count
            offsets[i] = offset
            lengths[i] = length
            mins[i] = _from_raw8(rmin, self.dtype)
            maxs[i] = _from_raw8(rmax, self.dtype)
            refs[i] = _from_raw8(rref, self.dtype)
        if int(counts.sum()) != self.n_rows:
            raise PersistenceError(
                f"column file {self.path!r}: directory rows disagree with header"
            )
        self.codecs, self.widths, self.counts = codecs, widths, counts
        self.offsets, self.lengths = offsets, lengths
        self.block_mins, self.block_maxs, self.refs = mins, maxs, refs
        self.block_starts = np.concatenate([[0], np.cumsum(counts)])

    # ------------------------------------------------------------------
    def read_block(self, block_id: int) -> np.ndarray:
        """Decompress one block (bypasses any cache)."""
        i = int(block_id)
        if not 0 <= i < self.n_blocks:
            raise PersistenceError(f"block {block_id} out of range (0 .. {self.n_blocks - 1})")
        payload = os.pread(self._fd, int(self.lengths[i]), int(self.offsets[i]))
        if len(payload) != int(self.lengths[i]):
            raise PersistenceError(f"column file {self.path!r} block {i} is truncated")
        return decode_block(
            payload,
            int(self.codecs[i]),
            int(self.widths[i]),
            int(self.counts[i]),
            self.dtype,
            self.refs[i],
        )

    def block_bounds(self, block_id: int) -> Tuple[int, int]:
        """Row range ``[start, stop)`` the block covers."""
        return int(self.block_starts[block_id]), int(self.block_starts[block_id + 1])

    def block_minmax(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-block ``(mins, maxs)`` — zone-map food, no decompression."""
        return self.block_mins.copy(), self.block_maxs.copy()

    def min(self):
        return self.block_mins.min()

    def max(self):
        return self.block_maxs.max()

    def compressed_bytes(self) -> int:
        return int(self.lengths.sum())

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __del__(self):  # pragma: no cover - interpreter shutdown ordering
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Block cache
# ----------------------------------------------------------------------
class BlockCache:
    """LRU cache of decompressed blocks with pinning.

    Capacity is in decompressed bytes.  ``pin``/``unpin`` protect a block
    from eviction while a kernel streams over it; eviction skips pinned
    entries.  All operations are thread-safe (the serving layer's reader
    threads share one cache).
    """

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._pins: dict = {}
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_decompressed = 0
        self.decompress_seconds = 0.0
        # Pull-mode registration: the cache already counts hits / misses /
        # evictions under its own lock, so the registry reads them lazily
        # at snapshot time and the get() hot path pays nothing extra.
        from repro import obs

        registry = obs.metrics()
        registry.register_pull("cache.block.hits", self,
                               lambda c: c.hits, help="BlockCache lookup hits")
        registry.register_pull("cache.block.misses", self,
                               lambda c: c.misses, help="BlockCache lookup misses")
        registry.register_pull("cache.block.evictions", self,
                               lambda c: c.evictions, help="BlockCache evictions")
        registry.register_pull("cache.block.bytes", self,
                               lambda c: c._bytes, kind="gauge",
                               help="Resident decompressed bytes in the BlockCache")

    def _key(self, reader: CompressedColumnReader, block_id: int) -> tuple:
        return (reader.cache_token, int(block_id))

    # ------------------------------------------------------------------
    def get(self, reader: CompressedColumnReader, block_id: int) -> np.ndarray:
        """The decompressed block, decoding (and caching) it on a miss."""
        key = self._key(reader, block_id)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        started = time.perf_counter()
        block = reader.read_block(block_id)
        elapsed = time.perf_counter() - started
        with self._lock:
            raced = self._entries.get(key)
            if raced is not None:
                return raced
            self.bytes_decompressed += block.nbytes
            self.decompress_seconds += elapsed
            self._entries[key] = block
            self._bytes += block.nbytes
            self._evict_over_capacity()
        return block

    def _evict_over_capacity(self) -> None:
        while self._bytes > self.capacity_bytes and self._entries:
            victim = None
            for key in self._entries:
                if self._pins.get(key, 0) == 0:
                    victim = key
                    break
            if victim is None:
                return  # everything resident is pinned
            block = self._entries.pop(victim)
            self._bytes -= block.nbytes
            self.evictions += 1

    # ------------------------------------------------------------------
    def pin(self, reader: CompressedColumnReader, block_id: int) -> np.ndarray:
        """Fetch and pin a block; eviction skips it until :meth:`unpin`."""
        block = self.get(reader, block_id)
        key = self._key(reader, block_id)
        with self._lock:
            self._pins[key] = self._pins.get(key, 0) + 1
        return block

    def unpin(self, reader: CompressedColumnReader, block_id: int) -> None:
        key = self._key(reader, block_id)
        with self._lock:
            count = self._pins.get(key, 0)
            if count <= 1:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count - 1

    def drop_reader(self, reader: CompressedColumnReader) -> None:
        """Forget every cached block of ``reader`` (reader closed)."""
        with self._lock:
            for key in [k for k in self._entries if k[0] == reader.cache_token]:
                self._bytes -= self._entries.pop(key).nbytes
                self._pins.pop(key, None)

    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return int(self._bytes)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity_bytes": int(self.capacity_bytes),
                "resident_bytes": int(self._bytes),
                "entries": len(self._entries),
                "hits": int(self.hits),
                "misses": int(self.misses),
                "evictions": int(self.evictions),
                "bytes_decompressed": int(self.bytes_decompressed),
                "decompress_seconds": float(self.decompress_seconds),
            }


_default_cache: BlockCache | None = None
_default_cache_lock = threading.Lock()


def default_block_cache() -> BlockCache:
    """Process-wide fallback cache for budget-less compressed columns."""
    global _default_cache
    with _default_cache_lock:
        if _default_cache is None:
            _default_cache = BlockCache(DEFAULT_CACHE_BYTES)
        return _default_cache


# ----------------------------------------------------------------------
# Paged array
# ----------------------------------------------------------------------
class PagedArray(LazyArray):
    """Lazy array over a compressed column file, one cached block at a time.

    This is what a :class:`~repro.storage.column.Column` uses as its base
    when opened from a v2 file: slices materialize only the blocks they
    touch, ``min``/``max`` come from the directory, and gathers group their
    indices per block so each block decompresses once.
    """

    def __init__(self, reader: CompressedColumnReader, cache: BlockCache | None = None) -> None:
        self.reader = reader
        self.cache = cache or default_block_cache()
        self.dtype = reader.dtype
        self.size = reader.n_rows
        self.block_rows = reader.block_rows

    @classmethod
    def open(cls, path: str, cache: BlockCache | None = None) -> "PagedArray":
        return cls(CompressedColumnReader(path), cache=cache)

    # ------------------------------------------------------------------
    def _read(self, start: int, stop: int) -> np.ndarray:
        first = int(start) // self.block_rows
        last = (int(stop) - 1) // self.block_rows
        if first == last:
            block = self.cache.get(self.reader, first)
            base = first * self.block_rows
            view = block[start - base : stop - base]
            return view
        out = np.empty(stop - start, dtype=self.dtype)
        cursor = start
        for block_id in range(first, last + 1):
            base = block_id * self.block_rows
            block = self.cache.get(self.reader, block_id)
            lo = max(cursor, base) - base
            hi = min(stop, base + block.size) - base
            out[cursor - start : cursor - start + (hi - lo)] = block[lo:hi]
            cursor += hi - lo
        out.setflags(write=False)
        return out

    def take(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.empty(0, dtype=self.dtype)
        if indices.min() < 0 or indices.max() >= self.size:
            raise IndexError("gather index out of range")
        out = np.empty(indices.size, dtype=self.dtype)
        blocks = indices // self.block_rows
        order = np.argsort(blocks, kind="stable")
        sorted_blocks = blocks[order]
        boundaries = np.flatnonzero(np.diff(sorted_blocks)) + 1
        for group in np.split(np.arange(indices.size)[order], boundaries):
            block_id = int(blocks[group[0]])
            block = self.cache.get(self.reader, block_id)
            out[group] = block[indices[group] - block_id * self.block_rows]
        return out

    # ------------------------------------------------------------------
    def min(self):
        return self.reader.min()

    def max(self):
        return self.reader.max()

    def block_minmax(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-block ``(mins, maxs)`` from the directory (zone-map food)."""
        return self.reader.block_minmax()

    def compressed_bytes(self) -> int:
        return self.reader.compressed_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PagedArray(rows={self.size}, dtype={self.dtype.name}, "
            f"blocks={self.reader.n_blocks}, block_rows={self.block_rows})"
        )
