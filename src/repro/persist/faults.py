"""Fault-point hooks for crash-injection tests.

The durability guarantees of the WAL/checkpoint protocol are only worth
anything if they hold when the process dies *between* two steps of the
protocol.  The crash-injection suite runs a writer in a subprocess with
``REPRO_CRASH_POINT`` set to one of the named points below; when execution
reaches that point the process kills itself with ``SIGKILL`` — no ``atexit``
handlers, no buffered flushes, the closest a test can get to pulling the
plug.

Production runs never set the variable, so the hook is a dictionary lookup
per call site — noise-level overhead on paths that also fsync.
"""

from __future__ import annotations

import os
import signal

#: Environment variable naming the fault point to die at.
CRASH_ENV = "REPRO_CRASH_POINT"

#: The named fault points, for discoverability from tests.
KNOWN_POINTS = (
    "wal-after-append",          # op logged, no commit marker yet
    "wal-before-commit-fsync",   # commit marker written but not yet durable
    "wal-after-commit",          # commit marker durable
    "checkpoint-before-publish", # checkpoint written to temp, not yet renamed
    "checkpoint-after-publish",  # checkpoint renamed, WAL not yet reset
)


def crash_point(name: str) -> None:
    """Die with ``SIGKILL`` iff ``REPRO_CRASH_POINT`` names this point."""
    if os.environ.get(CRASH_ENV) == name:
        os.kill(os.getpid(), signal.SIGKILL)
