"""Durability subsystem: WAL-backed writes, mmap column storage, checkpoints.

The in-memory engine amortizes index construction into queries; this package
makes that investment *survive restarts*:

* :mod:`repro.persist.wal` — a CRC-framed write-ahead log recording every
  delta-store operation with per-op ids and fsynced commit markers;
* :mod:`repro.persist.pager` — memory-mapped on-disk column base arrays
  (zero-copy :class:`~repro.storage.column.ColumnSnapshot` views over the
  file) and the pickle-free state codec shared by the WAL and checkpoints;
* :mod:`repro.persist.checkpoint` — atomic checkpoints serializing each
  index's lifecycle phase, budget-controller state and family-specific
  structures (``state_dict()``/``load_state()`` on every index family), so
  a restarted index resumes mid-convergence instead of falling back to RAW;
* :mod:`repro.persist.database` — the :class:`~repro.persist.database.Database`
  open/close/recover API wrapping :class:`~repro.engine.session.IndexingSession`,
  with recovery replaying the committed WAL tail into the delta stores and
  routing post-restart merge work through the existing ``MERGE`` stage.

On-disk format notes live in ``persist/FORMAT.md``.
"""

from repro.persist.checkpoint import CheckpointManager
from repro.persist.database import Database
from repro.persist.pager import ColumnPager, decode_state, encode_state
from repro.persist.wal import WalRecord, WriteAheadLog

__all__ = [
    "CheckpointManager",
    "ColumnPager",
    "Database",
    "WalRecord",
    "WriteAheadLog",
    "decode_state",
    "encode_state",
]
