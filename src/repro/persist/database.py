"""The ``Database`` open/close/recover API over a persisted directory.

A :class:`Database` wraps an :class:`~repro.engine.session.IndexingSession`
with the durability subsystem::

    db = Database.create("/data/stars", {"ra": ra_values})
    db.create_index("ra", method="PQ", budget_fraction=0.2)
    db.insert({"ra": [123, 456]})
    db.commit()                  # WAL commit marker + fsync: now durable
    db.checkpoint()              # index state + delta stores -> checkpoint.bin
    db.close()

    db = Database.open("/data/stars")   # after restart / crash
    db.between("ra", 100, 200)          # warm index, exact answers

Layout of a database directory::

    catalog.json       table schema + per-index method/policy registration
    columns/<c>.col    mmap'd read-optimized base arrays (immutable)
    wal.log            CRC-framed redo log of delta-store operations
    checkpoint.bin     atomic snapshot of delta stores + index state

Recovery (:meth:`Database.open`) loads the catalog, memory-maps the column
bases, restores the delta stores from the newest checkpoint, replays the
committed WAL tail (records with ``op_id`` beyond the checkpoint watermark)
on top, and restores every checkpointed index mid-convergence via
``load_state`` — a restored progressive index resumes in its pre-restart
phase, never RAW, and any writes it has not folded yet flow through the
existing delta overlay / ``MERGE``-stage machinery on the next queries.
Indexes registered in the catalog but missing from the checkpoint (created
after the last checkpoint) are re-created fresh with their registered
budget policy.

Durability contract: an operation is durable iff a :meth:`commit` returned
after it.  Uncommitted operations — including a torn WAL tail from a crash
mid-append — are discarded by recovery.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.baselines.full_index import FullIndex
from repro.baselines.full_scan import FullScan
from repro.core.calibration import CostConstants
from repro.core.index import BaseIndex
from repro.core.policy import policy_from_state, policy_state_dict
from repro.engine.registry import ALGORITHMS
from repro.engine.session import IndexingSession, _json_safe
from repro.errors import PersistenceError, RecoveryError
from repro.extensions.column_imprints import ProgressiveColumnImprints
from repro.extensions.progressive_hash import ProgressiveHashIndex
from repro.persist.checkpoint import CheckpointManager
from repro.persist.pager import ColumnPager, fsync_directory
from repro.persist.wal import WriteAheadLog
from repro.storage.column import Column
from repro.storage.membudget import MemoryBudget
from repro.storage.table import Table

#: Catalog format stamp.
CATALOG_FORMAT = 1

CATALOG_FILE = "catalog.json"
WAL_FILE = "wal.log"
COLUMNS_DIR = "columns"
#: Scratch-spill directory used when the database runs under a memory budget.
SCRATCH_DIR = "scratch"

#: Every restorable algorithm, including the future-work extensions that the
#: registry does not expose under a paper acronym.
RESTORABLE_ALGORITHMS: Dict[str, type] = {
    **ALGORITHMS,
    "PHASH": ProgressiveHashIndex,
    "PIMP": ProgressiveColumnImprints,
    # FullScan registers under "FS" already; keep explicit aliases stable.
    "FS": FullScan,
    "FI": FullIndex,
}


LOCK_FILE = "LOCK"

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


def _acquire_directory_lock(directory: str):
    """Take the database's exclusive advisory lock (or raise).

    ``Database.open`` is *destructive* — recovery truncates uncommitted WAL
    frames — so two live handles (e.g. a writer plus ``python -m repro
    inspect``) must never share a directory: the second opener could cut
    frames the first is about to cover with a commit marker.  Returns the
    held lock file handle (kept open for the handle's lifetime), or ``None``
    where advisory locks are unavailable.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        return None
    handle = open(os.path.join(directory, LOCK_FILE), "a+")
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        handle.close()
        raise PersistenceError(
            f"database {directory!r} is locked by another process; close the "
            "other handle first (recovery is destructive, so concurrent "
            "opens are refused)"
        ) from None
    return handle


def _write_json_atomic(path: str, payload: dict) -> None:
    temp = path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    fsync_directory(os.path.dirname(path) or ".")


class Database:
    """A durable, recoverable progressive-indexing database.

    Instances are built through :meth:`create` / :meth:`open`; the
    constructor wires already-recovered components together.
    """

    def __init__(
        self,
        directory: str,
        table: Table,
        session: IndexingSession,
        wal: WriteAheadLog,
        catalog: dict,
        checkpoints: CheckpointManager,
        lock=None,
    ) -> None:
        self.directory = str(directory)
        self._table = table
        self._session = session
        self._wal = wal
        self._catalog = catalog
        self._checkpoints = checkpoints
        self._lock = lock
        self._closed = False

    def _release_lock(self) -> None:
        if self._lock is not None:
            self._lock.close()
            self._lock = None

    # ------------------------------------------------------------------
    # Construction / recovery
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        columns: Mapping[str, object],
        name: str = "table",
        constants: CostConstants | None = None,
        memory_budget=None,
        compress: bool = False,
        block_rows: int | None = None,
    ) -> "Database":
        """Initialise a new database directory from in-memory columns.

        The column data becomes the immutable on-disk base arrays; the
        returned database reads them through memory maps.

        ``compress=True`` stores the bases in the RPCOL2 block-compressed
        format (frame-of-reference / dictionary blocks with per-block
        min/max headers); reads then stream through the shared block cache.
        ``memory_budget`` (bytes or a
        :class:`~repro.storage.membudget.MemoryBudget`) caps what the
        database holds resident — construction scratch, delta logs and
        overlay buffers spill into the directory's ``scratch/`` folder past
        the cap, so datasets far larger than the budget index to
        convergence with exact answers.
        """
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(os.path.join(directory, CATALOG_FILE)):
            raise PersistenceError(
                f"directory {directory!r} already holds a database; use Database.open()"
            )
        pager = ColumnPager(os.path.join(directory, COLUMNS_DIR))
        catalog_columns = []
        for column_name, values in columns.items():
            # Normalise through Column so dtype coercion matches the engine.
            column = values if isinstance(values, Column) else Column(values, name=column_name)
            if column.delta is not None and column.delta.version > 0:
                raise PersistenceError(
                    f"column {column_name!r} carries delta-store writes; "
                    "Database.create() persists base data only"
                )
            pager.store(
                column_name,
                np.asarray(column.base_data),
                compress=bool(compress),
                block_rows=block_rows,
            )
            catalog_columns.append(
                {"name": str(column_name), "dtype": column.dtype.name, "rows": len(column)}
            )
        catalog = {
            "format": CATALOG_FORMAT,
            "table": str(name),
            "columns": catalog_columns,
            "indexes": {},
        }
        _write_json_atomic(os.path.join(directory, CATALOG_FILE), catalog)
        return cls._assemble(directory, catalog, constants, memory_budget)

    @classmethod
    def open(
        cls,
        directory: str,
        constants: CostConstants | None = None,
        memory_budget=None,
    ) -> "Database":
        """Open an existing database, recovering to the last durable state."""
        directory = str(directory)
        catalog_path = os.path.join(directory, CATALOG_FILE)
        if not os.path.exists(catalog_path):
            raise PersistenceError(f"directory {directory!r} holds no database catalog")
        with open(catalog_path, "r", encoding="utf-8") as handle:
            catalog = json.load(handle)
        if int(catalog.get("format", 0)) != CATALOG_FORMAT:
            raise PersistenceError(
                f"catalog format {catalog.get('format')!r} is not supported"
            )
        return cls._assemble(directory, catalog, constants, memory_budget)

    @classmethod
    def _assemble(
        cls,
        directory: str,
        catalog: dict,
        constants: CostConstants | None,
        memory_budget=None,
    ) -> "Database":
        # Lock before any recovery step: WAL open truncates uncommitted
        # frames, which must never race a live writer's handle.
        lock = _acquire_directory_lock(directory)
        try:
            return cls._assemble_locked(directory, catalog, constants, lock, memory_budget)
        except BaseException:
            if lock is not None:
                lock.close()
            raise

    @classmethod
    def _assemble_locked(
        cls,
        directory: str,
        catalog: dict,
        constants: CostConstants | None,
        lock,
        memory_budget=None,
    ) -> "Database":
        budget = MemoryBudget.coerce(
            memory_budget, spill_dir=os.path.join(directory, SCRATCH_DIR)
        )
        if budget is not None and budget.spill_dir is None:
            budget.spill_dir = os.path.join(directory, SCRATCH_DIR)
        pager = ColumnPager(os.path.join(directory, COLUMNS_DIR))
        cache = budget.block_cache if budget is not None else None
        table_columns: Dict[str, Column] = {}
        for spec in catalog["columns"]:
            column_name = str(spec["name"])
            array = pager.load(column_name, cache=cache)
            if array.size != int(spec["rows"]) or array.dtype.name != spec["dtype"]:
                raise RecoveryError(
                    f"column file for {column_name!r} does not match the catalog "
                    f"({array.size} x {array.dtype.name} vs "
                    f"{spec['rows']} x {spec['dtype']})"
                )
            table_columns[column_name] = Column(
                array, name=column_name, memory_budget=budget
            )
        table = Table(table_columns, name=catalog.get("table", "table"))

        checkpoints = CheckpointManager(directory)
        checkpoint = checkpoints.load()
        checkpoint_op = -1
        if checkpoint is not None:
            checkpoint_op = int(checkpoint["op_id"])
            for column_name, delta_state in checkpoint.get("columns", {}).items():
                if delta_state is not None:
                    table.column(column_name).restore_delta(delta_state)

        wal, committed = WriteAheadLog.open(os.path.join(directory, WAL_FILE))
        for record in committed:
            if record.op_id <= checkpoint_op:
                continue  # covered by the checkpoint (crash before WAL reset)
            if record.kind == "insert":
                table.insert_rows(record.columns)
            else:
                table.delete_rows(record.rids)

        session = IndexingSession(table, constants=constants, memory_budget=budget)
        index_states = {} if checkpoint is None else checkpoint.get("indexes", {})
        for column_name, entry in catalog.get("indexes", {}).items():
            state = index_states.get(column_name)
            column = table.column(column_name)
            if state is not None:
                index = cls._restore_index(column, state, constants)
            else:
                index = cls._fresh_index(column, entry, constants)
            session.attach_index(column_name, index)
        return cls(directory, table, session, wal, catalog, checkpoints, lock=lock)

    @staticmethod
    def _restore_index(
        column: Column, state: dict, constants: CostConstants | None
    ) -> BaseIndex:
        algorithm = str(state.get("algorithm", ""))
        index_class = RESTORABLE_ALGORITHMS.get(algorithm.upper())
        if index_class is None:
            raise RecoveryError(f"checkpoint names unknown algorithm {algorithm!r}")
        index = index_class(
            column, budget=policy_from_state(state["policy"]), constants=constants
        )
        index.load_state(state)
        return index

    @staticmethod
    def _fresh_index(
        column: Column, entry: dict, constants: CostConstants | None
    ) -> BaseIndex:
        algorithm = str(entry.get("method", ""))
        index_class = RESTORABLE_ALGORITHMS.get(algorithm.upper())
        if index_class is None:
            raise RecoveryError(f"catalog names unknown algorithm {algorithm!r}")
        return index_class(
            column, budget=policy_from_state(entry["policy"]), constants=constants
        )

    # ------------------------------------------------------------------
    @property
    def session(self) -> IndexingSession:
        """The wrapped indexing session (reads are safe to issue directly)."""
        return self._session

    @property
    def table(self) -> Table:
        """The recovered table."""
        return self._table

    @property
    def wal(self) -> WriteAheadLog:
        """The write-ahead log (exposed for inspection and tests)."""
        return self._wal

    @property
    def memory_budget(self):
        """The active :class:`~repro.storage.membudget.MemoryBudget` (or ``None``)."""
        return self._session.memory_budget

    def _require_open(self) -> None:
        if self._closed:
            raise PersistenceError("this Database handle has been closed")

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(self, column_name: str, **kwargs) -> BaseIndex:
        """Create an index and register it in the catalog.

        Accepts the same arguments as
        :meth:`~repro.engine.session.IndexingSession.create_index`.  The
        catalog records the resolved algorithm and budget policy so a
        restart re-creates the index even before its first checkpoint
        (fresh — in its RAW state; a checkpoint makes it warm).
        """
        self._require_open()
        index = self._session.create_index(column_name, **kwargs)
        self._catalog.setdefault("indexes", {})[str(column_name)] = {
            "method": index.name,
            "policy": policy_state_dict(index.budget),
        }
        _write_json_atomic(os.path.join(self.directory, CATALOG_FILE), self._catalog)
        return index

    def drop_index(self, column_name: str) -> None:
        """Drop an index and unregister it from the catalog."""
        self._require_open()
        self._session.drop_index(column_name)
        if self._catalog.get("indexes", {}).pop(str(column_name), None) is not None:
            _write_json_atomic(os.path.join(self.directory, CATALOG_FILE), self._catalog)

    def index_for(self, column_name: str) -> BaseIndex:
        """The index on ``column_name`` (raises if none exists)."""
        return self._session.index_for(column_name)

    # ------------------------------------------------------------------
    # Concurrent serving (see repro.engine.shared / repro.serve)
    # ------------------------------------------------------------------
    def shared_engine(self):
        """The :class:`~repro.engine.shared.SharedEngine` over this database.

        Created on first use and cached: every reader view and the serving
        layer must share ONE engine (one write gate, one scheduler, one
        committed-version map) per open database.  The exclusive directory
        flock taken by :meth:`open`/:meth:`create` already guarantees no
        *other process* is attached, so in-process concurrent readers under
        this engine are the only readers, period.
        """
        self._require_open()
        engine = getattr(self, "_engine", None)
        if engine is None:
            from repro.engine.shared import SharedEngine

            engine = SharedEngine.for_database(self)
            self._engine = engine
        return engine

    def reader_view(self, connection_class: str = "interactive"):
        """A new MVCC reader pinned at the current committed versions."""
        return self.shared_engine().reader(connection_class)

    def serve(self, address=None, **kwargs):
        """Build (without starting) a query server over this database."""
        from repro.serve.server import QueryServer

        return QueryServer(engine=self.shared_engine(), address=address, **kwargs)

    # ------------------------------------------------------------------
    # Writes (logged ahead, applied to the delta stores, durable on commit)
    # ------------------------------------------------------------------
    def insert(self, values, column_name: Optional[str] = None) -> np.ndarray:
        """Insert rows; returns their stable row ids (durable after commit)."""
        self._require_open()
        if isinstance(values, Mapping):
            arrays = {
                str(name): np.atleast_1d(np.asarray(item)) for name, item in values.items()
            }
        else:
            target = column_name or self._session._single_column_for_write("insert")
            self._table.column(target)  # raises UnknownColumnError when absent
            arrays = {str(target): np.atleast_1d(np.asarray(values))}
        return self._logged(
            lambda: self._wal.append_insert(arrays),
            lambda: self._table.insert_rows(arrays, handle=self._session),
        )

    def delete(self, column_name: str, low, high=None) -> int:
        """Delete every row whose ``column_name`` value lies in ``[low, high]``."""
        self._require_open()
        if high is None:
            high = low
        rids = self._table.column(column_name).rids_where(low, high)
        if rids.size == 0:
            return 0
        self._logged(
            lambda: self._wal.append_delete(rids),
            lambda: self._table.delete_rows(rids, handle=self._session),
        )
        return int(rids.size)

    def update(self, column_name: str, low, high, value) -> int:
        """Set ``column_name`` to ``value`` for every row in ``[low, high]``.

        Logged and applied as the engine's native insert + delete pair
        (:meth:`~repro.storage.table.Table.update_plan`), so replay
        reproduces the exact same stable-rid assignment.  Each half is a
        separate logged step: the WAL always equals the applied history,
        even if the second half fails after the first was applied.
        """
        self._require_open()
        rids, replacements = self._table.update_plan(column_name, low, high, value)
        if rids.size == 0:
            return 0
        self._logged(
            lambda: self._wal.append_insert(replacements),
            lambda: self._table.insert_rows(replacements, handle=self._session),
        )
        self._logged(
            lambda: self._wal.append_delete(rids),
            lambda: self._table.delete_rows(rids, handle=self._session),
        )
        return int(rids.size)

    def _logged(self, log, apply):
        """Append to the WAL, then apply; roll the log back if apply fails.

        The rollback keeps the log exactly equal to the applied history, so
        a later commit marker can never make a rejected operation durable.
        """
        handle = self._wal._handle
        offset = handle.tell()
        op_id = self._wal.next_op_id
        pending = self._wal.pending_ops
        log()
        try:
            return apply()
        except Exception:
            handle.flush()
            handle.truncate(offset)
            self._wal.next_op_id = op_id
            self._wal.pending_ops = pending
            raise

    def commit(self) -> None:
        """Make every operation since the last commit durable (fsync)."""
        self._require_open()
        self._wal.commit()
        self._session.commit_writes()

    # ------------------------------------------------------------------
    # Reads (delegate to the session; they advance index construction)
    # ------------------------------------------------------------------
    def between(self, column_name: str, low, high):
        """``SELECT SUM(col), COUNT(*) WHERE col BETWEEN low AND high``."""
        self._require_open()
        return self._session.between(column_name, low, high)

    def equals(self, column_name: str, value):
        """Point-query variant of :meth:`between`."""
        self._require_open()
        return self._session.equals(column_name, value)

    def execute_batch(self, queries, column_name: Optional[str] = None):
        """Batched range queries (see ``IndexingSession.execute_batch``)."""
        self._require_open()
        return self._session.execute_batch(queries, column_name=column_name)

    def where(self, predicates: Mapping) :
        """Multi-column conjunctions (see ``IndexingSession.where``)."""
        self._require_open()
        return self._session.where(predicates)

    # ------------------------------------------------------------------
    # Checkpoint / close
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Publish a checkpoint and truncate the WAL.

        Pending uncommitted writes are committed first — a checkpoint is by
        definition a durable point.  After the atomic publish the WAL is
        reset; a crash between the two is safe (recovery skips WAL records
        at or below the checkpoint's ``op_id`` watermark).
        """
        self._require_open()
        if self._wal.pending_ops:
            self.commit()
        columns = {}
        for column_name in self._table.column_names:
            delta = self._table.column(column_name).delta
            columns[str(column_name)] = None if delta is None else delta.state_dict()
        indexes = {
            column_name: index.state_dict()
            for column_name, index in self._session.indexes().items()
        }
        self._checkpoints.write(
            {
                "op_id": int(self._wal.next_op_id - 1),
                "columns": columns,
                "indexes": indexes,
            }
        )
        self._wal.reset()

    def close(self, checkpoint: bool = True) -> None:
        """Gracefully close the database (checkpointing by default).

        ``checkpoint=True`` is a full graceful shutdown: pending writes are
        committed (a checkpoint is a durable point by definition) and the
        index state published.  ``checkpoint=False`` closes without
        promoting anything: operations never covered by a ``commit()`` stay
        uncommitted and the next recovery discards them — the documented
        durable-iff-committed contract holds on every path.
        """
        if self._closed:
            return
        if checkpoint:
            self.checkpoint()
        self._wal.close()
        self._release_lock()
        self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An exception aborts the logical transaction: skip the checkpoint
        # and leave uncommitted operations undurable.  Work that was
        # commit()ed is already on disk via the WAL.
        self.close(checkpoint=exc_type is None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Session status plus durability counters (JSON-serializable)."""
        self._require_open()
        checkpoint = self._checkpoints.summary()
        return _json_safe(
            {
                "directory": self.directory,
                "table": self._catalog.get("table"),
                "rows": len(self._table),
                "columns": {
                    name: {
                        "dtype": self._table.column(name).dtype.name,
                        "base_rows": self._table.column(name).base_size,
                        "visible_rows": len(self._table.column(name)),
                        "mapped": self._table.column(name).is_mapped,
                        "write_version": self._table.column(name).version,
                    }
                    for name in self._table.column_names
                },
                "wal": {
                    "path": os.path.join(self.directory, WAL_FILE),
                    "size_bytes": self._wal.size_bytes(),
                    "next_op_id": self._wal.next_op_id,
                    "pending_ops": self._wal.pending_ops,
                },
                "checkpoint": checkpoint,
                "memory": self._session.memory_status(),
                "indexes": self._session.status(),
            }
        )

    def stats(self) -> dict:
        """One-call telemetry bundle: :meth:`status` plus the metrics registry.

        ``status`` describes the database's *shape* (tables, indexes,
        durability state); ``stats`` adds the live observability snapshot —
        every counter, gauge and histogram currently registered in
        :mod:`repro.obs` — so a caller can poll a single method for both.
        """
        from repro import obs

        report = self.status()
        report["metrics"] = obs.metrics().snapshot()
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Database(directory={self.directory!r}, rows={len(self._table)})"
