"""CRC-framed write-ahead log of delta-store operations.

Every write the :class:`~repro.persist.database.Database` applies to its
delta stores is appended here *first*.  A record is one self-delimiting
frame::

    b"WR" | u32 payload_len | u32 crc32(payload) | payload

where the payload is an :func:`~repro.persist.pager.encode_state` blob
holding the record kind, a global monotone ``op_id``, and the operation's
arrays (inserted values per column, or deleted rids).  Three record kinds
exist:

``insert``
    ``{"columns": {name: values}}`` — one append covering every column of
    the table (row-aligned, exactly what ``Table.insert_rows`` applies).
``delete``
    ``{"rids": array}`` — stable row ids tombstoned in every column.
``commit``
    A bare marker.  :meth:`WriteAheadLog.commit` writes it and **fsyncs**;
    durability is exactly the set of operations at or before the last
    durable commit marker.

Recovery (:meth:`WriteAheadLog.open`) scans frames until the file ends or a
frame fails its length/CRC check — a torn tail from a crash mid-append —
truncates the file back to the last valid frame, and returns only the
operations covered by a commit marker.  Uncommitted tail operations are
discarded, which is the contract the crash-injection suite enforces.

Checkpoints record the ``op_id`` high-water mark they cover;
:meth:`WriteAheadLog.reset` then atomically replaces the log with a fresh
one so replay after the *next* crash starts from the checkpoint.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import PersistenceError
from repro.persist.faults import crash_point
from repro.persist.pager import decode_state, encode_state, fsync_directory, fsync_file

_FRAME_MAGIC = b"WR"
_FRAME_HEADER = struct.Struct("<2sII")

#: Record kinds a WAL may contain.
_KINDS = ("header", "insert", "delete", "commit")


@dataclass
class WalRecord:
    """One decoded WAL record."""

    kind: str
    op_id: int
    columns: Optional[Dict[str, np.ndarray]] = None
    rids: Optional[np.ndarray] = None


def _encode_record(record: WalRecord) -> bytes:
    state = {"kind": record.kind, "op_id": int(record.op_id)}
    if record.columns is not None:
        state["columns"] = {name: np.asarray(values) for name, values in record.columns.items()}
    if record.rids is not None:
        state["rids"] = np.asarray(record.rids, dtype=np.int64)
    payload = encode_state(state)
    return _FRAME_HEADER.pack(_FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> WalRecord:
    state = decode_state(payload)
    kind = state.get("kind")
    if kind not in _KINDS:
        raise PersistenceError(f"WAL record has unknown kind {kind!r}")
    return WalRecord(
        kind=str(kind),
        op_id=int(state.get("op_id", 0)),
        columns=state.get("columns"),
        rids=state.get("rids"),
    )


def _contains_valid_frame(data: bytes, start: int) -> bool:
    """Whether a complete, CRC-valid frame exists at or after ``start``.

    Distinguishes mid-file corruption (valid frames survive beyond the
    damage) from a genuine torn tail (nothing parseable follows).  Torn
    tails are at most one partial frame long, so the scan is short in the
    crash case; it only walks far when there really is data worth saving.
    """
    position = data.find(_FRAME_MAGIC, start + 1)
    while position != -1:
        if position + _FRAME_HEADER.size <= len(data):
            _, length, crc = _FRAME_HEADER.unpack_from(data, position)
            begin = position + _FRAME_HEADER.size
            end = begin + length
            if end <= len(data) and zlib.crc32(data[begin:end]) == crc:
                return True
        position = data.find(_FRAME_MAGIC, position + 1)
    return False


class WriteAheadLog:
    """Append-only log with fsync-on-commit durability."""

    def __init__(self, path: str, next_op_id: int = 1, _handle=None) -> None:
        self.path = str(path)
        self.next_op_id = int(next_op_id)
        if _handle is None:
            _handle = open(self.path, "ab")
            if _handle.tell() == 0:
                _handle.write(_encode_record(WalRecord(kind="header", op_id=self.next_op_id - 1)))
                fsync_file(_handle)
        self._handle = _handle
        #: Number of appended-but-uncommitted operations.
        self.pending_ops = 0
        from repro import obs

        registry = obs.metrics()
        self._obs_fsync_seconds = registry.histogram(
            "wal.fsync.seconds", help="Commit-marker fsync latency"
        )
        self._obs_commits = registry.counter(
            "wal.commits", help="WAL commit markers written"
        )
        self._obs_appends = registry.counter(
            "wal.appends", help="Operations appended to the WAL"
        )
        registry.register_pull("wal.size.bytes", self,
                               lambda w: w.size_bytes(), kind="gauge",
                               help="Current WAL file size")

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str) -> Tuple["WriteAheadLog", List[WalRecord]]:
        """Open (or create) the log at ``path`` and replay its frames.

        Returns the log positioned for appending plus the list of
        **committed** operations in order.  A torn tail (truncated frame or
        CRC mismatch at the very end of the file) is cut off; corruption
        *before* valid frames raises :class:`~repro.errors.PersistenceError`.
        """
        records: List[WalRecord] = []
        frame_ends: List[int] = []
        durable_end = 0
        if os.path.exists(path):
            with open(path, "rb") as handle:
                data = handle.read()
            offset = 0
            while offset < len(data):
                if offset + _FRAME_HEADER.size > len(data):
                    break  # torn frame header
                magic, length, crc = _FRAME_HEADER.unpack_from(data, offset)
                if magic != _FRAME_MAGIC:
                    break  # garbage tail
                start = offset + _FRAME_HEADER.size
                end = start + length
                if end > len(data):
                    break  # torn payload
                payload = data[start:end]
                if zlib.crc32(payload) != crc:
                    break  # torn / corrupted frame
                records.append(_decode_payload(payload))
                frame_ends.append(end)
                offset = end
            if offset < len(data) and _contains_valid_frame(data, offset):
                # A complete, CRC-valid frame exists *beyond* the bad bytes:
                # this is mid-file storage corruption, not the torn tail of
                # a crash mid-append.  Truncating here would silently drop
                # committed history — report it instead.
                raise PersistenceError(
                    f"WAL {path!r} is corrupted at byte {offset} with valid "
                    "frames beyond the damage; refusing to truncate "
                    "committed history"
                )
        next_op_id = 1
        last_commit = -1
        for number, record in enumerate(records):
            next_op_id = max(next_op_id, record.op_id + 1)
            if record.kind == "commit":
                last_commit = number
                durable_end = frame_ends[number]
            elif record.kind == "header":
                durable_end = frame_ends[number]
        if os.path.exists(path) and durable_end < os.path.getsize(path):
            # Cut the log back to the last commit marker, not just the last
            # parseable frame: recovery discards the uncommitted tail from
            # the delta stores, so leaving its frames in the file would let
            # a *later* commit marker retroactively resurrect them on the
            # next recovery.
            with open(path, "r+b") as handle:
                handle.truncate(durable_end)
                fsync_file(handle)
        committed = [
            record
            for record in records[: last_commit + 1]
            if record.kind in ("insert", "delete")
        ]
        handle = open(path, "ab")
        wal = cls(path, next_op_id=next_op_id, _handle=handle)
        return wal, committed

    # ------------------------------------------------------------------
    def append_insert(self, columns: Dict[str, np.ndarray]) -> int:
        """Log a row-aligned insert; returns its ``op_id``."""
        return self._append(WalRecord(kind="insert", op_id=self.next_op_id, columns=columns))

    def append_delete(self, rids: np.ndarray) -> int:
        """Log a delete of stable row ids; returns its ``op_id``."""
        return self._append(WalRecord(kind="delete", op_id=self.next_op_id, rids=rids))

    def _append(self, record: WalRecord) -> int:
        self._handle.write(_encode_record(record))
        self._handle.flush()
        self.next_op_id = record.op_id + 1
        self.pending_ops += 1
        self._obs_appends.inc()
        crash_point("wal-after-append")
        return record.op_id

    def commit(self) -> int:
        """Write a commit marker covering every appended op and fsync.

        Returns the ``op_id`` of the marker.  Only after this call returns
        are the preceding operations durable.
        """
        marker = WalRecord(kind="commit", op_id=self.next_op_id)
        self._handle.write(_encode_record(marker))
        self._handle.flush()
        crash_point("wal-before-commit-fsync")
        fsync_started = time.perf_counter()
        fsync_file(self._handle)
        self._obs_fsync_seconds.observe(time.perf_counter() - fsync_started)
        self._obs_commits.inc()
        self.next_op_id = marker.op_id + 1
        self.pending_ops = 0
        crash_point("wal-after-commit")
        return marker.op_id

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Atomically replace the log with a fresh one (post-checkpoint).

        The new log's header carries the current ``next_op_id`` so op ids
        stay globally monotone across truncations.
        """
        self._handle.close()
        temp = self.path + ".new"
        with open(temp, "wb") as handle:
            handle.write(_encode_record(WalRecord(kind="header", op_id=self.next_op_id - 1)))
            fsync_file(handle)
        os.replace(temp, self.path)
        fsync_directory(os.path.dirname(self.path) or ".")
        self._handle = open(self.path, "ab")
        self.pending_ops = 0

    def size_bytes(self) -> int:
        """Current size of the log file."""
        self._handle.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        """Flush and close the underlying file handle."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"WriteAheadLog(path={self.path!r}, next_op_id={self.next_op_id})"
