"""Atomic, incremental checkpoints of delta stores and index state.

A checkpoint is a :func:`~repro.persist.pager.encode_state` **manifest**
(CRC-protected) holding:

* the ``op_id`` high-water mark of the WAL operations it covers — recovery
  replays only the committed WAL records *after* it, so a crash between
  "checkpoint published" and "WAL reset" never double-applies a write;
* every column's delta-store state (insert/tombstone logs, seq counters);
* every index's full ``state_dict()``: lifecycle phase, budget-policy
  dynamics, delta-overlay buffers and the family-specific structures.

Checkpoints are **leveled/incremental**: each per-index and per-column
subtree is encoded into its own *part* file under ``checkpoint_parts/``,
named by its content (CRC32 + length), and the manifest references parts by
file name.  A subtree whose state did not change between two checkpoints
hashes to the same part name, so its bytes are **not rewritten** — a
converged index or an idle column costs one ``stat()`` per checkpoint, not
a multi-megabyte rewrite.  Parts no longer referenced by the published
manifest are garbage-collected after publication.

Publication is crash-atomic: parts are written and fsynced first (orphaned
parts from a crash are harmless — content addressing reuses or collects
them later), then the manifest is written to a temp file, fsynced, and
``os.replace``d over ``checkpoint.bin`` (plus a directory fsync).  A reader
therefore sees either the previous checkpoint or the new one, never a torn
mixture — which the crash-injection suite exercises at the
``checkpoint-before-publish`` / ``checkpoint-after-publish`` fault points.

Monolithic v1 checkpoints (every subtree inline in one blob) load
unchanged; ``write`` always publishes the incremental layout.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import Optional

from repro.errors import PersistenceError
from repro.persist.faults import crash_point
from repro.persist.pager import (
    decode_state,
    encode_state,
    fsync_directory,
    fsync_file,
    peek_state_tree,
)

CHECKPOINT_MAGIC = b"RPCKPT1\x00"
_HEADER = struct.Struct("<8sII")

#: File name of the published checkpoint inside a database directory.
CHECKPOINT_FILE = "checkpoint.bin"

#: Directory (inside the database directory) holding content-addressed
#: checkpoint part files.
CHECKPOINT_PARTS_DIR = "checkpoint_parts"

#: Manifest key marking a subtree that lives in a part file.
PART_KEY = "__checkpoint_part__"

#: Top-level state keys whose per-name subtrees are split into parts.
_PARTED_SECTIONS = ("columns", "indexes")


def _safe_part_name(name: str) -> str:
    """A filesystem-safe rendering of an index/column name."""
    return "".join(
        ch if ch.isalnum() or ch in "-_" else f"%{ord(ch):02x}" for ch in str(name)
    )[:80]


class CheckpointManager:
    """Writes and reads the single published checkpoint of one database."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self.path = os.path.join(self.directory, CHECKPOINT_FILE)
        self.parts_directory = os.path.join(self.directory, CHECKPOINT_PARTS_DIR)
        #: Statistics of the most recent :meth:`write` on this manager:
        #: how many parts the manifest references, how many were actually
        #: (re)written vs reused unchanged, and the bytes written.
        self.last_write_stats: dict = {}

    # ------------------------------------------------------------------
    def _write_part(self, kind: str, name: str, subtree) -> dict:
        """Store ``subtree`` as a content-addressed part; return its ref.

        The part file name embeds the payload's CRC32 and length, so an
        unchanged subtree maps to an existing file and costs no write.  New
        parts are published atomically (temp + fsync + rename) so a crash
        never leaves a half-written part under a valid name.
        """
        payload = encode_state(subtree)
        crc = zlib.crc32(payload)
        filename = f"{kind}-{_safe_part_name(name)}-{crc:08x}-{len(payload)}.part"
        path = os.path.join(self.parts_directory, filename)
        if not os.path.exists(path):
            os.makedirs(self.parts_directory, exist_ok=True)
            temp = path + ".tmp"
            with open(temp, "wb") as handle:
                handle.write(payload)
                fsync_file(handle)
            os.replace(temp, path)
            self.last_write_stats["parts_written"] += 1
            self.last_write_stats["bytes_written"] += len(payload)
        else:
            self.last_write_stats["parts_reused"] += 1
        return {PART_KEY: filename, "crc32": int(crc), "length": int(len(payload))}

    def _load_part(self, ref: dict):
        """Read, verify and decode one part referenced by the manifest."""
        filename = os.path.basename(str(ref[PART_KEY]))
        path = os.path.join(self.parts_directory, filename)
        if not os.path.exists(path):
            raise PersistenceError(
                f"checkpoint references missing part {filename!r}"
            )
        with open(path, "rb") as handle:
            payload = handle.read()
        if len(payload) != int(ref["length"]) or zlib.crc32(payload) != int(ref["crc32"]):
            raise PersistenceError(f"checkpoint part {filename!r} fails its CRC check")
        return decode_state(payload)

    def write(self, state: dict) -> None:
        """Atomically publish ``state`` as the database's checkpoint.

        ``state`` must carry the ``op_id`` watermark; everything else is the
        caller's (the :class:`~repro.persist.database.Database`'s) contract.
        Per-index and per-column subtrees are stored as content-addressed
        part files — only the ones whose state changed since the previous
        checkpoint are rewritten.
        """
        if "op_id" not in state:
            raise PersistenceError("a checkpoint state must carry its op_id watermark")
        write_started = time.perf_counter()
        self.last_write_stats = {
            "parts_written": 0,
            "parts_reused": 0,
            "bytes_written": 0,
        }
        manifest = dict(state)
        referenced = set()
        wrote_parts = False
        for section in _PARTED_SECTIONS:
            entries = state.get(section)
            if not isinstance(entries, dict):
                continue
            packed = {}
            for name, subtree in entries.items():
                if subtree is None:
                    packed[name] = None
                    continue
                ref = self._write_part(section, name, subtree)
                referenced.add(ref[PART_KEY])
                packed[name] = ref
                wrote_parts = True
            manifest[section] = packed
        if wrote_parts:
            fsync_directory(self.parts_directory)

        payload = encode_state(manifest)
        blob = _HEADER.pack(CHECKPOINT_MAGIC, len(payload), zlib.crc32(payload)) + payload
        temp = self.path + ".tmp"
        with open(temp, "wb") as handle:
            handle.write(blob)
            fsync_file(handle)
        crash_point("checkpoint-before-publish")
        os.replace(temp, self.path)
        fsync_directory(self.directory)
        crash_point("checkpoint-after-publish")
        self._collect_unreferenced(referenced)
        from repro import obs

        registry = obs.metrics()
        registry.histogram(
            "checkpoint.publish.seconds",
            help="End-to-end checkpoint write+publish latency",
        ).observe(time.perf_counter() - write_started)
        registry.counter(
            "checkpoint.publishes", help="Checkpoints atomically published"
        ).inc()
        registry.counter(
            "checkpoint.parts.written", help="Content-addressed parts rewritten"
        ).inc(self.last_write_stats["parts_written"])
        registry.counter(
            "checkpoint.parts.reused", help="Parts reused unchanged"
        ).inc(self.last_write_stats["parts_reused"])

    def _collect_unreferenced(self, referenced: set) -> None:
        """Delete parts the just-published manifest does not reference.

        Runs only after a successful publish, so every file removed here is
        provably unreachable (the superseded manifest is gone).  A crash
        mid-collection merely leaves orphans for the next checkpoint.
        """
        if not os.path.isdir(self.parts_directory):
            return
        for entry in os.listdir(self.parts_directory):
            if entry in referenced:
                continue
            if not (entry.endswith(".part") or entry.endswith(".part.tmp")):
                continue
            try:
                os.remove(os.path.join(self.parts_directory, entry))
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    def load(self) -> Optional[dict]:
        """Return the published checkpoint state, or ``None`` if absent.

        A checkpoint that fails its CRC is an error, not a silent skip — the
        atomic publish protocol means a valid file is either fully present
        or not present at all; a corrupt one indicates storage damage the
        operator must know about.  Part references in an incremental
        manifest are resolved (and CRC-verified) transparently; monolithic
        v1 checkpoints decode as-is.
        """
        if not os.path.exists(self.path):
            return None
        state = decode_state(self._read_payload())
        for section in _PARTED_SECTIONS:
            entries = state.get(section)
            if not isinstance(entries, dict):
                continue
            state[section] = {
                name: self._load_part(value)
                if isinstance(value, dict) and PART_KEY in value
                else value
                for name, value in entries.items()
            }
        return state

    def summary(self) -> Optional[dict]:
        """Cheap introspection: the watermark and index names, no arrays.

        Reads and CRC-checks the file but decodes only the JSON header —
        the array payloads (potentially hundreds of megabytes of index
        structures) are never materialized.  Used by ``Database.status()``
        and the ``inspect`` CLI.
        """
        if not os.path.exists(self.path):
            return None
        payload = self._read_payload()
        tree = peek_state_tree(payload)
        parts = 0
        for section in _PARTED_SECTIONS:
            entries = tree.get(section)
            if isinstance(entries, dict):
                parts += sum(
                    1
                    for value in entries.values()
                    if isinstance(value, dict) and PART_KEY in value
                )
        return {
            "op_id": int(tree["op_id"]),
            "indexes": sorted(tree.get("indexes", {})),
            "parts": parts,
        }

    def _read_payload(self) -> bytes:
        with open(self.path, "rb") as handle:
            data = handle.read()
        if len(data) < _HEADER.size:
            raise PersistenceError(f"checkpoint {self.path!r} is truncated")
        magic, length, crc = _HEADER.unpack_from(data, 0)
        if magic != CHECKPOINT_MAGIC:
            raise PersistenceError(f"checkpoint {self.path!r} has a bad magic prefix")
        payload = data[_HEADER.size : _HEADER.size + length]
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise PersistenceError(f"checkpoint {self.path!r} fails its CRC check")
        return payload

    def remove(self) -> None:
        """Delete the published checkpoint and its parts (used by tests)."""
        if os.path.exists(self.path):
            os.remove(self.path)
        self._collect_unreferenced(set())
