"""Atomic checkpoints of delta stores and progressive-index state.

A checkpoint is one self-contained :func:`~repro.persist.pager.encode_state`
blob (CRC-protected) holding:

* the ``op_id`` high-water mark of the WAL operations it covers — recovery
  replays only the committed WAL records *after* it, so a crash between
  "checkpoint published" and "WAL reset" never double-applies a write;
* every column's delta-store state (insert/tombstone logs, seq counters);
* every index's full ``state_dict()``: lifecycle phase, budget-policy
  dynamics, delta-overlay buffers and the family-specific structures.

Publication is crash-atomic: the blob is written to a temp file, fsynced,
and ``os.replace``d over ``checkpoint.bin`` (plus a directory fsync).  A
reader therefore sees either the previous checkpoint or the new one, never
a torn mixture — which the crash-injection suite exercises at the
``checkpoint-before-publish`` / ``checkpoint-after-publish`` fault points.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Optional

from repro.errors import PersistenceError
from repro.persist.faults import crash_point
from repro.persist.pager import (
    decode_state,
    encode_state,
    fsync_directory,
    fsync_file,
    peek_state_tree,
)

CHECKPOINT_MAGIC = b"RPCKPT1\x00"
_HEADER = struct.Struct("<8sII")

#: File name of the published checkpoint inside a database directory.
CHECKPOINT_FILE = "checkpoint.bin"


class CheckpointManager:
    """Writes and reads the single published checkpoint of one database."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self.path = os.path.join(self.directory, CHECKPOINT_FILE)

    # ------------------------------------------------------------------
    def write(self, state: dict) -> None:
        """Atomically publish ``state`` as the database's checkpoint.

        ``state`` must carry the ``op_id`` watermark; everything else is the
        caller's (the :class:`~repro.persist.database.Database`'s) contract.
        """
        if "op_id" not in state:
            raise PersistenceError("a checkpoint state must carry its op_id watermark")
        payload = encode_state(state)
        blob = _HEADER.pack(CHECKPOINT_MAGIC, len(payload), zlib.crc32(payload)) + payload
        temp = self.path + ".tmp"
        with open(temp, "wb") as handle:
            handle.write(blob)
            fsync_file(handle)
        crash_point("checkpoint-before-publish")
        os.replace(temp, self.path)
        fsync_directory(self.directory)
        crash_point("checkpoint-after-publish")

    def load(self) -> Optional[dict]:
        """Return the published checkpoint state, or ``None`` if absent.

        A checkpoint that fails its CRC is an error, not a silent skip — the
        atomic publish protocol means a valid file is either fully present
        or not present at all; a corrupt one indicates storage damage the
        operator must know about.
        """
        if not os.path.exists(self.path):
            return None
        return decode_state(self._read_payload())

    def summary(self) -> Optional[dict]:
        """Cheap introspection: the watermark and index names, no arrays.

        Reads and CRC-checks the file but decodes only the JSON header —
        the array payloads (potentially hundreds of megabytes of index
        structures) are never materialized.  Used by ``Database.status()``
        and the ``inspect`` CLI.
        """
        if not os.path.exists(self.path):
            return None
        payload = self._read_payload()
        tree = peek_state_tree(payload)
        return {
            "op_id": int(tree["op_id"]),
            "indexes": sorted(tree.get("indexes", {})),
        }

    def _read_payload(self) -> bytes:
        with open(self.path, "rb") as handle:
            data = handle.read()
        if len(data) < _HEADER.size:
            raise PersistenceError(f"checkpoint {self.path!r} is truncated")
        magic, length, crc = _HEADER.unpack_from(data, 0)
        if magic != CHECKPOINT_MAGIC:
            raise PersistenceError(f"checkpoint {self.path!r} has a bad magic prefix")
        payload = data[_HEADER.size : _HEADER.size + length]
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise PersistenceError(f"checkpoint {self.path!r} fails its CRC check")
        return payload

    def remove(self) -> None:
        """Delete the published checkpoint (used by tests)."""
        if os.path.exists(self.path):
            os.remove(self.path)
