"""Non-adaptive baselines: predicated full scan and a-priori full index."""

from repro.baselines.full_index import FullIndex
from repro.baselines.full_scan import FullScan

__all__ = ["FullIndex", "FullScan"]
