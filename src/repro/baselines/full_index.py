"""Full-index baseline (paper: "FI").

The first query pays for sorting the column and bulk loading it into a
B+-tree; every subsequent query is answered from the tree.  This baseline has
by far the most expensive first query (the paper reports 50x the scan cost)
but the lowest cumulative time on long workloads.
"""

from __future__ import annotations

import numpy as np

from repro.btree.bplus_tree import DEFAULT_FANOUT, BPlusTree
from repro.core.calibration import CostConstants
from repro.core.cost_model import CostBreakdown
from repro.core.index import BaseIndex
from repro.core.phase import IndexPhase
from repro.core.policy import BudgetPolicy
from repro.core.query import Predicate, QueryResult, search_sorted_many
from repro.storage.column import Column
from repro.storage.delta import merge_sorted_with_delta


class FullIndex(BaseIndex):
    """Build a complete B+-tree on the first query, then use it exclusively.

    Parameters
    ----------
    column:
        Column to index.
    fanout:
        B+-tree fanout used by the bulk load.
    """

    name = "FI"
    description = "A-priori full index (sort + B+-tree bulk load on first query)"
    eager_batch = True
    #: Once built, batched answering is searchsorted over the frozen sorted
    #: array (plus an idempotent prefix-sum cache) — safe for concurrent
    #: reader threads.  The serving scheduler additionally requires the
    #: converged phase, so the first-touch bulk build stays serialized.
    concurrent_reads = True
    #: The sorted backbone makes delta folding a single merge + bulk reload,
    #: so the baseline participates in the budget-priced MERGE phase.
    can_fold = True

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants)
        self.fanout = int(fanout)
        self._tree: BPlusTree | None = None
        self._sorted_values: np.ndarray | None = None
        self._batch_prefix: np.ndarray | None = None

    @property
    def tree(self) -> BPlusTree | None:
        """The bulk-loaded B+-tree (``None`` before the first query)."""
        return self._tree

    def memory_footprint(self) -> int:
        return self._tree.memory_footprint() if self._tree is not None else 0

    def _execute(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        if self._tree is None:
            self._build()
            self.last_stats.elements_indexed = n
        result = self._tree.query(predicate)
        breakdown = CostBreakdown(
            scan=self._cost_model.scan_time(result.count),
            lookup=self._cost_model.binary_search_time(n),
            indexing=0.0,
        )
        self.last_stats.predicted_breakdown = breakdown
        self.last_stats.predicted_cost = breakdown.total
        return result

    def _build(self) -> None:
        """Sort the column and bulk load the B+-tree (the first-query work).

        The lifecycle jumps straight from ``INACTIVE`` to ``CONVERGED`` —
        the baseline pays for the complete index up front.
        """
        self._sorted_values = self._column.copy_data()
        self._sorted_values.sort()
        self._tree = BPlusTree.bulk_load(self._sorted_values, fanout=self.fanout)
        self._advance_phase(IndexPhase.CONVERGED)

    def _search_many(self, lows, highs):
        """Batched answering over the sorted array backing the B+-tree.

        Builds the index first if this batch is the very first operation —
        the same work a sequential first query pays.
        """
        if self._tree is None:
            self._build()
        sums, counts, self._batch_prefix = search_sorted_many(
            self._sorted_values, lows, highs, self._batch_prefix
        )
        return sums, counts

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def _family_state(self) -> dict:
        state = {"built": self._tree is not None, "fanout": self.fanout}
        if self._sorted_values is not None:
            state["sorted_values"] = np.array(self._sorted_values)
        return state

    def _load_family_state(self, state: dict) -> None:
        self.fanout = int(state.get("fanout", self.fanout))
        if not state.get("built"):
            return
        self._sorted_values = np.asarray(state["sorted_values"])
        self._tree = BPlusTree.bulk_load(self._sorted_values, fanout=self.fanout)
        self._batch_prefix = None

    def _fold_delta(self, inserts_sorted, tombstones_sorted) -> bool:
        """Merge the buffered delta into the sorted array, bulk reload the tree."""
        if self._tree is None:
            return False
        self._sorted_values = merge_sorted_with_delta(
            self._sorted_values, inserts_sorted, tombstones_sorted
        )
        self._tree = BPlusTree.bulk_load(self._sorted_values, fanout=self.fanout)
        self._batch_prefix = None
        return True

    def _fold_base_size(self) -> int:
        if self._sorted_values is None:
            return len(self._column)
        return int(self._sorted_values.size)
