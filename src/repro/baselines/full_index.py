"""Full-index baseline (paper: "FI").

The first query pays for sorting the column and bulk loading it into a
B+-tree; every subsequent query is answered from the tree.  This baseline has
by far the most expensive first query (the paper reports 50x the scan cost)
but the lowest cumulative time on long workloads.
"""

from __future__ import annotations

import numpy as np

from repro.btree.bplus_tree import DEFAULT_FANOUT, BPlusTree
from repro.core.calibration import CostConstants
from repro.core.index import BaseIndex
from repro.core.phase import IndexPhase
from repro.core.policy import BudgetPolicy
from repro.core.query import Predicate, QueryResult, search_sorted_many
from repro.storage.column import Column


class FullIndex(BaseIndex):
    """Build a complete B+-tree on the first query, then use it exclusively.

    Parameters
    ----------
    column:
        Column to index.
    fanout:
        B+-tree fanout used by the bulk load.
    """

    name = "FI"
    description = "A-priori full index (sort + B+-tree bulk load on first query)"
    eager_batch = True

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants)
        self.fanout = int(fanout)
        self._tree: BPlusTree | None = None
        self._sorted_values: np.ndarray | None = None
        self._batch_prefix: np.ndarray | None = None

    @property
    def tree(self) -> BPlusTree | None:
        """The bulk-loaded B+-tree (``None`` before the first query)."""
        return self._tree

    def memory_footprint(self) -> int:
        return self._tree.memory_footprint() if self._tree is not None else 0

    def _execute(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        if self._tree is None:
            self._build()
            self.last_stats.elements_indexed = n
        result = self._tree.query(predicate)
        lookup = self._cost_model.binary_search_time(n)
        self.last_stats.predicted_cost = lookup + self._cost_model.scan_time(result.count)
        return result

    def _build(self) -> None:
        """Sort the column and bulk load the B+-tree (the first-query work).

        The lifecycle jumps straight from ``INACTIVE`` to ``CONVERGED`` —
        the baseline pays for the complete index up front.
        """
        self._sorted_values = self._column.copy_data()
        self._sorted_values.sort()
        self._tree = BPlusTree.bulk_load(self._sorted_values, fanout=self.fanout)
        self._advance_phase(IndexPhase.CONVERGED)

    def search_many(self, lows, highs):
        """Batched answering over the sorted array backing the B+-tree.

        Builds the index first if this batch is the very first operation —
        the same work a sequential first query pays.
        """
        if self._tree is None:
            self._build()
        sums, counts, self._batch_prefix = search_sorted_many(
            self._sorted_values, lows, highs, self._batch_prefix
        )
        return sums, counts
