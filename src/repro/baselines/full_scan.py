"""Full-scan baseline (paper: "FS").

Every query performs a predicated scan of the entire column; no index is
ever constructed.  This is the most robust and the cheapest-first-query
baseline of the paper's evaluation, but its cumulative cost grows linearly
with the number of queries.
"""

from __future__ import annotations

from repro.core.index import BaseIndex
from repro.core.phase import IndexPhase
from repro.core.query import Predicate, QueryResult


class FullScan(BaseIndex):
    """Answer every query with a predicated scan of the base column."""

    name = "FS"
    description = "Predicated full scan (no index)"

    @property
    def phase(self) -> IndexPhase:
        # A full scan never builds an index, so it never leaves the inactive
        # state; it also never converges.
        return IndexPhase.INACTIVE

    def _execute(self, predicate: Predicate) -> QueryResult:
        self.last_stats.predicted_cost = self._cost_model.scan_time(len(self._column))
        return self._scan_column(predicate)
