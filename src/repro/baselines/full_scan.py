"""Full-scan baseline (paper: "FS").

Every query performs a predicated scan of the entire column; no index is
ever constructed.  This is the most robust and the cheapest-first-query
baseline of the paper's evaluation, but its cumulative cost grows linearly
with the number of queries.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import CostBreakdown
from repro.core.index import BaseIndex
from repro.core.query import Predicate, QueryResult, search_sorted_many


class FullScan(BaseIndex):
    """Answer every query with a predicated scan of the base column.

    A full scan never builds an index, so its lifecycle never leaves the
    inactive state; it also never converges.  On a mutable column the scan
    covers the pinned snapshot and the shared delta overlay corrects for
    subsequent writes — there is no structure to fold them into, so the
    overlay's sorted buffers hold them permanently (still answered in
    ``O(log d)`` per query).
    """

    name = "FS"
    description = "Predicated full scan (no index)"
    eager_batch = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._sorted_values: np.ndarray | None = None
        self._batch_prefix: np.ndarray | None = None

    def predicted_cost(self, predicate: Predicate, delta: float = 0.0) -> CostBreakdown:
        return CostBreakdown(
            scan=self._cost_model.scan_time(len(self._column)), lookup=0.0, indexing=0.0
        )

    def _execute(self, predicate: Predicate) -> QueryResult:
        breakdown = self.predicted_cost(predicate)
        self.last_stats.predicted_breakdown = breakdown
        self.last_stats.predicted_cost = breakdown.total
        return self._scan_column(predicate)

    def _search_many(self, lows, highs):
        """Batched scans: sort a scratch copy once, then binary-search all.

        Per-query answering stays a predicated scan (the baseline's defining
        property); batch answering is allowed one shared ``O(N log N)``
        preparation pass because the batch itself is a single bulk operation.
        The scratch copy never alters per-query behaviour or the base column.
        """
        if self._sorted_values is None:
            self._sorted_values = self._column.copy_data()
            self._sorted_values.sort()
        sums, counts, self._batch_prefix = search_sorted_many(
            self._sorted_values, lows, highs, self._batch_prefix
        )
        return sums, counts
