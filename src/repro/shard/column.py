"""Sharded columns: one logical column, K physical partitions.

A :class:`ShardedColumn` splits a column's rows into K partitions, each a
normal :class:`~repro.storage.column.Column` with its own delta store —
and, once indexed, its own progressive index with an independent
:class:`~repro.core.phase.IndexLifecycle`.  All columns of one table share
a single :class:`~repro.shard.partition.ShardLayout` (the *shard set*), so
every row lands in the same shard across columns and multi-column
conjunctions keep composing.

Stable global row ids
---------------------
Base rows of shard ``s`` own the contiguous global rid block
``[offsets[s], offsets[s+1])`` — per-shard rid answers concatenate in shard
order into a globally ascending rid array with **no re-sorting**.  Inserted
rows continue from ``total_base_rows`` in table insertion order; the column
keeps the ``(shard, local rid)`` mapping of every insert, and per-shard
insert rids are ascending too, so only the (small) insert tail of a
``rids_where`` answer ever needs a merge.

Zero-copy sharing
-----------------
For parallel execution the per-shard base arrays must be readable from
worker processes without pickling the payload.  :meth:`ShardedColumn.
ensure_shareable` places each shard base either in a
``multiprocessing.shared_memory`` segment (anonymous columns) or in a
column file mapped via :mod:`repro.persist.pager` (when a spill directory
is provided); workers reattach from a tiny descriptor.  Delta writes are
forwarded to workers as explicit (small) operations — the base payload is
never serialized.
"""

from __future__ import annotations

import os
import weakref
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import DroppedColumnError, InvalidColumnError
from repro.shard.partition import ShardLayout, build_layout, rebalance_empty_shards
from repro.storage.column import Column, _ReadableColumn
from repro.storage.delta import _GrowableArray


def _release_segments(segments: List[shared_memory.SharedMemory]) -> None:
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


class ShardSet:
    """The table-level sharding contract shared by sibling columns."""

    def __init__(self, layout: ShardLayout) -> None:
        self.layout = layout
        #: Names of the converted sibling columns.
        self.column_names: List[str] = []

    @property
    def driving_column(self) -> str:
        return self.layout.driving_column

    def route_values(self, values) -> np.ndarray:
        """Shard assignment of an insert batch (driving-column values)."""
        return self.layout.route_values(values)


class ShardedColumn(_ReadableColumn):
    """One logical column stored as K partition :class:`Column` objects.

    Construct via :func:`shard_column` / :func:`shard_table`, which build
    the shared layout; the constructor wires pre-partitioned pieces.
    """

    def __init__(
        self,
        shards: List[Column],
        layout: ShardLayout,
        shard_set: ShardSet,
        name: str = "value",
    ) -> None:
        if len(shards) != layout.n_shards:
            raise InvalidColumnError(
                f"layout expects {layout.n_shards} shards, got {len(shards)}"
            )
        self._shards = list(shards)
        self._layout = layout
        self._shard_set = shard_set
        self._name = str(name)
        self._min = None
        self._max = None
        self._dropped = False
        # Base-extreme zone maps: immutable once built (bases never change).
        self._base_mins = np.array([float(s.base_data.min()) for s in shards])
        self._base_maxs = np.array([float(s.base_data.max()) for s in shards])
        # Insert extremes per shard (delta-aware bounds only ever widen;
        # deletes are conservatively ignored, so a pruned shard provably
        # holds no qualifying row).
        self._ins_min = np.full(layout.n_shards, np.inf)
        self._ins_max = np.full(layout.n_shards, -np.inf)
        # Global insert rid k -> owning shard and shard-local rid.
        self._ins_shard = _GrowableArray(np.int64)
        self._ins_local = _GrowableArray(np.int64)
        # Per shard: insert ordinal -> global insert rid (ascending).
        self._shard_ins_global: List[_GrowableArray] = [
            _GrowableArray(np.int64) for _ in range(layout.n_shards)
        ]
        self._visible_cache: Optional[tuple] = None
        #: Callables invoked with every write op (parallel executors mirror
        #: the writes into their worker-side shard columns through this).
        self._write_listeners: List[Callable[[dict], None]] = []
        # Zero-copy sharing state (built on demand).
        self._segments: List[shared_memory.SharedMemory] = []
        self._descriptors: Optional[List[dict]] = None
        self._finalizer = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def layout(self) -> ShardLayout:
        """The shared table-level shard layout."""
        return self._layout

    @property
    def shard_set(self) -> ShardSet:
        """The table-level shard set this column belongs to."""
        return self._shard_set

    @property
    def n_shards(self) -> int:
        return self._layout.n_shards

    @property
    def shards(self) -> List[Column]:
        """The per-shard live columns (parent-process replicas)."""
        return self._shards

    @property
    def total_base_rows(self) -> int:
        return self._layout.total_base_rows

    @property
    def n_inserted(self) -> int:
        """Rows inserted since the column was sharded (alive or deleted)."""
        return len(self._ins_shard)

    @property
    def version(self) -> int:
        """Monotone write version (sum of the shard versions)."""
        return sum(shard.version for shard in self._shards)

    @property
    def dropped(self) -> bool:
        return self._dropped

    def drop(self) -> None:
        self._dropped = True
        for shard in self._shards:
            shard.drop()

    @property
    def is_mapped(self) -> bool:
        """Whether the shard bases are memory-mapped column files."""
        return all(shard.is_mapped for shard in self._shards)

    def __array__(self, dtype=None):
        view = self._view()
        return view if dtype is None else view.astype(dtype, copy=False)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _view(self) -> np.ndarray:
        """All visible rows, concatenated in (shard, local rid) order.

        Every sibling :class:`ShardedColumn` of the table enumerates rows
        in the same (shard, local rid) order, so boolean masks over
        ``.data`` stay row-aligned across columns — the property the
        multi-column ``where()`` path relies on.
        """
        key = tuple(shard.version for shard in self._shards)
        cached = self._visible_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        if len(self._shards) == 1:
            view = self._shards[0].data
        else:
            view = np.concatenate([shard.data for shard in self._shards])
            view.setflags(write=False)
        self._visible_cache = (key, view)
        return view

    def min(self):
        return min(shard.min() for shard in self._shards)

    def max(self):
        return max(shard.max() for shard in self._shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def shard_bounds(self) -> tuple:
        """Delta-aware per-shard ``(mins, maxs)`` zone maps.

        Base extremes are computed once (bases are immutable); insert
        extremes widen with every insert.  Deletes are ignored, so bounds
        are conservative: a shard outside them provably contains no
        qualifying row, while a shard inside them may still be empty.
        """
        mins = np.minimum(self._base_mins, self._ins_min)
        maxs = np.maximum(self._base_maxs, self._ins_max)
        return mins, maxs

    # ------------------------------------------------------------------
    # Global rid mapping
    # ------------------------------------------------------------------
    def _locate(self, rids: np.ndarray) -> tuple:
        """Map global rids to ``(shard_ids, local_rids)`` arrays."""
        rids = np.atleast_1d(np.asarray(rids, dtype=np.int64))
        total_base = self._layout.total_base_rows
        n_ins = len(self._ins_shard)
        if rids.size and (rids.min() < 0 or rids.max() >= total_base + n_ins):
            raise InvalidColumnError(
                f"row id out of range (0 .. {total_base + n_ins - 1})"
            )
        shard_ids = np.empty(rids.size, dtype=np.int64)
        local_rids = np.empty(rids.size, dtype=np.int64)
        base_mask = rids < total_base
        if base_mask.any():
            base_rids = rids[base_mask]
            owners = self._layout.shard_of_base_rid(base_rids)
            shard_ids[base_mask] = owners
            local_rids[base_mask] = base_rids - self._layout.offsets[owners]
        if not base_mask.all():
            ins_mask = ~base_mask
            ordinals = rids[ins_mask] - total_base
            shard_ids[ins_mask] = self._ins_shard.values[ordinals]
            local_rids[ins_mask] = self._ins_local.values[ordinals]
        return rids, shard_ids, local_rids

    def values_at(self, rids) -> np.ndarray:
        """Current values of the rows with the given global rids."""
        rids, shard_ids, local_rids = self._locate(rids)
        out = np.empty(rids.size, dtype=self.dtype)
        for shard_number in np.unique(shard_ids):
            sel = shard_ids == shard_number
            out[sel] = self._shards[int(shard_number)].values_at(local_rids[sel])
        return out

    def rids_where(self, low, high) -> np.ndarray:
        """Global rids of the visible rows in ``[low, high]``, ascending.

        Per-shard base answers concatenate in shard order (the stable
        offset map makes that globally sorted); only the insert tail —
        whose global rids interleave across shards — is merge-sorted, so
        no full row-id set is ever re-sorted.
        """
        offsets = self._layout.offsets
        base_parts: List[np.ndarray] = []
        insert_parts: List[np.ndarray] = []
        mins, maxs = self.shard_bounds()
        for shard_number, shard in enumerate(self._shards):
            if maxs[shard_number] < low or mins[shard_number] > high:
                continue  # zone map: provably no qualifying rows
            local = shard.rids_where(low, high)
            base_size = shard.base_size
            split = int(np.searchsorted(local, base_size))
            if split:
                base_parts.append(local[:split] + offsets[shard_number])
            if split < local.size:
                ordinals = local[split:] - base_size
                insert_parts.append(
                    self._shard_ins_global[shard_number].values[ordinals]
                )
        base = (
            np.concatenate(base_parts) if base_parts
            else np.empty(0, dtype=np.int64)
        )
        if not insert_parts:
            return base
        inserts = np.concatenate(insert_parts)
        inserts.sort()  # only the delta tail, never the base rid blocks
        return np.concatenate([base, inserts])

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _check_writable(self) -> None:
        if self._dropped:
            raise DroppedColumnError(
                f"column {self._name!r} has been dropped; writes are rejected"
            )

    def _notify(self, op: dict) -> None:
        self._visible_cache = None
        for listener in self._write_listeners:
            listener(op)

    def add_write_listener(self, listener: Callable[[dict], None]) -> None:
        self._write_listeners.append(listener)

    def remove_write_listener(self, listener: Callable[[dict], None]) -> None:
        if listener in self._write_listeners:
            self._write_listeners.remove(listener)

    def insert(self, values, handle=None, shard_ids=None) -> np.ndarray:
        """Append rows; returns their stable *global* rids.

        ``shard_ids`` carries the table-level routing decision (computed
        once per batch from the driving column).  Without it, only the
        driving column may route itself — inserting into a non-driving
        sharded column directly would desync the sibling columns.
        """
        self._check_writable()
        values = np.atleast_1d(np.asarray(values))
        if shard_ids is None:
            if self._name != self._shard_set.driving_column:
                raise InvalidColumnError(
                    f"column {self._name!r} is sharded by "
                    f"{self._shard_set.driving_column!r}; insert through the "
                    "table so rows route consistently across columns"
                )
            shard_ids = self._shard_set.route_values(values)
        shard_ids = np.asarray(shard_ids, dtype=np.int64)
        if shard_ids.size != values.size:
            raise InvalidColumnError(
                f"insert() got {values.size} values but {shard_ids.size} shard ids"
            )
        start = self._layout.total_base_rows + len(self._ins_shard)
        local_rids = np.empty(values.size, dtype=np.int64)
        for shard_number in np.unique(shard_ids):
            shard_number = int(shard_number)
            sel = shard_ids == shard_number
            chunk = values[sel]
            local_rids[sel] = self._shards[shard_number].insert(chunk, handle=handle)
            self._shard_ins_global[shard_number].append(
                start + np.flatnonzero(sel).astype(np.int64)
            )
            chunk_min = float(np.min(chunk))
            chunk_max = float(np.max(chunk))
            if chunk_min < self._ins_min[shard_number]:
                self._ins_min[shard_number] = chunk_min
            if chunk_max > self._ins_max[shard_number]:
                self._ins_max[shard_number] = chunk_max
        self._ins_shard.append(shard_ids)
        self._ins_local.append(local_rids)
        self._invalidate()
        self._notify({"op": "insert", "shard_ids": shard_ids, "values": values})
        return start + np.arange(values.size, dtype=np.int64)

    def delete_rows(self, rids, handle=None) -> int:
        """Delete the rows with the given global rids (across shards)."""
        self._check_writable()
        rids, shard_ids, local_rids = self._locate(rids)
        deleted = 0
        per_shard: Dict[int, np.ndarray] = {}
        for shard_number in np.unique(shard_ids):
            shard_number = int(shard_number)
            locals_here = local_rids[shard_ids == shard_number]
            per_shard[shard_number] = locals_here
            deleted += self._shards[shard_number].delete_rows(locals_here, handle=handle)
        self._invalidate()
        self._notify({"op": "delete", "per_shard": per_shard})
        return deleted

    def delete_where(self, low, high, handle=None) -> np.ndarray:
        """Delete all visible rows in ``[low, high]``; returns their rids."""
        rids = self.rids_where(low, high)
        if rids.size:
            self.delete_rows(rids, handle=handle)
        return rids

    @property
    def delta(self) -> Optional["ShardedDelta"]:
        """Aggregated write-log facade (``None`` until the first write)."""
        if all(shard.delta is None for shard in self._shards):
            return None
        return ShardedDelta(self._shards)

    # ------------------------------------------------------------------
    # Zero-copy sharing
    # ------------------------------------------------------------------
    def ensure_shareable(self, spill_dir: Optional[str] = None) -> List[dict]:
        """Place shard bases where worker processes can attach zero-copy.

        Anonymous shards move into ``multiprocessing.shared_memory``
        segments; with ``spill_dir`` they are written as column files and
        memory-mapped instead (the page cache is the shared medium).
        Shards that are already file-backed just report their path.  Only
        legal before any write lands (the shard columns are rebuilt around
        the shared buffers); returns one descriptor per shard.
        """
        if self._descriptors is not None:
            return self._descriptors
        if any(shard.version for shard in self._shards):
            raise InvalidColumnError(
                "ensure_shareable() must run before the first write; create "
                "the sharded index with parallel=True up front"
            )
        from repro.persist import pager

        descriptors: List[dict] = []
        rebuilt: List[Column] = []
        for shard_number, shard in enumerate(self._shards):
            base = shard.base_data
            if shard.is_mapped and hasattr(base, "filename") and base.filename:
                descriptors.append({"kind": "file", "path": str(base.filename)})
                rebuilt.append(shard)
                continue
            if spill_dir is not None:
                path = os.path.join(
                    spill_dir, f"{self._name}.shard{shard_number}.col"
                )
                pager.write_column_file(path, np.ascontiguousarray(base))
                rebuilt.append(Column.from_file(path, name=self._name))
                descriptors.append({"kind": "file", "path": path})
                continue
            segment = shared_memory.SharedMemory(create=True, size=base.nbytes)
            shared = np.ndarray(base.shape, dtype=base.dtype, buffer=segment.buf)
            shared[:] = base
            self._segments.append(segment)
            rebuilt.append(Column(shared, name=self._name))
            descriptors.append(
                {
                    "kind": "shm",
                    "name": segment.name,
                    "dtype": str(base.dtype),
                    "size": int(base.size),
                }
            )
        self._shards = rebuilt
        self._visible_cache = None
        self._descriptors = descriptors
        if self._segments:
            self._finalizer = weakref.finalize(
                self, _release_segments, self._segments
            )
        return descriptors

    def close(self) -> None:
        """Release shared-memory segments (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
            self._segments = []

    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._min = None
        self._max = None
        self._visible_cache = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedColumn(name={self._name!r}, size={len(self)}, "
            f"shards={self.n_shards}, kind={self._layout.kind!r})"
        )


class ShardedDelta:
    """Aggregate view over the per-shard delta stores.

    Quacks like the slice of :class:`~repro.storage.delta.DeltaStore` the
    session layer consumes: pending-handle bookkeeping for the
    ``PendingDeltaError`` check, commit, and the write counters surfaced
    by ``session.status()``.
    """

    def __init__(self, shards: List[Column]) -> None:
        self._deltas = [shard.delta for shard in shards if shard.delta is not None]

    @property
    def n_inserts(self) -> int:
        return sum(delta.n_inserts for delta in self._deltas)

    @property
    def n_deletes(self) -> int:
        return sum(delta.n_deletes for delta in self._deltas)

    @property
    def version(self) -> int:
        return sum(delta.version for delta in self._deltas)

    def memory_footprint(self) -> int:
        return sum(delta.memory_footprint() for delta in self._deltas)

    def commit(self, handle) -> None:
        for delta in self._deltas:
            delta.commit(handle)

    def foreign_handles(self, handle) -> list:
        foreign: list = []
        for delta in self._deltas:
            for other in delta.foreign_handles(handle):
                if other not in foreign:
                    foreign.append(other)
        return foreign


# ----------------------------------------------------------------------
# Conversion helpers
# ----------------------------------------------------------------------
def shard_column(
    column: Column,
    n_shards: int,
    kind: str = "range",
    shard_set: Optional[ShardSet] = None,
    source_rows: Optional[List[np.ndarray]] = None,
) -> ShardedColumn:
    """Partition one column, either standalone or following a shard set."""
    if column.version:
        raise InvalidColumnError(
            f"column {column.name!r} has delta-store writes; shard the table "
            "before writing to it"
        )
    data = column.base_data
    if shard_set is None:
        layout, source_rows, _ = build_layout(
            data, n_shards, kind=kind, driving_column=column.name
        )
        source_rows = rebalance_empty_shards(layout, source_rows)
        shard_set = ShardSet(layout)
    else:
        layout = shard_set.layout
        if source_rows is None:
            raise InvalidColumnError(
                "sharding a sibling column requires the driving column's "
                "source_rows gather order"
            )
    shards = [
        Column(np.ascontiguousarray(data[rows]), name=column.name)
        for rows in source_rows
    ]
    sharded = ShardedColumn(shards, layout, shard_set, name=column.name)
    shard_set.column_names.append(column.name)
    return sharded


def shard_table(table, driving_column: str, n_shards: int, kind: str = "range"):
    """Convert every column of ``table`` to :class:`ShardedColumn` in place.

    All columns follow one layout built from ``driving_column``'s values,
    so rows stay aligned across columns (global rid spaces are identical).
    Returns the shared :class:`ShardSet`.  Only legal on a table with no
    delta-store writes — shard before writing.
    """
    driving = table.column(driving_column)
    if isinstance(driving, ShardedColumn):
        return driving.shard_set
    for name in table.column_names:
        if table.column(name).version:
            raise InvalidColumnError(
                f"column {name!r} has delta-store writes; shard the table "
                "before writing to it"
            )
    layout, source_rows, _ = build_layout(
        driving.base_data, n_shards, kind=kind, driving_column=driving_column
    )
    source_rows = rebalance_empty_shards(layout, source_rows)
    shard_set = ShardSet(layout)
    for name in table.column_names:
        column = table.column(name)
        table._columns[name] = shard_column(
            column, n_shards, kind=kind, shard_set=shard_set, source_rows=source_rows
        )
    return shard_set
