"""Vectorized zone-map primitives shared by shard routing and imprints.

A *zone map* summarises a region of a column (a shard, or a cache-line
block) with statistics a range query can test without touching the data:

* **interval bounds** — the region's ``[min, max]``: a query ``[low, high]``
  can skip the region iff the intervals do not intersect;
* **bin occupancy bitmaps** — the column domain is cut into up to 64
  equi-width bins and each region stores one ``uint64`` with a bit per bin
  that occurs in it (column imprints, Sidirourgos & Kersten, SIGMOD 2013).
  A query can skip every region whose bitmap does not intersect the bins
  the query range covers, which prunes *inside* the interval bounds when
  the region's values are clustered.

Everything here is a pure NumPy function over arrays of region summaries —
one code path serves the per-shard router (:mod:`repro.shard.router`) and
the per-block pruning of
:class:`~repro.extensions.column_imprints.ProgressiveColumnImprints`.
All bitmap math stays in ``uint64``; bins are clamped to ``[0, 63]``.
"""

from __future__ import annotations

import numpy as np

#: Maximum number of bins a bitmap zone map may use (one bit per bin).
MAX_BINS = 64

#: All 64 bits set.
_FULL_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def bin_edges(low: float, high: float, n_bins: int) -> np.ndarray:
    """Internal edges of ``n_bins`` equi-width bins over ``[low, high]``.

    Returns ``n_bins - 1`` edges; values below the first edge fall in bin
    0, values past the last edge in bin ``n_bins - 1``, so out-of-domain
    values (e.g. later inserts) clamp into the boundary bins instead of
    overflowing the bitmap.
    """
    if not 2 <= n_bins <= MAX_BINS:
        raise ValueError(f"n_bins must be within [2, {MAX_BINS}], got {n_bins}")
    low = float(low)
    high = float(high)
    if high <= low:
        high = low + 1.0
    return np.linspace(low, high, n_bins + 1)[1:-1]


def bins_of(edges: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Bin number of every value (``0 .. len(edges)``), vectorized."""
    return np.searchsorted(edges, values, side="right")


def bin_range_bitmap(low_bin: int, high_bin: int) -> np.uint64:
    """Bitmap with bits ``low_bin .. high_bin`` (inclusive) set, closed form.

    Replaces the per-bin Python loop: the contiguous run of bits is two
    mask subtractions computed in Python integers and cast once.
    """
    low_bin = max(0, int(low_bin))
    high_bin = min(MAX_BINS - 1, int(high_bin))
    if high_bin < low_bin:
        return np.uint64(0)
    if high_bin >= MAX_BINS - 1:
        high_mask = _FULL_MASK
    else:
        high_mask = np.uint64((1 << (high_bin + 1)) - 1)
    return high_mask & ~np.uint64((1 << low_bin) - 1)


def query_bitmap(edges: np.ndarray, low, high) -> np.uint64:
    """Bitmap of every bin a range query ``[low, high]`` intersects."""
    bounds = bins_of(edges, np.asarray([low, high], dtype=np.float64))
    return bin_range_bitmap(int(bounds[0]), int(bounds[1]))


def occupancy_bitmap(edges: np.ndarray, values: np.ndarray) -> np.uint64:
    """Bitmap of every bin occurring in ``values`` (empty input → 0)."""
    values = np.asarray(values)
    if values.size == 0:
        return np.uint64(0)
    bins = bins_of(edges, values).astype(np.uint64, copy=False)
    return np.bitwise_or.reduce(np.left_shift(np.uint64(1), bins))


def occupancy_bitmaps(edges: np.ndarray, values: np.ndarray, block_elements: int) -> np.ndarray:
    """Per-block occupancy bitmaps of ``values``, vectorized over full blocks.

    The trailing partial block (if any) gets its own bitmap.  Returns a
    ``(ceil(len(values) / block_elements),)`` ``uint64`` array.
    """
    values = np.asarray(values)
    n = values.size
    block_elements = int(block_elements)
    n_full = n // block_elements
    n_blocks = -(-n // block_elements)
    bitmaps = np.zeros(n_blocks, dtype=np.uint64)
    if n_full:
        bins = bins_of(edges, values[: n_full * block_elements])
        bits = np.left_shift(
            np.uint64(1), bins.astype(np.uint64).reshape(n_full, block_elements)
        )
        bitmaps[:n_full] = np.bitwise_or.reduce(bits, axis=1)
    if n_blocks > n_full:
        bitmaps[n_full] = occupancy_bitmap(edges, values[n_full * block_elements :])
    return bitmaps


def bitmap_candidates(bitmaps: np.ndarray, query: np.uint64) -> np.ndarray:
    """Indices of the regions whose occupancy bitmap intersects ``query``."""
    return np.flatnonzero(np.asarray(bitmaps, dtype=np.uint64) & np.uint64(query))


def interval_candidates(mins: np.ndarray, maxs: np.ndarray, low, high) -> np.ndarray:
    """Indices of the regions whose ``[min, max]`` intersects ``[low, high]``.

    A region with ``max < low`` or ``min > high`` provably contains no
    qualifying row and is pruned.
    """
    mask = (np.asarray(maxs) >= low) & (np.asarray(mins) <= high)
    return np.flatnonzero(mask)


def interval_overlap_matrix(
    mins: np.ndarray, maxs: np.ndarray, lows: np.ndarray, highs: np.ndarray
) -> np.ndarray:
    """Boolean ``(n_queries, n_regions)`` intersection matrix for a batch."""
    lows = np.asarray(lows)[:, None]
    highs = np.asarray(highs)[:, None]
    return (np.asarray(maxs)[None, :] >= lows) & (np.asarray(mins)[None, :] <= highs)
