"""Shard layouts: how a table's rows map onto K partitions.

A :class:`ShardLayout` is the *table-level* partitioning contract every
:class:`~repro.shard.column.ShardedColumn` of one table shares: the same
per-row shard assignment is applied to every column, so a row's values land
in the same shard across columns and the stable global row-id space stays
aligned for multi-column conjunctions.

Two partitioning schemes are supported:

* **range** — the driving column's value domain is cut at K-1 boundaries
  (quantiles of the base data, so the base rows split evenly even under
  skew).  Clustered predicates then touch few shards and the router's zone
  maps prune the rest — the scheme to pick for range-query workloads.
* **hash** — rows are spread by a 64-bit multiplicative hash of the driving
  value.  Shard sizes stay balanced no matter how the workload writes, but
  every range query touches all shards; pick it when the goal is parallel
  construction bandwidth rather than routing.

Global row ids use the **stable offset map**: base rows of shard ``s``
occupy the contiguous block ``[offsets[s], offsets[s+1])``, so per-shard
rid answers concatenate in shard order into a globally sorted rid array
without any re-sorting; inserted rows continue from ``total_base_rows``
in table insertion order (see :mod:`repro.shard.column`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InvalidColumnError

#: Knuth's multiplicative constant for the 64-bit value hash.
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def _hash_shards(values: np.ndarray, n_shards: int) -> np.ndarray:
    """Deterministic shard assignment by 64-bit multiplicative hashing."""
    values = np.asarray(values)
    if values.dtype.kind == "f":
        bits = values.astype(np.float64, copy=False).view(np.uint64)
    else:
        bits = values.astype(np.int64, copy=False).view(np.uint64)
    mixed = bits * _HASH_MULTIPLIER
    mixed ^= mixed >> np.uint64(29)
    return (mixed % np.uint64(n_shards)).astype(np.int64)


@dataclass
class ShardLayout:
    """The shared per-table partitioning: scheme, boundaries and offsets.

    Attributes
    ----------
    kind:
        ``"range"`` or ``"hash"``.
    n_shards:
        Number of partitions K.
    driving_column:
        Name of the column whose values decide a row's shard; every other
        column of the table follows its assignment.
    boundaries:
        For range layouts, the K-1 internal cut points (``values <=
        boundaries[0]`` → shard 0, etc.); empty for hash layouts.
    offsets:
        Stable global offset map: base rows of shard ``s`` own global rids
        ``[offsets[s], offsets[s+1])``.  ``offsets[-1] == total_base_rows``.
    """

    kind: str
    n_shards: int
    driving_column: str
    boundaries: np.ndarray
    offsets: np.ndarray = field(default_factory=lambda: np.zeros(1, dtype=np.int64))

    @property
    def total_base_rows(self) -> int:
        """Number of base (pre-insert) rows across all shards."""
        return int(self.offsets[-1])

    def shard_sizes(self) -> np.ndarray:
        """Base rows per shard."""
        return np.diff(self.offsets)

    def route_values(self, values) -> np.ndarray:
        """Shard id of every value, vectorized."""
        values = np.atleast_1d(np.asarray(values))
        if self.kind == "hash":
            return _hash_shards(values, self.n_shards)
        return np.searchsorted(self.boundaries, values, side="left").astype(np.int64)

    def shard_of_base_rid(self, rids: np.ndarray) -> np.ndarray:
        """Shard owning each global *base* rid (``rid < total_base_rows``)."""
        rids = np.asarray(rids, dtype=np.int64)
        return np.searchsorted(self.offsets, rids, side="right") - 1

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "n_shards": int(self.n_shards),
            "driving_column": self.driving_column,
            "base_rows": self.total_base_rows,
            "shard_sizes": [int(size) for size in self.shard_sizes()],
        }


def build_layout(
    values: np.ndarray,
    n_shards: int,
    kind: str = "range",
    driving_column: str = "value",
) -> Tuple[ShardLayout, List[np.ndarray], np.ndarray]:
    """Partition ``values`` into ``n_shards`` and return the shared layout.

    Returns ``(layout, source_rows, shard_ids)`` where ``source_rows[s]``
    holds the original row numbers assigned to shard ``s`` (in their
    original order, so the partition is stable) and ``shard_ids`` is the
    per-row assignment.  Every column of the table is then gathered with
    the same ``source_rows``, keeping rows aligned across shards.

    Range boundaries are value quantiles of the data, so the base rows
    split near-evenly even when the value distribution is skewed.
    """
    values = np.asarray(values)
    if values.ndim != 1 or values.size == 0:
        raise InvalidColumnError("shard layouts require non-empty 1-D column data")
    n_shards = int(n_shards)
    if n_shards < 1:
        raise InvalidColumnError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > values.size:
        raise InvalidColumnError(
            f"cannot split {values.size} rows into {n_shards} shards"
        )
    kind = str(kind).lower()
    if kind not in ("range", "hash"):
        raise InvalidColumnError(f"unknown shard layout kind {kind!r}")

    if kind == "range" and n_shards > 1:
        quantiles = np.quantile(
            values, np.arange(1, n_shards) / n_shards, method="higher"
        )
        boundaries = np.asarray(quantiles, dtype=values.dtype)
        shard_ids = np.searchsorted(boundaries, values, side="left").astype(np.int64)
    elif kind == "hash" and n_shards > 1:
        boundaries = np.empty(0, dtype=values.dtype)
        shard_ids = _hash_shards(values, n_shards)
    else:
        boundaries = np.empty(0, dtype=values.dtype)
        shard_ids = np.zeros(values.size, dtype=np.int64)

    # Stable gather: argsort(kind="stable") groups rows by shard while
    # preserving original order inside each shard.
    order = np.argsort(shard_ids, kind="stable")
    counts = np.bincount(shard_ids, minlength=n_shards)
    offsets = np.zeros(n_shards + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    source_rows = [
        order[offsets[s] : offsets[s + 1]].astype(np.int64) for s in range(n_shards)
    ]
    # Duplicate-heavy data can starve shards: a quantile boundary repeated
    # across cuts leaves some shards empty.  Empty shards are legal (their
    # zone maps prune them everywhere) but a fully empty shard cannot host
    # a Column, so guard by collapsing to fewer effective shards is NOT
    # done here — callers see the honest layout and the sharded column
    # backfills single-row floors instead.
    layout = ShardLayout(
        kind=kind,
        n_shards=n_shards,
        driving_column=str(driving_column),
        boundaries=boundaries,
        offsets=offsets,
    )
    return layout, source_rows, shard_ids


def rebalance_empty_shards(
    layout: ShardLayout, source_rows: List[np.ndarray]
) -> List[np.ndarray]:
    """Give every empty shard one row from the largest shard.

    :class:`~repro.storage.column.Column` rejects empty data, so a layout
    whose quantile cuts starved a shard (duplicate-heavy columns) moves
    single rows from the biggest shard into the starved ones and rebuilds
    the offset map in place.  Range-routing correctness is unaffected —
    the router prunes by *observed* per-shard bounds, not by boundary
    arithmetic.
    """
    sizes = np.array([rows.size for rows in source_rows], dtype=np.int64)
    while (sizes == 0).any():
        donor = int(sizes.argmax())
        if sizes[donor] <= 1:
            raise InvalidColumnError(
                "cannot populate every shard: not enough rows"
            )
        taker = int(np.flatnonzero(sizes == 0)[0])
        source_rows[taker] = source_rows[donor][-1:]
        source_rows[donor] = source_rows[donor][:-1]
        sizes[donor] -= 1
        sizes[taker] += 1
    offsets = np.zeros(layout.n_shards + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    layout.offsets = offsets
    return source_rows
