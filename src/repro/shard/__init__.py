"""Sharded parallel execution: partitioned columns, zone-map routing,
per-shard progressive indexes and a pooled interactivity budget."""

from repro.shard.column import (
    ShardedColumn,
    ShardedDelta,
    ShardSet,
    shard_column,
    shard_table,
)
from repro.shard.executor import ParallelShardExecutor, SerialShardExecutor
from repro.shard.index import ShardedIndex, build_sharded_index, merge_phase
from repro.shard.partition import ShardLayout, build_layout
from repro.shard.router import ShardRouter

__all__ = [
    "ParallelShardExecutor",
    "SerialShardExecutor",
    "ShardLayout",
    "ShardRouter",
    "ShardSet",
    "ShardedColumn",
    "ShardedDelta",
    "ShardedIndex",
    "build_layout",
    "build_sharded_index",
    "merge_phase",
    "shard_column",
    "shard_table",
]
