"""Per-shard query execution: in-process serial, or a persistent worker pool.

Both executors answer the same question — "run this (budget-capped) query /
batch against the per-shard progressive indexes of a sharded column" — with
the same semantics, so the :class:`~repro.shard.index.ShardedIndex` facade
and the differential tests treat them interchangeably:

* :class:`SerialShardExecutor` keeps the per-shard indexes in the parent
  process and loops over the touched shards.  Writes to the parent shard
  columns are visible to the indexes' delta overlays automatically.
* :class:`ParallelShardExecutor` owns a pool of persistent worker
  *processes*.  Shard ``s`` is pinned to worker ``s % n_workers``, which
  holds that shard's index state for the life of the pool — progressive
  construction accumulates worker-side across queries exactly as it would
  in-process.  The shard base arrays are never pickled: workers re-attach
  zero-copy from the tiny descriptors produced by
  :meth:`~repro.shard.column.ShardedColumn.ensure_shareable` (a
  ``multiprocessing.shared_memory`` segment name, or a column-file path
  mapped via :mod:`repro.persist.pager`).  Delta writes are forwarded to the
  owning workers as explicit small operations over the same FIFO pipes that
  carry queries, so a worker always applies a write before any later query.

The per-shard interactivity cap is enforced here, worker-side, where the
index's cost model lives: :func:`execute_shard_query` turns the pooled
controller's per-shard total-time target ``τ_s`` into a
:class:`~repro.core.policy.CappedBudget` allowance ``max(0, τ_s -
predicted_base_cost)`` wrapped around the shard's own policy for the
duration of one query.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.index import BaseIndex
from repro.core.policy import CappedBudget, policy_from_state
from repro.core.query import Predicate
from repro.errors import ExperimentError

#: Pipe receive timeout for worker replies, in seconds.  Generous: a worker
#: may legitimately spend a long time on a large construction step, but a
#: dead worker should not hang the parent forever.
REPLY_TIMEOUT_SECONDS = 600.0


# ----------------------------------------------------------------------
# Shared per-shard execution helpers (used by both executors and workers)
# ----------------------------------------------------------------------
def execute_shard_query(
    index: BaseIndex, low, high, shard_budget: Optional[float]
) -> Tuple[object, float]:
    """Run one capped query against a shard index.

    ``shard_budget`` is the pooled controller's per-shard total-time target
    ``τ_s`` (``None`` = uncapped).  The cap is expressed as a
    :class:`~repro.core.policy.CappedBudget` allowance of indexing seconds
    — the shard's own policy keeps choosing (and learning) freely, it just
    cannot overdraw the pool.  Returns ``(result, granted_seconds)``.
    """
    predicate = Predicate(low, high)
    if shard_budget is None or shard_budget == float("inf"):
        result = index.query(predicate)
        return result, float(index.last_stats.indexing_seconds)
    base = index.predict_cost(predicate)
    allowance = (
        float(shard_budget)
        if base is None
        else max(0.0, float(shard_budget) - float(base))
    )
    cap = CappedBudget(index.budget, allowance)
    previous = index.swap_budget(cap)
    try:
        result = index.query(predicate)
    finally:
        index.swap_budget(previous)
    return result, float(cap.granted_seconds)


def shard_report(index: BaseIndex) -> dict:
    """The small per-query state echo piggybacked on every shard answer."""
    return {
        "phase": index.phase.value,
        "converged": bool(index.converged),
        "pending_merge": bool(index.has_pending_merge()),
        "queries_executed": int(index.queries_executed),
    }


def shard_status(index: BaseIndex) -> dict:
    """Full per-shard status (mirrors one ``session.status()`` entry)."""
    return {
        "algorithm": index.name,
        "phase": index.phase.value,
        "converged": bool(index.converged),
        "queries_executed": int(index.queries_executed),
        "memory_bytes": int(index.memory_footprint()),
        "budget": index.budget.describe(),
        "phase_stats": index.lifecycle.snapshot(),
        "writes": index.overlay_stats(),
    }


def _run_shard_batch(index: BaseIndex, lows, highs) -> Tuple[list, list, dict]:
    """Execute a per-shard sub-batch through the standard batch machinery.

    Reuses :class:`~repro.engine.batch.BatchExecutor` unchanged, so the
    per-shard pooled reservoir, the progressive front-loading and the
    vectorized ``search_many`` tail all behave exactly as they do on an
    unsharded index.
    """
    from repro.engine.batch import BatchExecutor

    predicates = [Predicate(low, high) for low, high in zip(lows, highs)]
    batch = BatchExecutor().execute(index, predicates)
    sums = [result.value_sum for result in batch.results]
    counts = [int(result.count) for result in batch.results]
    return sums, counts, shard_report(index)


# ----------------------------------------------------------------------
# Serial executor
# ----------------------------------------------------------------------
class SerialShardExecutor:
    """Loops over the touched shards in the parent process.

    The per-shard indexes are built over the parent's live shard columns, so
    delta-store writes are visible to their overlays without any forwarding.
    """

    parallelism = 1

    def __init__(self, indexes: Sequence[BaseIndex]) -> None:
        self._indexes = list(indexes)

    @property
    def indexes(self) -> List[BaseIndex]:
        """The per-shard indexes (exposed for tests and status)."""
        return self._indexes

    def query(
        self, shard_numbers: Sequence[int], low, high, shard_budget: Optional[float],
        trace_ctx: Optional[dict] = None,
    ) -> Dict[int, tuple]:
        """``{shard: (value_sum, count, granted_seconds, report)}``.

        ``trace_ctx`` is accepted for signature parity with the parallel
        executor; in-process the tracer's ambient current span already
        parents the per-shard spans.
        """
        tracer = obs.tracer()
        answers: Dict[int, tuple] = {}
        for shard_number in shard_numbers:
            index = self._indexes[int(shard_number)]
            if tracer.enabled:
                with tracer.span("shard.query", shard=int(shard_number)):
                    result, granted = execute_shard_query(index, low, high, shard_budget)
            else:
                result, granted = execute_shard_query(index, low, high, shard_budget)
            answers[int(shard_number)] = (
                result.value_sum,
                int(result.count),
                granted,
                shard_report(index),
            )
        return answers

    def execute_batch(self, per_shard: Dict[int, tuple]) -> Dict[int, tuple]:
        """``{shard: (sums, counts, report)}`` for per-shard sub-batches."""
        answers: Dict[int, tuple] = {}
        for shard_number, (lows, highs) in per_shard.items():
            answers[int(shard_number)] = _run_shard_batch(
                self._indexes[int(shard_number)], lows, highs
            )
        return answers

    def search_many(self, per_shard: Dict[int, tuple]) -> Dict[int, Optional[tuple]]:
        """Read-only vectorized lookups; ``None`` per shard that cannot yet."""
        answers: Dict[int, Optional[tuple]] = {}
        for shard_number, (lows, highs) in per_shard.items():
            answered = self._indexes[int(shard_number)].search_many(lows, highs)
            if answered is None:
                answers[int(shard_number)] = None
            else:
                sums, counts = answered
                answers[int(shard_number)] = (list(sums), [int(c) for c in counts])
        return answers

    def status(self) -> Dict[int, dict]:
        return {
            shard_number: shard_status(index)
            for shard_number, index in enumerate(self._indexes)
        }

    def close(self) -> None:
        """Nothing to release in-process."""

    def __enter__(self) -> "SerialShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _attach_shard_column(descriptor: dict, name: str):
    """Rebuild a shard's column zero-copy from its share descriptor.

    Returns ``(column, segment_or_None)``; the caller must keep the
    shared-memory segment referenced while the column is alive.
    """
    from repro.storage.column import Column

    if descriptor["kind"] == "file":
        return Column.from_file(descriptor["path"], name=name), None
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=descriptor["name"])
    # Attaching re-registers the segment name, but workers inherit the
    # parent's resource-tracker process, whose registry is a set — the
    # parent's create already holds the entry and its unlink (the
    # ShardedColumn finalizer) balances it, so no per-worker unregister
    # is needed (and an extra one would desync the tracker).
    array = np.ndarray(
        (int(descriptor["size"]),),
        dtype=np.dtype(descriptor["dtype"]),
        buffer=segment.buf,
    )
    return Column(array, name=name), segment


def _worker_main(connection, shard_numbers: List[int], spec: dict) -> None:
    """Entry point of one pool worker: build shard indexes, serve tasks.

    The worker owns the full index state of its shards; tasks arrive over a
    FIFO pipe so a forwarded write is always applied before any query sent
    after it.  Tasks that expect no reply (writes) defer their errors to the
    next replying task rather than dying silently.
    """
    from repro.engine.registry import create_index

    columns = {}
    segments = []
    indexes = {}
    for shard_number, descriptor in zip(shard_numbers, spec["descriptors"]):
        column, segment = _attach_shard_column(descriptor, spec["column_name"])
        columns[shard_number] = column
        if segment is not None:
            segments.append(segment)
        policy_state = spec.get("policy")
        indexes[shard_number] = create_index(
            spec["algorithm"],
            column,
            budget=(
                policy_from_state(policy_state)
                if policy_state is not None
                else None
            ),
            constants=spec.get("constants"),
            **spec.get("kwargs", {}),
        )

    deferred_error: Optional[str] = None
    while True:
        try:
            kind, payload = connection.recv()
        except (EOFError, OSError):
            break
        if kind == "close":
            connection.send(("ok", None))
            break
        expects_reply = kind not in ("insert", "delete")
        try:
            if deferred_error is not None:
                error, deferred_error = deferred_error, None
                raise ExperimentError(
                    f"a forwarded shard write failed in this worker:\n{error}"
                )
            if kind == "query":
                # Traced dispatches wrap the items in a dict carrying the
                # parent's trace context; the worker activates it, captures
                # every span finished inside, and ships them back in the
                # reply so the parent's trace shows the per-shard children.
                trace_ctx = None
                items = payload
                if isinstance(payload, dict):
                    trace_ctx = payload.get("trace")
                    items = payload["items"]
                tracer = obs.tracer()
                with tracer.collect(trace_ctx) as captured:
                    answers = {}
                    for shard_number, low, high, shard_budget in items:
                        if trace_ctx is not None:
                            with tracer.span("shard.query", shard=shard_number,
                                             worker_pid=os.getpid()):
                                result, granted = execute_shard_query(
                                    indexes[shard_number], low, high, shard_budget
                                )
                        else:
                            result, granted = execute_shard_query(
                                indexes[shard_number], low, high, shard_budget
                            )
                        answers[shard_number] = (
                            result.value_sum,
                            int(result.count),
                            granted,
                            shard_report(indexes[shard_number]),
                        )
                if trace_ctx is not None:
                    reply = {"answers": answers, "spans": captured}
                else:
                    reply = answers
            elif kind == "batch":
                reply = {
                    shard_number: _run_shard_batch(indexes[shard_number], lows, highs)
                    for shard_number, lows, highs in payload
                }
            elif kind == "search":
                reply = {}
                for shard_number, lows, highs in payload:
                    answered = indexes[shard_number].search_many(lows, highs)
                    if answered is None:
                        reply[shard_number] = None
                    else:
                        sums, counts = answered
                        reply[shard_number] = (list(sums), [int(c) for c in counts])
            elif kind == "insert":
                for shard_number, values in payload:
                    columns[shard_number].insert(values)
                continue
            elif kind == "delete":
                for shard_number, local_rids in payload:
                    columns[shard_number].delete_rows(local_rids)
                continue
            elif kind == "status":
                reply = {
                    shard_number: shard_status(index)
                    for shard_number, index in indexes.items()
                }
            else:
                raise ExperimentError(f"unknown shard-worker task {kind!r}")
        except Exception:
            message = traceback.format_exc()
            if expects_reply:
                connection.send(("err", message))
            else:
                deferred_error = message
            continue
        connection.send(("ok", reply))
    connection.close()


# ----------------------------------------------------------------------
# Parallel executor
# ----------------------------------------------------------------------
def _shutdown_workers(workers: list) -> None:
    """Best-effort pool teardown shared by close() and the GC finalizer."""
    for connection, process in workers:
        try:
            connection.send(("close", None))
        except (BrokenPipeError, OSError):
            pass
    for connection, process in workers:
        try:
            if connection.poll(1.0):
                connection.recv()
        except (EOFError, OSError):
            pass
        try:
            connection.close()
        except OSError:
            pass
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join(timeout=5.0)
    workers.clear()


class ParallelShardExecutor:
    """A persistent worker pool owning the per-shard index state.

    Parameters
    ----------
    column:
        The sharded column; :meth:`~repro.shard.column.ShardedColumn.
        ensure_shareable` must be callable (no writes yet), and its write
        stream is mirrored into the workers from here on.
    algorithm:
        Registry acronym of the per-shard index family.
    policy_state:
        :func:`~repro.core.policy.policy_state_dict` of the per-shard budget
        policy (every shard rebuilds its own independent instance).
    constants:
        Optional :class:`~repro.core.calibration.CostConstants` shared by
        the shard indexes (small frozen dataclass, shipped by value).
    n_workers:
        Worker processes; clamped to the shard count.
    spill_dir:
        Forwarded to ``ensure_shareable``: write shard bases as mmap'd
        column files here instead of anonymous shared memory.
    index_kwargs:
        Extra keyword arguments for the per-shard index constructors.
    """

    def __init__(
        self,
        column,
        algorithm: str,
        policy_state: dict,
        constants=None,
        n_workers: int = 2,
        spill_dir: Optional[str] = None,
        index_kwargs: Optional[dict] = None,
    ) -> None:
        descriptors = column.ensure_shareable(spill_dir)
        n_shards = column.n_shards
        n_workers = max(1, min(int(n_workers), n_shards))
        self.parallelism = n_workers
        self._owner = [shard % n_workers for shard in range(n_shards)]
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._workers: List[tuple] = []
        for worker_number in range(n_workers):
            owned = [
                shard for shard in range(n_shards)
                if self._owner[shard] == worker_number
            ]
            spec = {
                "descriptors": [descriptors[shard] for shard in owned],
                "column_name": column.name,
                "algorithm": str(algorithm),
                "policy": policy_state,
                "constants": constants,
                "kwargs": dict(index_kwargs or {}),
            }
            parent_connection, child_connection = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_connection, owned, spec),
                daemon=True,
                name=f"shard-worker-{worker_number}",
            )
            process.start()
            child_connection.close()
            self._workers.append((parent_connection, process))
        self._column = column
        self._listener = self._forward_write
        column.add_write_listener(self._listener)
        self._finalizer = weakref.finalize(self, _shutdown_workers, self._workers)

    # ------------------------------------------------------------------
    def _collect(self, tasks: Dict[int, tuple]) -> Dict[int, object]:
        """Send one task per worker, then gather the raw per-worker replies.

        ``tasks`` maps worker number to a ``(kind, payload)`` tuple.  Sends
        complete before any receive so the workers run concurrently.
        """
        for worker_number, message in tasks.items():
            self._workers[worker_number][0].send(message)
        replies: Dict[int, object] = {}
        for worker_number in tasks:
            connection = self._workers[worker_number][0]
            if not connection.poll(REPLY_TIMEOUT_SECONDS):
                raise ExperimentError(
                    f"shard worker {worker_number} did not reply within "
                    f"{REPLY_TIMEOUT_SECONDS:.0f}s"
                )
            status, payload = connection.recv()
            if status == "err":
                raise ExperimentError(
                    f"shard worker {worker_number} failed:\n{payload}"
                )
            replies[worker_number] = payload
        return replies

    def _dispatch(self, tasks: Dict[int, tuple]) -> Dict[int, object]:
        """Like :meth:`_collect`, but merges the per-shard reply dicts."""
        merged: Dict[int, object] = {}
        for payload in self._collect(tasks).values():
            merged.update(payload)
        return merged

    def _group(self, items) -> Dict[int, list]:
        """Group per-shard task items by owning worker."""
        grouped: Dict[int, list] = {}
        for item in items:
            grouped.setdefault(self._owner[int(item[0])], []).append(item)
        return grouped

    # ------------------------------------------------------------------
    def query(
        self, shard_numbers: Sequence[int], low, high, shard_budget: Optional[float],
        trace_ctx: Optional[dict] = None,
    ) -> Dict[int, tuple]:
        items = [
            (int(shard_number), low, high, shard_budget)
            for shard_number in shard_numbers
        ]
        if trace_ctx is None:
            tasks = {
                worker: ("query", grouped)
                for worker, grouped in self._group(items).items()
            }
            return self._dispatch(tasks)
        # Traced dispatch: forward the trace context over the pipes and
        # merge the workers' captured child spans into this process's
        # tracer before returning the answers.
        tasks = {
            worker: ("query", {"items": grouped, "trace": trace_ctx})
            for worker, grouped in self._group(items).items()
        }
        merged: Dict[int, tuple] = {}
        tracer = obs.tracer()
        for payload in self._collect(tasks).values():
            merged.update(payload["answers"])
            tracer.ingest(payload["spans"])
        return merged

    def execute_batch(self, per_shard: Dict[int, tuple]) -> Dict[int, tuple]:
        items = [
            (int(shard_number), np.asarray(lows), np.asarray(highs))
            for shard_number, (lows, highs) in per_shard.items()
        ]
        tasks = {
            worker: ("batch", grouped)
            for worker, grouped in self._group(items).items()
        }
        return self._dispatch(tasks)

    def search_many(self, per_shard: Dict[int, tuple]) -> Dict[int, Optional[tuple]]:
        items = [
            (int(shard_number), np.asarray(lows), np.asarray(highs))
            for shard_number, (lows, highs) in per_shard.items()
        ]
        tasks = {
            worker: ("search", grouped)
            for worker, grouped in self._group(items).items()
        }
        return self._dispatch(tasks)

    def status(self) -> Dict[int, dict]:
        tasks = {
            worker_number: ("status", None)
            for worker_number in range(len(self._workers))
        }
        return self._dispatch(tasks)

    # ------------------------------------------------------------------
    def _forward_write(self, op: dict) -> None:
        """Mirror a parent-side shard write into the owning workers."""
        if op.get("op") == "insert":
            shard_ids = np.asarray(op["shard_ids"])
            values = np.asarray(op["values"])
            items = [
                (int(shard_number), values[shard_ids == shard_number])
                for shard_number in np.unique(shard_ids)
            ]
            kind = "insert"
        elif op.get("op") == "delete":
            items = [
                (int(shard_number), local_rids)
                for shard_number, local_rids in op["per_shard"].items()
            ]
            kind = "delete"
        else:  # pragma: no cover - future op kinds
            return
        for worker_number, grouped in self._group(items).items():
            self._workers[worker_number][0].send((kind, grouped))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._listener is not None:
            self._column.remove_write_listener(self._listener)
            self._listener = None
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None

    def __enter__(self) -> "ParallelShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
