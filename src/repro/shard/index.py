"""The sharded-index facade: one logical progressive index over K shards.

:class:`ShardedIndex` glues the sharding layers together behind (a large
subset of) the :class:`~repro.core.index.BaseIndex` surface the engine
already speaks:

* the :class:`~repro.shard.router.ShardRouter` prunes shards whose
  delta-aware zone maps prove they hold no qualifying rows;
* the :class:`~repro.core.policy.PooledBudgetController` splits the logical
  query's interactivity budget τ across the surviving shards (pruned shards
  donate their slice);
* a :class:`~repro.shard.executor.SerialShardExecutor` or
  :class:`~repro.shard.executor.ParallelShardExecutor` runs the per-shard
  capped queries and streams back ``(sum, count, granted, phase)`` echoes.

Each shard's index progresses through its *own*
:class:`~repro.core.phase.IndexLifecycle`; the facade reports the merged
view (a logical phase, summed per-phase counters) so ``session.status()``
and the experiment reports keep their shape.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from time import perf_counter

from repro import obs
from repro.core.phase import IndexPhase
from repro.core.policy import (
    BudgetPolicy,
    CostModelGreedy,
    PooledBudgetController,
    policy_from_state,
    policy_state_dict,
)
from repro.core.query import Predicate, QueryResult
from repro.errors import ExperimentError
from repro.shard.column import ShardedColumn, shard_column
from repro.shard.executor import ParallelShardExecutor, SerialShardExecutor
from repro.shard.router import ShardRouter
from repro.storage.column import Column


def merge_phase(phases: List[IndexPhase]) -> IndexPhase:
    """The logical phase of a set of per-shard lifecycles.

    All shards converged → ``CONVERGED``; every unconverged shard merging →
    ``MERGE``; otherwise the earliest (least-advanced) active phase, so the
    facade never over-reports progress.
    """
    if all(phase is IndexPhase.CONVERGED for phase in phases):
        return IndexPhase.CONVERGED
    active = [phase for phase in phases if phase is not IndexPhase.CONVERGED]
    pending = [phase for phase in active if phase is not IndexPhase.MERGE]
    if not pending:
        return IndexPhase.MERGE
    return min(pending)


def merge_phase_snapshots(snapshots: List[dict]) -> Dict[str, dict]:
    """Sum per-shard :meth:`IndexLifecycle.snapshot` dicts phase by phase."""
    merged: Dict[str, dict] = {}
    for snapshot in snapshots:
        for phase_name, stats in snapshot.items():
            bucket = merged.setdefault(
                phase_name, {"queries": 0, "indexing_seconds": 0.0}
            )
            bucket["queries"] += int(stats.get("queries", 0))
            bucket["indexing_seconds"] += float(stats.get("indexing_seconds", 0.0))
    order = {phase.value: phase.order for phase in IndexPhase}
    return {
        name: merged[name] for name in sorted(merged, key=lambda n: order.get(n, 99))
    }


def merge_overlay_stats(stats: List[dict]) -> dict:
    """Merge per-shard overlay stats: booleans ``any()``, numbers summed."""
    merged: dict = {}
    for entry in stats:
        for key, value in entry.items():
            if isinstance(value, bool):
                merged[key] = bool(merged.get(key, False)) or value
            elif isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
            else:  # pragma: no cover - non-numeric stats pass through
                merged.setdefault(key, value)
    return merged


class _MergedLifecycle:
    """Read-only lifecycle facade summing the per-shard lifecycles."""

    def __init__(self, owner: "ShardedIndex") -> None:
        self._owner = owner

    @property
    def phase(self) -> IndexPhase:
        return self._owner.phase

    def snapshot(self) -> Dict[str, dict]:
        status = self._owner._collect_status()
        return merge_phase_snapshots(
            [entry["phase_stats"] for entry in status.values()]
        )


class ShardedIndex:
    """One logical progressive index over a :class:`ShardedColumn`.

    Speaks the engine-facing slice of the :class:`~repro.core.index.
    BaseIndex` protocol — ``query``, ``search_many``, ``phase``,
    ``converged``, ``lifecycle``, ``budget``, ``overlay_stats``,
    ``memory_footprint`` — plus :meth:`execute_batch`, which the batch
    executor delegates whole batches to (per-shard sub-batches reuse the
    standard pooled batch machinery inside each shard).
    """

    #: Batch-protocol hints (mirrors :class:`BaseIndex` class attributes).
    eager_batch = False
    concurrent_reads = False
    description = "sharded progressive index with zone-map routing"

    def __init__(
        self,
        column: ShardedColumn,
        router: ShardRouter,
        executor,
        controller: PooledBudgetController,
        algorithm: str,
    ) -> None:
        self._column = column
        self._router = router
        self._executor = executor
        self._controller = controller
        self._algorithm = str(algorithm).upper()
        n_shards = column.n_shards
        self._phases = [IndexPhase.INACTIVE] * n_shards
        self._converged_flags = [False] * n_shards
        self._pending_flags = [False] * n_shards
        self._queries = 0
        self._lifecycle = _MergedLifecycle(self)
        self._status_cache: Optional[tuple] = None
        self._closed = False
        # Parent-side latency histogram: with a parallel executor the
        # per-shard BaseIndex histograms live in the worker processes, so
        # this is the registry's end-to-end view of a sharded query.
        registry = obs.metrics()
        self._obs_query_seconds = registry.histogram(
            "shard.query.seconds",
            help="Routed sharded-query latency (routing + dispatch + merge)",
            algorithm=self._algorithm,
        )
        self._obs_pruned = registry.counter(
            "shard.pruned",
            help="Shards skipped by the zone-map router",
        )

    # ------------------------------------------------------------------
    # Identity / lifecycle surface
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Report as the per-shard algorithm so result tables stay keyed
        by the paper acronyms; :meth:`describe` carries the sharding."""
        return self._algorithm

    @property
    def column(self) -> ShardedColumn:
        return self._column

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def n_shards(self) -> int:
        return self._column.n_shards

    @property
    def parallelism(self) -> int:
        return self._executor.parallelism

    @property
    def budget(self) -> PooledBudgetController:
        """The pooled τ controller (exposes ``describe()`` for status)."""
        return self._controller

    @property
    def lifecycle(self) -> _MergedLifecycle:
        return self._lifecycle

    @property
    def phase(self) -> IndexPhase:
        if self._queries == 0:
            return IndexPhase.INACTIVE
        return merge_phase(self._shard_phases())

    @property
    def converged(self) -> bool:
        return all(self._shard_converged())

    @property
    def queries_executed(self) -> int:
        """Logical queries answered through the facade."""
        return self._queries

    def describe(self) -> str:
        return (
            f"{self._algorithm}x{self.n_shards} "
            f"({self._column.layout.kind} shards, "
            f"parallelism={self.parallelism}): {self.description}"
        )

    def _shard_phases(self) -> List[IndexPhase]:
        if isinstance(self._executor, SerialShardExecutor):
            return [index.phase for index in self._executor.indexes]
        return list(self._phases)

    def _shard_converged(self) -> List[bool]:
        if isinstance(self._executor, SerialShardExecutor):
            return [index.converged for index in self._executor.indexes]
        return list(self._converged_flags)

    def has_pending_merge(self) -> bool:
        if isinstance(self._executor, SerialShardExecutor):
            return any(
                index.has_pending_merge() for index in self._executor.indexes
            )
        return any(self._pending_flags)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _apply_report(self, shard_number: int, report: dict) -> None:
        self._phases[shard_number] = IndexPhase(report["phase"])
        self._converged_flags[shard_number] = bool(report["converged"])
        self._pending_flags[shard_number] = bool(report["pending_merge"])

    def query(self, predicate: Predicate) -> QueryResult:
        """Answer one logical range query across the surviving shards."""
        hist = self._obs_query_seconds
        tracer = obs.tracer()
        if hist or tracer.enabled:
            started = perf_counter()
        span = None
        if tracer.enabled:
            span = tracer.start("shard.route", {
                "algorithm": self._algorithm, "n_shards": self.n_shards,
            })
        try:
            survivors = self._router.route(predicate.low, predicate.high)
            self._queries += 1
            self._status_cache = None
            pruned = self.n_shards - int(survivors.size)
            if pruned and hist:
                self._obs_pruned.inc(pruned)
            if span is not None:
                span.set(survivors=int(survivors.size), pruned=pruned)
            if survivors.size == 0:
                self._controller.charge(0, 0.0)
                return QueryResult.empty()
            shard_budget = self._controller.shard_budget(int(survivors.size))
            answers = self._executor.query(
                [int(s) for s in survivors], predicate.low, predicate.high,
                shard_budget, trace_ctx=tracer.context(),
            )
            total = QueryResult.empty()
            granted = 0.0
            for shard_number in sorted(answers):
                value_sum, count, shard_granted, report = answers[shard_number]
                total += QueryResult(value_sum, int(count))
                granted += float(shard_granted)
                self._apply_report(int(shard_number), report)
            self._controller.charge(int(survivors.size), granted)
            return total
        finally:
            if span is not None:
                span.end()
            if hist:
                hist.observe(perf_counter() - started)

    def execute_batch(self, lows, highs) -> List[QueryResult]:
        """Answer a whole batch, routed per query, sub-batched per shard.

        The batch executor delegates here instead of running its own
        per-query loop: each shard receives only the queries whose zone
        maps it survives, and runs them through the standard per-shard
        batch machinery (pooled reservoir, construction front-loading,
        vectorized converged tail).  Per-query answers are scatter-added
        back into batch order; queries pruned everywhere come back empty.
        """
        lows = np.atleast_1d(np.asarray(lows))
        highs = np.atleast_1d(np.asarray(highs))
        matrix = self._router.route_many(lows, highs)
        n_queries = int(lows.size)
        sum_dtype = (
            np.int64 if self._column.dtype.kind in "iu" else np.float64
        )
        sums = np.zeros(n_queries, dtype=sum_dtype)
        counts = np.zeros(n_queries, dtype=np.int64)
        per_shard: Dict[int, tuple] = {}
        for shard_number in range(self.n_shards):
            rows = np.flatnonzero(matrix[:, shard_number])
            if rows.size:
                per_shard[shard_number] = (lows[rows], highs[rows])
        if per_shard:
            answers = self._executor.execute_batch(per_shard)
            for shard_number, (shard_sums, shard_counts, report) in answers.items():
                rows = np.flatnonzero(matrix[:, shard_number])
                sums[rows] += np.asarray(shard_sums, dtype=sum_dtype)
                counts[rows] += np.asarray(shard_counts, dtype=np.int64)
                self._apply_report(int(shard_number), report)
        touched = matrix.sum(axis=1)
        for query_number in range(n_queries):
            self._controller.charge(int(touched[query_number]), 0.0)
        self._queries += n_queries
        self._status_cache = None
        return [
            QueryResult(sums[query_number], int(counts[query_number]))
            for query_number in range(n_queries)
        ]

    def search_many(self, lows, highs):
        """Vectorized read-only lookups; ``None`` until every touched
        shard can answer without further indexing work."""
        lows = np.atleast_1d(np.asarray(lows))
        highs = np.atleast_1d(np.asarray(highs))
        matrix = self._router.route_many(lows, highs)
        sum_dtype = (
            np.int64 if self._column.dtype.kind in "iu" else np.float64
        )
        sums = np.zeros(lows.size, dtype=sum_dtype)
        counts = np.zeros(lows.size, dtype=np.int64)
        per_shard: Dict[int, tuple] = {}
        for shard_number in range(self.n_shards):
            rows = np.flatnonzero(matrix[:, shard_number])
            if rows.size:
                per_shard[shard_number] = (lows[rows], highs[rows])
        if per_shard:
            answers = self._executor.search_many(per_shard)
            for shard_number, answer in answers.items():
                if answer is None:
                    return None
                shard_sums, shard_counts = answer
                rows = np.flatnonzero(matrix[:, shard_number])
                sums[rows] += np.asarray(shard_sums, dtype=sum_dtype)
                counts[rows] += np.asarray(shard_counts, dtype=np.int64)
        return sums, counts

    def predict_cost(self, predicate: Predicate):
        """No unified cost model across shards (per-shard models live with
        the shard indexes); the engine treats ``None`` as unknown."""
        return None

    def predicted_cost(self, predicate: Predicate, delta: float):
        return None

    def swap_budget(self, budget: BudgetPolicy):
        raise ExperimentError(
            "sharded indexes pool their budget internally (per-shard "
            "CappedBudget under the PooledBudgetController); install the "
            "policy on the per-shard indexes at creation time instead"
        )

    # ------------------------------------------------------------------
    # Status / accounting
    # ------------------------------------------------------------------
    def _collect_status(self) -> Dict[int, dict]:
        """Per-shard status dicts, cached per (queries, column version)."""
        key = (self._queries, self._column.version)
        if self._status_cache is not None and self._status_cache[0] == key:
            return self._status_cache[1]
        status = self._executor.status()
        for shard_number, entry in status.items():
            self._phases[int(shard_number)] = IndexPhase(entry["phase"])
            self._converged_flags[int(shard_number)] = bool(entry["converged"])
        self._status_cache = (key, status)
        return status

    def memory_footprint(self) -> int:
        status = self._collect_status()
        return int(sum(entry["memory_bytes"] for entry in status.values()))

    def overlay_stats(self) -> dict:
        status = self._collect_status()
        return merge_overlay_stats([entry["writes"] for entry in status.values()])

    def shard_status(self) -> dict:
        """The ``sharding`` block of a ``session.status()`` entry."""
        status = self._collect_status()
        return {
            "layout": self._column.layout.describe(),
            "router": self._router.describe(),
            "pool": self._controller.snapshot(),
            "executor": (
                "serial"
                if isinstance(self._executor, SerialShardExecutor)
                else "parallel"
            ),
            "parallelism": self.parallelism,
            "shards": {
                int(shard_number): entry for shard_number, entry in status.items()
            },
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the executor (worker pool); idempotent.

        Shared-memory segments are owned by the column and released by its
        finalizer — a closed index leaves the column readable.
        """
        if not self._closed:
            self._executor.close()
            self._closed = True

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedIndex({self._algorithm!r}, shards={self.n_shards}, "
            f"parallelism={self.parallelism}, queries={self._queries})"
        )


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
def build_sharded_index(
    column,
    algorithm: str,
    *,
    shards: int = 4,
    kind: str = "range",
    parallel: bool = False,
    workers: Optional[int] = None,
    budget: Optional[BudgetPolicy] = None,
    interactivity_budget: Optional[float] = None,
    constants=None,
    router_bins: bool = False,
    spill_dir: Optional[str] = None,
    **kwargs,
) -> ShardedIndex:
    """Build a :class:`ShardedIndex` over a column.

    Parameters
    ----------
    column:
        A :class:`~repro.shard.column.ShardedColumn` (pre-partitioned, e.g.
        by ``shard_table``; ``shards``/``kind`` are then ignored), a plain
        :class:`~repro.storage.column.Column`, or raw array data.
    algorithm:
        Registry acronym of the per-shard index family (``PQ``, ``STD``, …).
    shards:
        Partition count K when ``column`` is not yet sharded.
    kind:
        ``"range"`` (zone-map routable) or ``"hash"`` partitioning.
    parallel:
        Dispatch per-shard work to a persistent worker-process pool; the
        shard bases are shared zero-copy (must be requested before any
        write lands on the column).
    workers:
        Worker processes for the parallel pool (default: CPU count,
        clamped to K).
    budget / interactivity_budget:
        The per-shard budget policy (every shard gets an independent clone)
        — at most one of the two; ``interactivity_budget`` is sugar for
        :class:`~repro.core.policy.CostModelGreedy` and additionally arms
        the pooled τ controller so pruned shards donate their slice.
    constants:
        Optional calibrated cost constants shared by the shard indexes.
    router_bins:
        Build per-shard bin-occupancy bitmaps on top of the min/max zone
        maps (extra pruning for hash layouts).
    spill_dir:
        Share shard bases as mmap'd column files here instead of anonymous
        shared memory (parallel mode only).
    kwargs:
        Extra keyword arguments for the per-shard index constructors.
    """
    if not isinstance(column, ShardedColumn):
        if not isinstance(column, Column):
            column = Column(np.asarray(column))
        column = shard_column(column, shards, kind=kind)

    if interactivity_budget is not None:
        if budget is not None:
            raise ExperimentError(
                "provide at most one of budget or interactivity_budget"
            )
        budget = CostModelGreedy(interactivity_budget=interactivity_budget)
    tau = getattr(budget, "interactivity_budget", None)
    policy_state = policy_state_dict(budget) if budget is not None else None

    def clone_policy() -> Optional[BudgetPolicy]:
        return policy_from_state(policy_state) if policy_state is not None else None

    if parallel:
        n_workers = workers if workers is not None else (os.cpu_count() or 1)
        executor = ParallelShardExecutor(
            column,
            str(algorithm),
            policy_state,
            constants=constants,
            n_workers=int(n_workers),
            spill_dir=spill_dir,
            index_kwargs=kwargs,
        )
    else:
        from repro.engine.registry import create_index

        executor = SerialShardExecutor(
            [
                create_index(
                    str(algorithm),
                    shard,
                    budget=clone_policy(),
                    constants=constants,
                    **kwargs,
                )
                for shard in column.shards
            ]
        )
    router = ShardRouter(column, bin_bits=router_bins)
    controller = PooledBudgetController(
        interactivity_budget=tau,
        n_shards=column.n_shards,
        parallelism=executor.parallelism,
    )
    return ShardedIndex(column, router, executor, controller, algorithm)
