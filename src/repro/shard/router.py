"""Zone-map shard routing: prune shards a predicate cannot touch.

The :class:`ShardRouter` keeps two zone-map layers per shard, both served
by the shared vectorized primitives in :mod:`repro.shard.zonemaps`:

* **delta-aware min/max bounds** — base extremes (immutable) widened by
  every insert's extremes; deletes are conservatively ignored, so a shard
  outside its bounds *provably* contains no qualifying row;
* optional **bin occupancy bitmaps** — 64 equi-width bins over the global
  domain, one ``uint64`` per shard, refined with every insert.  For range
  layouts the interval bounds already carry the routing; bitmaps earn
  their keep on hash layouts with clustered values, where the interval
  test alone cannot prune.

Pruned shards never receive the query, and under the pooled budget
controller their interactivity budget flows to the surviving shards.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.shard import zonemaps
from repro.shard.column import ShardedColumn


class ShardRouter:
    """Routes range predicates to the shards that may contain matches.

    Parameters
    ----------
    column:
        The sharded column whose shard bounds drive the routing.
    bin_bits:
        Build per-shard occupancy bitmaps (one pass over the base data) in
        addition to the min/max bounds.  Adds pruning power inside the
        bounds for hash layouts; range layouts rarely need it.
    n_bins:
        Number of equi-width bins for the bitmaps (max 64).
    """

    def __init__(
        self,
        column: ShardedColumn,
        bin_bits: bool = False,
        n_bins: int = zonemaps.MAX_BINS,
    ) -> None:
        self._column = column
        self._edges: Optional[np.ndarray] = None
        self._bitmaps: Optional[np.ndarray] = None
        self.queries_routed = 0
        self.shards_pruned = 0
        self.shards_dispatched = 0
        if bin_bits:
            low = float(min(s.base_data.min() for s in column.shards))
            high = float(max(s.base_data.max() for s in column.shards))
            self._edges = zonemaps.bin_edges(low, high, n_bins)
            self._bitmaps = np.array(
                [
                    zonemaps.occupancy_bitmap(self._edges, shard.base_data)
                    for shard in column.shards
                ],
                dtype=np.uint64,
            )
            column.add_write_listener(self._absorb_write)

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self._column.n_shards

    def _absorb_write(self, op: dict) -> None:
        """Widen the bitmaps with inserted values (deletes are ignored)."""
        if op.get("op") != "insert" or self._bitmaps is None:
            return
        shard_ids = op["shard_ids"]
        values = op["values"]
        for shard_number in np.unique(shard_ids):
            chunk = values[shard_ids == shard_number]
            self._bitmaps[int(shard_number)] |= zonemaps.occupancy_bitmap(
                self._edges, chunk
            )

    # ------------------------------------------------------------------
    def route(self, low, high) -> np.ndarray:
        """Shard ids (ascending) that may contain rows in ``[low, high]``."""
        mins, maxs = self._column.shard_bounds()
        survivors = zonemaps.interval_candidates(mins, maxs, low, high)
        if self._bitmaps is not None and survivors.size:
            query = zonemaps.query_bitmap(self._edges, low, high)
            hits = zonemaps.bitmap_candidates(self._bitmaps[survivors], query)
            survivors = survivors[hits]
        self.queries_routed += 1
        self.shards_dispatched += int(survivors.size)
        self.shards_pruned += self.n_shards - int(survivors.size)
        return survivors

    def route_many(self, lows, highs) -> np.ndarray:
        """Boolean ``(n_queries, n_shards)`` dispatch matrix for a batch."""
        mins, maxs = self._column.shard_bounds()
        matrix = zonemaps.interval_overlap_matrix(mins, maxs, lows, highs)
        if self._bitmaps is not None:
            for query_number, (low, high) in enumerate(zip(np.asarray(lows), np.asarray(highs))):
                if matrix[query_number].any():
                    query = zonemaps.query_bitmap(self._edges, low, high)
                    matrix[query_number] &= (self._bitmaps & query).astype(bool)
        self.queries_routed += matrix.shape[0]
        dispatched = int(matrix.sum())
        self.shards_dispatched += dispatched
        self.shards_pruned += matrix.size - dispatched
        return matrix

    # ------------------------------------------------------------------
    def pruned_fraction(self) -> float:
        """Fraction of shard dispatches the zone maps avoided so far."""
        total = self.shards_pruned + self.shards_dispatched
        return self.shards_pruned / total if total else 0.0

    def describe(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "bin_bits": self._bitmaps is not None,
            "queries_routed": int(self.queries_routed),
            "shards_dispatched": int(self.shards_dispatched),
            "shards_pruned": int(self.shards_pruned),
            "pruned_fraction": self.pruned_fraction(),
        }
