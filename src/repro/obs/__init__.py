"""``repro.obs`` — unified observability: metrics registry + trace spans.

Public surface
--------------
* :func:`metrics` — the process-wide :class:`MetricsRegistry`.  Components
  bind instruments at construction time (``obs.metrics().histogram(...)``)
  and register pull series for counters they already maintain.
* :func:`tracer` — the process-wide :class:`Tracer` (disabled by default;
  the detailed mode).  Hot paths guard on ``tracer().enabled``.
* :func:`configure` — flip metrics / tracing on or off.  Turning metrics
  *on* installs a **fresh** registry, so components constructed afterwards
  bind live instruments; turning it *off* installs a disabled registry
  whose instruments are shared no-ops (components constructed afterwards
  pay nothing).  Already-constructed components keep whatever they bound.
* :func:`span` — shorthand for ``tracer().span(...)``.

Metric names and labels are documented in ``src/repro/obs/METRICS.md``.
"""

from __future__ import annotations

from repro.obs.export import render_prometheus
from repro.obs.registry import (
    DURATION_EDGES,
    RATIO_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "metrics",
    "tracer",
    "configure",
    "span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "render_prometheus",
    "DURATION_EDGES",
    "RATIO_EDGES",
]

_metrics = MetricsRegistry(enabled=True)
_tracer = Tracer(enabled=False)


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry (swapped by :func:`configure`)."""
    return _metrics


def tracer() -> Tracer:
    """The process-wide tracer.  A stable singleton: hot paths may cache it."""
    return _tracer


def span(name: str, **attrs):
    """``with obs.span("stage"): ...`` — no-op when tracing is off."""
    return _tracer.span(name, **attrs)


def configure(*, metrics: bool | None = None, tracing: bool | None = None,
              trace_path: str | None | bool = False,
              trace_buffer: int | None = None) -> None:
    """Reconfigure the global observability state.

    Parameters
    ----------
    metrics:
        ``True`` installs a fresh enabled registry (dropping all prior
        series); ``False`` installs a disabled registry.  ``None`` leaves
        the current one.
    tracing:
        Toggle the detailed trace mode on the (stable) global tracer.
    trace_path:
        JSONL sink path for finished spans; ``None`` closes the sink.
        The default ``False`` leaves the sink untouched.
    trace_buffer:
        Resize the tracer's in-memory ring buffer.
    """
    global _metrics
    if metrics is not None:
        _metrics = MetricsRegistry(enabled=bool(metrics))
    if tracing is not None or trace_path is not False or trace_buffer is not None:
        _tracer.configure(enabled=tracing, buffer_size=trace_buffer,
                          sink_path=trace_path)
