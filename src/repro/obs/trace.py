"""Per-query trace spans: the engine's detailed (off-by-default) mode.

A :class:`Span` is a named timed interval with attributes; spans nest via
a ``contextvars`` current-span pointer, so a ``session.where`` span
started at the top of the engine automatically becomes the parent of the
``index.query`` span started three layers down, which in turn parents the
per-phase execute / overlay-correction / merge spans.  Budget decisions
attach their predicted :class:`~repro.core.cost_model.CostBreakdown` to
whatever span is current, so a tau miss is debuggable from the trace
alone.

Tracing is **disabled by default** and every instrumentation site guards
on ``tracer.enabled`` before doing any work, so the converged read path
pays one attribute read when it is off.  When on, finished spans land in
a bounded ring buffer (drained by the serve ``trace`` verb or
:meth:`Tracer.export_jsonl`) and, optionally, stream to a JSON-lines
sink file.

Cross-process propagation: :meth:`Tracer.context` captures the current
``(trace_id, span_id)`` pair as a plain dict that fits in a worker-pipe
payload; the shard worker wraps its slice of the query in
:meth:`Tracer.collect` and ships the finished span dicts back, and the
parent re-ingests them with :meth:`Tracer.ingest` so the merged trace
shows the per-shard children under the routing span that dispatched them.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = ["Span", "Tracer"]

_ids = itertools.count(1)


def _new_id() -> str:
    return f"{os.getpid():x}-{next(_ids):x}"


class Span:
    """One named, timed interval in a trace tree."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_wall",
                 "_t0", "duration", "attrs", "_tracer", "_token")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: str | None, attrs: dict | None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_wall = time.time()
        self._t0 = time.perf_counter()
        self.duration = None
        self.attrs = dict(attrs) if attrs else {}
        self._tracer = tracer
        self._token = None

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def rename(self, name: str) -> "Span":
        self.name = name
        return self

    def add_decision(self, decision: dict) -> None:
        """Attach one budget-policy delta decision to this span."""
        self.attrs.setdefault("decisions", []).append(decision)

    def end(self) -> None:
        self.duration = time.perf_counter() - self._t0
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        self.end()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start_wall,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared no-op span for disabled tracing; supports the full Span API."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    duration = None
    attrs: dict = {}

    def set(self, **attrs):
        return self

    def rename(self, name):
        return self

    def add_decision(self, decision):
        pass

    def end(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass

    def __bool__(self):
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Span factory, current-span context, ring buffer and JSONL export."""

    def __init__(self, enabled: bool = False, buffer_size: int = 4096):
        self.enabled = bool(enabled)
        self._current: contextvars.ContextVar = contextvars.ContextVar(
            "repro_obs_span", default=None
        )
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=buffer_size)
        self._sink_path: str | None = None
        self._sink = None
        self._collectors = threading.local()

    # -- configuration ----------------------------------------------------

    def configure(self, *, enabled: bool | None = None,
                  buffer_size: int | None = None,
                  sink_path: str | None | bool = False) -> None:
        """Toggle tracing, resize the ring, or (re)point the JSONL sink.

        ``sink_path=None`` closes the sink; the ``False`` default leaves
        it untouched.
        """
        with self._lock:
            if enabled is not None:
                self.enabled = bool(enabled)
            if buffer_size is not None:
                self._ring = deque(self._ring, maxlen=int(buffer_size))
            if sink_path is not False:
                if self._sink is not None:
                    self._sink.close()
                    self._sink = None
                self._sink_path = sink_path
                if sink_path:
                    self._sink = open(sink_path, "a", encoding="utf-8")

    # -- span lifecycle ---------------------------------------------------

    def current(self) -> Span | None:
        return self._current.get()

    def start(self, name: str, attrs: dict | None = None) -> Span:
        """Start a span as a child of the current one and make it current.

        Callers must balance with :meth:`Span.end` (or use :meth:`span`).
        Returns the shared no-op span when tracing is disabled.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = self._current.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = _new_id(), None
        span = Span(self, name, trace_id, parent_id, attrs)
        span._token = self._current.set(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        span = self.start(name, attrs or None)
        try:
            yield span
        except BaseException as exc:
            if span is not NULL_SPAN:
                span.attrs["error"] = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.end()

    def _finish(self, span: Span) -> None:
        if span._token is not None:
            try:
                self._current.reset(span._token)
            except ValueError:  # ended in a different context; best effort
                self._current.set(None)
            span._token = None
        record = span.to_dict()
        collector = getattr(self._collectors, "sinks", None)
        if collector:
            collector[-1].append(record)
            return
        with self._lock:
            self._ring.append(record)
            if self._sink is not None:
                self._sink.write(json.dumps(record) + "\n")
                self._sink.flush()

    # -- cross-process propagation ---------------------------------------

    def context(self) -> dict | None:
        """Wire-format handle to the current span (or ``None``)."""
        if not self.enabled:
            return None
        span = self._current.get()
        if span is None:
            return None
        return {"trace_id": span.trace_id, "span_id": span.span_id}

    @contextmanager
    def collect(self, ctx: dict | None):
        """Capture spans under a remote parent instead of the ring.

        Used on the worker side of the shard executor: everything traced
        inside the block parents onto ``ctx`` and is yielded as a list of
        span dicts for the reply pipe.  Temporarily enables tracing (the
        worker process's tracer is otherwise off).
        """
        spans: list[dict] = []
        if ctx is None:
            yield spans
            return
        sinks = getattr(self._collectors, "sinks", None)
        if sinks is None:
            sinks = self._collectors.sinks = []
        sinks.append(spans)
        was_enabled = self.enabled
        self.enabled = True
        synthetic = Span(self, "<remote-parent>", ctx["trace_id"], None, None)
        synthetic.span_id = ctx["span_id"]
        token = self._current.set(synthetic)
        try:
            yield spans
        finally:
            self._current.reset(token)
            self.enabled = was_enabled
            sinks.pop()

    def ingest(self, records: list[dict]) -> None:
        """Adopt foreign finished spans (e.g. shipped back from a worker)."""
        if not records:
            return
        collector = getattr(self._collectors, "sinks", None)
        if collector:
            collector[-1].extend(records)
            return
        with self._lock:
            for record in records:
                self._ring.append(record)
                if self._sink is not None:
                    self._sink.write(json.dumps(record) + "\n")
            if self._sink is not None:
                self._sink.flush()

    # -- export -----------------------------------------------------------

    def recent(self, limit: int | None = None) -> list[dict]:
        """Most recent finished spans, oldest first (non-destructive)."""
        with self._lock:
            records = list(self._ring)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def drain(self) -> list[dict]:
        """Return and clear the ring buffer."""
        with self._lock:
            records = list(self._ring)
            self._ring.clear()
        return records

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def export_jsonl(self, path: str) -> int:
        """Append the ring's spans to ``path`` as JSON lines; returns count."""
        records = self.recent()
        with open(path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return len(records)
