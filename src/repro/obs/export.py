"""Prometheus-style text exposition of a registry snapshot.

The wire format follows the Prometheus text exposition conventions
closely enough for standard scrapers and ``promtool`` to parse: metric
names are sanitised (dots become underscores, everything gets a
``repro_`` prefix), histograms expand to cumulative ``_bucket{le=...}``
series plus ``_sum`` and ``_count``, and counters get a ``_total``
suffix.  The input is a :meth:`MetricsRegistry.snapshot` dict, so the
renderer never touches live instruments and needs no locks.
"""

from __future__ import annotations

__all__ = ["render_prometheus", "prometheus_name"]

_PREFIX = "repro_"


def prometheus_name(name: str, kind: str = "gauge") -> str:
    base = _PREFIX + "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    if kind == "counter" and not base.endswith("_total"):
        base += "_total"
    return base


def _fmt_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key, value in sorted(merged.items()):
        escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _fmt_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus exposition text."""
    lines: list[str] = []
    seen_help: set[str] = set()
    for sample in snapshot.get("series", []):
        kind = sample.get("kind", "gauge")
        name = prometheus_name(sample["name"], kind)
        labels = sample.get("labels", {})
        if name not in seen_help:
            seen_help.add(name)
            help_text = (sample.get("help") or sample["name"]).replace("\n", " ")
            lines.append(f"# HELP {name} {help_text}")
            prom_type = "histogram" if kind == "histogram" else (
                "counter" if kind == "counter" else "gauge"
            )
            lines.append(f"# TYPE {name} {prom_type}")
        if kind == "histogram":
            cumulative = 0
            for edge, count in zip(sample["edges"], sample["buckets"]):
                cumulative += count
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, {'le': repr(float(edge))})}"
                    f" {cumulative}"
                )
            total = cumulative + sample["buckets"][len(sample["edges"])]
            lines.append(f"{name}_bucket{_fmt_labels(labels, {'le': '+Inf'})} {total}")
            lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(sample['sum'])}")
            lines.append(f"{name}_count{_fmt_labels(labels)} {total}")
        else:
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(sample.get('value'))}")
    return "\n".join(lines) + "\n"
