"""Metrics registry: counters, gauges and log-bucket histograms.

The registry is the engine's single metrics surface.  Two kinds of
instruments feed it:

* **Push** instruments (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) are bound once at component-construction time and
  updated inline on the hot path.  They are *lock-sharded*: every thread
  writes only its own cell (keyed by ``threading.get_ident()``), so
  concurrent increments are exact without a lock or an atomic in the hot
  path.  A snapshot sums the cells; because each cell is non-decreasing,
  two consecutive snapshots of a counter are monotone even while other
  threads keep incrementing.
* **Pull** series are registered with a weakly-referenced owner object and
  a getter.  Components that already maintain their own counters (the
  ``BlockCache`` hit/miss/eviction counts, the ``ScratchAllocator`` spill
  totals, an index's ``queries_executed``) cost *zero* extra work per
  operation — the registry reads them lazily at snapshot time.  When the
  owner is garbage collected the series silently disappears.

Everything here is numpy-free: histogram bucket search is a
``bisect_right`` over a fixed list of log-scale edges, and
:meth:`MetricsRegistry.snapshot` coerces every value through ``float()`` /
``int()`` so the result is JSON-serializable with no numpy scalars, even
when a pull getter returns one.
"""

from __future__ import annotations

import threading
import time
import weakref
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DURATION_EDGES",
    "RATIO_EDGES",
]

#: Default histogram edges for durations in seconds: log-scale (doubling)
#: from 1 microsecond to ~134 seconds, 28 buckets plus overflow.
DURATION_EDGES: tuple[float, ...] = tuple(1e-6 * (2.0 ** i) for i in range(28))

#: Edges for dimensionless ratios (e.g. actual/predicted cost): doubling
#: from 1/128 to 128, centred on 1.0.
RATIO_EDGES: tuple[float, ...] = tuple(2.0 ** (i - 7) for i in range(15))


def _labels_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotone counter with per-thread cells.

    ``inc`` touches only the calling thread's cell, so increments from
    concurrent threads never race; ``value`` sums a point-in-time copy of
    the cells.
    """

    kind = "counter"

    __slots__ = ("name", "help", "labels", "_cells")

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._cells: dict[int, list] = {}

    def inc(self, n: float = 1) -> None:
        cells = self._cells
        tid = threading.get_ident()
        cell = cells.get(tid)
        if cell is None:
            cell = cells[tid] = [0]
        cell[0] += n

    @property
    def value(self) -> float:
        while True:
            try:
                total = sum(cell[0] for cell in self._cells.values())
                break
            except RuntimeError:  # cells dict grew mid-iteration; retry
                continue
        return int(total) if isinstance(total, int) else float(total)

    def to_sample(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """Last-write-wins scalar.  Set rarely; read at snapshot time."""

    kind = "gauge"

    __slots__ = ("name", "help", "labels", "_value")

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, delta: float) -> None:
        # Not thread-exact (gauges are for levels, not event counts).
        self._value += float(delta)

    @property
    def value(self) -> float:
        return float(self._value)

    def to_sample(self) -> dict:
        return {"kind": "gauge", "value": self.value}


class _HistCell:
    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None


class Histogram:
    """Fixed log-scale-bucket histogram with per-thread cells.

    ``observe`` is the hot-path entry: one ``bisect_right`` over the fixed
    edge list plus three cell updates, all on this thread's private cell.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "labels", "edges", "_n", "_cells")

    def __init__(self, name: str, help: str = "",
                 edges: tuple[float, ...] = DURATION_EDGES,
                 labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.edges = tuple(float(e) for e in edges)
        self._n = len(self.edges) + 1  # +1 overflow bucket
        self._cells: dict[int, _HistCell] = {}

    def observe(self, value: float) -> None:
        cells = self._cells
        tid = threading.get_ident()
        cell = cells.get(tid)
        if cell is None:
            cell = cells[tid] = _HistCell(self._n)
        cell.counts[bisect_right(self.edges, value)] += 1
        cell.count += 1
        cell.sum += value
        if cell.min is None or value < cell.min:
            cell.min = value
        if cell.max is None or value > cell.max:
            cell.max = value

    def _merged(self) -> _HistCell:
        out = _HistCell(self._n)
        while True:
            try:
                cells = list(self._cells.values())
                break
            except RuntimeError:  # concurrent first-observe from a new thread
                continue
        for cell in cells:
            out.count += cell.count
            out.sum += cell.sum
            for i, c in enumerate(cell.counts):
                out.counts[i] += c
            if cell.min is not None and (out.min is None or cell.min < out.min):
                out.min = cell.min
            if cell.max is not None and (out.max is None or cell.max > out.max):
                out.max = cell.max
        return out

    @property
    def count(self) -> int:
        return self._merged().count

    @property
    def sum(self) -> float:
        return float(self._merged().sum)

    def to_sample(self) -> dict:
        m = self._merged()
        return {
            "kind": "histogram",
            "count": int(m.count),
            "sum": float(m.sum),
            "min": None if m.min is None else float(m.min),
            "max": None if m.max is None else float(m.max),
            "edges": [float(e) for e in self.edges],
            "buckets": [int(c) for c in m.counts],
        }


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    kind = "null"
    name = ""
    help = ""
    labels: dict = {}
    edges: tuple = ()
    value = 0
    count = 0
    sum = 0.0

    def inc(self, n: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def to_sample(self) -> dict:  # pragma: no cover - never registered
        return {"kind": "null"}

    def __bool__(self) -> bool:
        # ``if self._obs:`` guards in hot paths skip even the timer calls
        # when the registry is disabled.
        return False


_NULL = _NullInstrument()


def _scalar(value):
    """Coerce a (possibly numpy) scalar to a plain JSON-safe number."""
    if value is None or isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value
    # numpy integer / floating expose item(); anything else goes float().
    item = getattr(value, "item", None)
    if item is not None:
        value = item()
        return value if isinstance(value, (int, float)) else float(value)
    return float(value)


class MetricsRegistry:
    """Process-wide instrument factory and snapshot surface.

    Instrument creation is idempotent per ``(name, labels)``: asking twice
    returns the same object, so components can bind at construction time
    without coordinating.  A disabled registry hands out a shared no-op
    instrument (falsy, so hot paths can skip their timers entirely) and
    snapshots to an empty series list.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._instruments: dict[tuple, object] = {}
        self._pulls: dict[tuple, tuple] = {}

    # -- push instruments -------------------------------------------------

    def _instrument(self, cls, name: str, help: str, labels: dict, **kw):
        if not self.enabled:
            return _NULL
        key = (name, _labels_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, help=help, labels=labels, **kw)
                self._instruments[key] = inst
            return inst

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._instrument(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._instrument(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  edges: tuple[float, ...] = DURATION_EDGES,
                  **labels) -> Histogram:
        return self._instrument(Histogram, name, help, labels, edges=edges)

    # -- pull series ------------------------------------------------------

    def register_pull(self, name: str, owner, getter, *, kind: str = "counter",
                      help: str = "", **labels) -> None:
        """Register ``getter(owner) -> number`` as a lazily-read series.

        ``owner`` is held by weak reference: the series vanishes when the
        owner is collected.  Re-registering the same ``(name, labels)``
        replaces the previous owner (latest instance wins), which is the
        behaviour wanted when tests build engines back to back.
        """
        if not self.enabled:
            return
        key = (name, _labels_key(labels))
        with self._lock:
            self._pulls[key] = (weakref.ref(owner), getter, kind, help, dict(labels))

    # -- snapshot ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe point-in-time view of every live series."""
        series = []
        with self._lock:
            instruments = list(self._instruments.values())
            pulls = list(self._pulls.items())
        for inst in instruments:
            sample = inst.to_sample()
            sample["name"] = inst.name
            sample["labels"] = dict(inst.labels)
            sample["help"] = inst.help
            series.append(sample)
        dead = []
        for key, (ref, getter, kind, help, labels) in pulls:
            owner = ref()
            if owner is None:
                dead.append(key)
                continue
            try:
                value = getter(owner)
            except Exception:  # component mid-teardown; drop this sample
                continue
            if value is None:
                continue
            series.append({
                "kind": kind,
                "name": key[0],
                "labels": labels,
                "help": help,
                "value": _scalar(value),
            })
        if dead:
            with self._lock:
                for key in dead:
                    self._pulls.pop(key, None)
        series.sort(key=lambda s: (s["name"], sorted(s["labels"].items())))
        return {"enabled": self.enabled, "at": time.time(), "series": series}

    # -- convenience ------------------------------------------------------

    def find(self, name: str, **labels):
        """Locate a series sample by name (+ label subset) in a snapshot."""
        for sample in self.snapshot()["series"]:
            if sample["name"] != name:
                continue
            if all(sample["labels"].get(k) == str(v) or sample["labels"].get(k) == v
                   for k, v in labels.items()):
                return sample
        return None
