"""A thin synchronous client for the JSON-line query service.

:class:`ServiceClient` is what the tests, the benchmark and the README
quickstart use; it is also executable documentation of the wire protocol —
every method is one request line and one response line.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.errors import ProtocolError
from repro.serve.protocol import read_message, send_message

Address = Union[str, Tuple[str, int]]


class ServiceError(ProtocolError):
    """An ``{"ok": false}`` response from the service.

    Carries the server-side error ``code`` (exception class name or
    protocol error category) alongside the message.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServiceClient:
    """One connection to a :class:`~repro.serve.server.QueryServer`.

    Parameters
    ----------
    address:
        The server's endpoint: a Unix-socket path or ``(host, port)``.
    role:
        ``"reader"`` (pinned-snapshot queries) or ``"writer"`` (the single
        write connection).
    connection_class:
        Service class for readers (``"interactive"``, ``"batch"``, ...).
    """

    def __init__(
        self,
        address: Address,
        role: str = "reader",
        connection_class: str = "interactive",
        timeout: Optional[float] = 30.0,
    ) -> None:
        if isinstance(address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(address)
        else:
            host, port = address
            sock = socket.create_connection((host, port))
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if timeout is not None:
            sock.settimeout(timeout)
        self._sock = sock
        self._file = sock.makefile("rb")
        self.role = role
        #: Snapshot versions pinned by the hello (readers) / last commit.
        self.versions: Dict[str, int] = {}
        hello = self.request(
            {"op": "hello", "role": role, "class": connection_class}
        )
        self.versions = hello.get("versions", {})

    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """Send one request and return the (``ok``) response payload.

        Raises :class:`ServiceError` on an error response.
        """
        send_message(self._sock, payload)
        response = read_message(self._file)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if not response.get("ok", False):
            raise ServiceError(
                str(response.get("error", "unknown")),
                str(response.get("message", "")),
            )
        return response

    # ------------------------------------------------------------------
    # Reader operations
    # ------------------------------------------------------------------
    def between(self, column: str, low, high) -> dict:
        """Range aggregate at this reader's pinned snapshot version."""
        return self.request(
            {"op": "between", "column": column, "low": low, "high": high}
        )

    def equals(self, column: str, value) -> dict:
        """Point aggregate at the pinned snapshot version."""
        return self.request({"op": "equals", "column": column, "value": value})

    def batch(self, column: str, bounds: Sequence[Sequence]) -> dict:
        """Vectorized batch of ``[low, high]`` ranges at the pinned version."""
        return self.request(
            {"op": "batch", "column": column, "bounds": [list(b) for b in bounds]}
        )

    def where(self, predicates: Dict[str, Sequence]) -> dict:
        """Multi-column conjunction at the pinned versions."""
        return self.request(
            {
                "op": "where",
                "predicates": {name: list(pair) for name, pair in predicates.items()},
            }
        )

    def refresh(self) -> Dict[str, int]:
        """Re-pin at the latest committed versions; returns them."""
        response = self.request({"op": "refresh"})
        self.versions = response["versions"]
        return dict(self.versions)

    def status(self) -> dict:
        """Service status: engine, per-index and scheduler counters."""
        return self.request({"op": "status"})["status"]

    def metrics(self, format: str = "json"):
        """Server-side metrics registry snapshot.

        ``format="json"`` returns the structured snapshot dict;
        ``format="prometheus"`` returns the text exposition body.
        """
        response = self.request({"op": "metrics", "format": format})
        if format == "prometheus":
            return response["body"]
        return response["metrics"]

    def trace(self, limit: Optional[int] = None, drain: bool = False) -> dict:
        """Recent trace spans from the server's ring buffer."""
        payload: dict = {"op": "trace", "drain": bool(drain)}
        if limit is not None:
            payload["limit"] = int(limit)
        return self.request(payload)

    # ------------------------------------------------------------------
    # Writer operations
    # ------------------------------------------------------------------
    def insert(self, values, column: Optional[str] = None) -> int:
        """Insert rows; returns the number of rows inserted."""
        payload = {"op": "insert", "values": values}
        if column is not None:
            payload["column"] = column
        return int(self.request(payload)["rows"])

    def delete(self, column: str, low, high=None) -> int:
        """Delete rows in ``[low, high]`` (point delete when ``high`` omitted)."""
        payload = {"op": "delete", "column": column, "low": low}
        if high is not None:
            payload["high"] = high
        return int(self.request(payload)["rows"])

    def update(self, column: str, low, high, value) -> int:
        """Set ``column`` to ``value`` for rows in ``[low, high]``."""
        return int(
            self.request(
                {"op": "update", "column": column, "low": low, "high": high, "value": value}
            )["rows"]
        )

    def commit(self) -> Dict[str, int]:
        """Commit pending writes; returns the new committed versions."""
        response = self.request({"op": "commit"})
        self.versions = response["versions"]
        return dict(self.versions)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say ``bye`` (best effort) and close the socket."""
        try:
            send_message(self._sock, {"op": "bye"})
            read_message(self._file)
        except OSError:
            pass
        finally:
            try:
                self._file.close()
            finally:
                try:
                    self._sock.close()
                except OSError:
                    pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
