"""The threaded socket front end of the concurrent query service.

:class:`QueryServer` wraps one :class:`~repro.engine.shared.SharedEngine`
(usually built from an open :class:`~repro.persist.database.Database`) and
serves the newline-delimited JSON protocol of :mod:`repro.serve.protocol`
over a Unix-domain or TCP socket.  Each accepted connection runs in its own
thread; correctness does not depend on the thread count because all index
mutation is serialized through the engine's
:class:`~repro.serve.scheduler.ProgressiveScheduler` work lanes and all
delta-store writes go through the engine-wide write gate.

Example
-------
>>> import numpy as np
>>> from repro import Column, IndexingSession
>>> from repro.serve import QueryServer, ServiceClient
>>> session = IndexingSession(Column(np.arange(10_000), name="ra"))
>>> _ = session.create_index("ra", method="PQ", fixed_delta=0.25)
>>> with QueryServer(session=session) as server:
...     with ServiceClient(server.endpoint) as client:
...         client.between("ra", 10, 19)["count"]
10
"""

from __future__ import annotations

import os
import socket
import sys
import tempfile
import threading
from typing import Optional, Tuple, Union

from repro.engine.shared import SharedEngine
from repro.errors import ConcurrencyError
from repro.serve.connection import ClientConnection

Address = Union[str, Tuple[str, int]]


class QueryServer:
    """Threaded JSON-line query server over one shared engine.

    Parameters
    ----------
    database:
        An open :class:`~repro.persist.database.Database` to serve (writes
        go through its WAL).  Mutually exclusive with ``session``/``engine``.
    session:
        An :class:`~repro.engine.session.IndexingSession` (or bare
        table/column data) to serve in memory, without durability.
    engine:
        A pre-built :class:`~repro.engine.shared.SharedEngine` — use this to
        inject a custom scheduler or connection classes.
    address:
        Where to listen: a filesystem path (Unix-domain socket) or a
        ``(host, port)`` tuple (TCP; port 0 picks a free port).  Defaults to
        a fresh Unix socket path in a temporary directory.
    switch_interval:
        Python thread switch interval installed while the server runs.  The
        default interpreter quantum (5 ms) lets one long request convoy
        every other connection on a saturated core; 0.5 ms bounds the
        per-request jitter at negligible switching cost.  ``None`` leaves
        the interpreter setting alone.
    """

    def __init__(
        self,
        database=None,
        session=None,
        engine: Optional[SharedEngine] = None,
        address: Optional[Address] = None,
        switch_interval: Optional[float] = 0.0005,
    ) -> None:
        provided = [value for value in (database, session, engine) if value is not None]
        if len(provided) != 1:
            raise ConcurrencyError(
                "provide exactly one of database=, session= or engine="
            )
        if engine is None:
            if database is not None:
                engine = SharedEngine.for_database(database)
            else:
                engine = SharedEngine(session)
        self.engine = engine
        self._address = address
        self._switch_interval = switch_interval
        self._prev_switch_interval: Optional[float] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connection_threads: list[threading.Thread] = []
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self._running = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> Address:
        """The bound address clients connect to (valid after :meth:`start`)."""
        if self._listener is None:
            raise ConcurrencyError("the server is not running; call start() first")
        if self._listener.family == socket.AF_UNIX:
            return self._listener.getsockname()
        host, port = self._listener.getsockname()[:2]
        return (host, port)

    @property
    def running(self) -> bool:
        """Whether the accept loop is active."""
        return self._running

    # ------------------------------------------------------------------
    def start(self) -> "QueryServer":
        """Bind, listen and start accepting connections in the background."""
        if self._running:
            raise ConcurrencyError("the server is already running")
        address = self._address
        if address is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            address = os.path.join(self._tempdir.name, "service.sock")
        if isinstance(address, str):
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if os.path.exists(address):
                os.unlink(address)
            listener.bind(address)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(tuple(address))
        listener.listen(128)
        self._listener = listener
        if self._switch_interval is not None:
            self._prev_switch_interval = sys.getswitchinterval()
            sys.setswitchinterval(self._switch_interval)
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            if sock.family == socket.AF_INET:
                # Batched request/response round trips die without NODELAY.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = ClientConnection(self, sock, str(sock.getpeername()))
            thread = threading.Thread(
                target=connection.serve, name="repro-serve-conn", daemon=True
            )
            with self._lock:
                self._connection_threads = [
                    t for t in self._connection_threads if t.is_alive()
                ]
                self._connection_threads.append(thread)
            thread.start()

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-safe service status (engine + scheduler counters)."""
        return self.engine.status()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting, close the listener and join connection threads."""
        if not self._running:
            return
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        with self._lock:
            threads = list(self._connection_threads)
        for thread in threads:
            thread.join(timeout=timeout)
        if self._prev_switch_interval is not None:
            sys.setswitchinterval(self._prev_switch_interval)
            self._prev_switch_interval = None
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
        self._listener = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        where = "stopped"
        if self._running and self._listener is not None:
            where = str(self.endpoint)
        return f"QueryServer({where})"
