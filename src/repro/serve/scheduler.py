"""The progressive-work scheduler: one index, many clients, no races.

Progressive indexes do construction work *inside* queries — every read may
move data, advance the life-cycle phase, or fold delta rows.  Under
concurrent clients that property is a hazard: two queries racing through
``index.query()`` would interleave partial sorts and corrupt the structures.
The :class:`ProgressiveScheduler` turns it back into a feature:

* **Work lanes.**  Every index gets a :class:`WorkLane` (a reader–writer
  lock): all mutating execution — construction deltas, cracking, MERGE
  folds — runs under the lane's *exclusive* side, forming the per-index
  serialized work queue the paper's budgets were always implicitly assuming.
  Converged structural lookups of families that declare
  ``concurrent_reads`` run under the *shared* side, so pure readers never
  queue behind each other.
* **Mutation guard.**  When a lane is created the scheduler installs a
  guard into the index's :class:`~repro.core.phase.IndexLifecycle` that
  raises :class:`~repro.errors.ConcurrencyError` if any life-cycle mutation
  happens on a thread not holding the lane exclusively — an unserialized
  phase advance becomes a crash in the offending thread instead of silent
  corruption.  The concurrency test harness leans on this.
* **Admission tickets.**  Each serialized query is admitted with an
  *allowance* of indexing seconds derived from its connection class's
  interactivity budget τ: the index's own policy is wrapped in a
  :class:`~repro.core.policy.CappedBudget` for the duration of the query,
  so no single query exceeds its class's τ no matter what the underlying
  policy wants.  Granted seconds are charged to the class's
  :class:`WorkAccount` (a τ-refilled token bucket) and to a per
  ``(class, column)`` fairness ledger; a class consuming more than its
  weight-proportional share of a hot column's work sees its next
  allowances scaled down, so a greedy client pays for convergence it
  already bought instead of starving everyone else.

All accounting is in deterministic model seconds — the same currency the
cost models and budget policies use — so scheduler behavior is exactly
reproducible under test.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro import obs
from repro.core.phase import IndexPhase
from repro.core.policy import CappedBudget
from repro.errors import ConcurrencyError
from repro.serve.connection import DEFAULT_CLASSES, ConnectionClass
from repro.serve.sync import RWLock


class WorkLane:
    """The per-index serialization point.

    Exclusive acquisition = a slot in the index's work queue (mutation
    allowed); shared acquisition = a concurrent converged read (mutation
    forbidden, enforced by the mutation guard).
    """

    def __init__(self, index) -> None:
        #: Strong reference pinning the index (the scheduler keys lanes by
        #: ``id(index)``, which must stay unique for the lane's lifetime).
        self.index = index
        self._rw = RWLock()
        self._owner: Optional[int] = None
        #: Number of operations that ran through the exclusive side.
        self.serialized_ops = 0
        #: Number of batch lookups that ran through the shared side.
        self.lockfree_reads = 0

    @contextmanager
    def exclusive(self):
        self._rw.acquire_write()
        self._owner = threading.get_ident()
        try:
            yield self
        finally:
            self._owner = None
            self._rw.release_write()

    @contextmanager
    def shared(self):
        self._rw.acquire_read()
        try:
            yield self
        finally:
            self._rw.release_read()

    def assert_exclusive(self) -> None:
        """Mutation guard hook: the calling thread must own the lane."""
        if self._owner != threading.get_ident():
            raise ConcurrencyError(
                f"index {getattr(self.index, 'name', '?')!r} life-cycle mutation "
                "from a thread that does not hold the exclusive work lane — "
                "index work must be serialized through the scheduler"
            )


class WorkAccount:
    """Token bucket of indexing seconds for one connection class.

    Every admitted query deposits τ (capped at ``burst_queries * τ`` so idle
    classes cannot hoard unbounded credit); granted indexing work is charged
    back.  The balance therefore bounds a class's aggregate indexing spend
    to "number of admitted queries × τ" over any window — exactly the
    paper's interactivity contract, enforced across clients.
    """

    def __init__(self, cls: ConnectionClass, burst_queries: int) -> None:
        self.cls = cls
        self.balance = 0.0
        self.deposited = 0.0
        self.charged = 0.0
        self.queries_admitted = 0
        self._cap = (
            float("inf") if cls.tau is None else burst_queries * cls.tau
        )

    def deposit(self) -> None:
        self.queries_admitted += 1
        if self.cls.tau is None:
            return
        self.deposited += self.cls.tau
        self.balance = min(self.balance + self.cls.tau, self._cap)

    def charge(self, seconds: float) -> None:
        if seconds <= 0.0:
            return
        self.charged += seconds
        self.balance = max(0.0, self.balance - seconds)


class ProgressiveScheduler:
    """Shared scheduler coordinating all clients of one engine.

    Parameters
    ----------
    classes:
        The connection classes this scheduler admits; defaults to
        :data:`~repro.serve.connection.DEFAULT_CLASSES`.
    burst_queries:
        Work-account cap in units of τ (how many queries' worth of unused
        allowance a class may bank).
    min_throttle:
        Floor of the fairness scaling factor — even a maximally over-served
        class keeps this fraction of its allowance, so progress never stops
        entirely (convergence is good for everyone).
    """

    def __init__(
        self,
        classes: Optional[Iterable[ConnectionClass]] = None,
        burst_queries: int = 8,
        min_throttle: float = 0.1,
    ) -> None:
        class_list = tuple(classes) if classes is not None else DEFAULT_CLASSES
        if not class_list:
            raise ConcurrencyError("a scheduler requires at least one connection class")
        self._classes: Dict[str, ConnectionClass] = {c.name: c for c in class_list}
        self._total_weight = sum(c.weight for c in class_list)
        self._accounts: Dict[str, WorkAccount] = {
            c.name: WorkAccount(c, burst_queries) for c in class_list
        }
        #: Granted indexing seconds per (class, column) — the fairness ledger.
        self._ledger: Dict[Tuple[str, str], float] = {}
        self._lanes: Dict[int, WorkLane] = {}
        self._lock = threading.Lock()
        self.min_throttle = float(min_throttle)
        self.burst_queries = int(burst_queries)
        registry = obs.metrics()
        self._obs_admitted = {
            c.name: registry.counter(
                "scheduler.admitted",
                help="Serialized queries admitted with an allowance ticket",
                cls=c.name,
            )
            for c in class_list
        }
        self._obs_throttled = {
            c.name: registry.counter(
                "scheduler.throttled",
                help="Admissions scaled down by the fairness ledger",
                cls=c.name,
            )
            for c in class_list
        }
        self._obs_serialized_seconds = registry.histogram(
            "scheduler.serialized.seconds",
            help="Wall time of serialized (exclusive-lane) operations",
        )
        registry.register_pull(
            "scheduler.lockfree.reads", self,
            lambda s: sum(lane.lockfree_reads for lane in s._lanes.values()),
            help="Batch lookups served through the shared (lock-free) lane",
        )
        registry.register_pull(
            "scheduler.serialized.ops", self,
            lambda s: sum(lane.serialized_ops for lane in s._lanes.values()),
            help="Operations run through the exclusive work lanes",
        )

    # ------------------------------------------------------------------
    def class_named(self, name: str) -> ConnectionClass:
        try:
            return self._classes[name]
        except KeyError:
            raise ConcurrencyError(
                f"unknown connection class {name!r}; "
                f"available: {sorted(self._classes)}"
            ) from None

    def lane_for(self, index) -> WorkLane:
        """The index's work lane, created (and guard installed) on first use."""
        lane = self._lanes.get(id(index))
        if lane is None:
            with self._lock:
                lane = self._lanes.get(id(index))
                if lane is None:
                    lane = WorkLane(index)
                    index.lifecycle.set_mutation_guard(lane.assert_exclusive)
                    self._lanes[id(index)] = lane
        return lane

    # ------------------------------------------------------------------
    # Lock-free converged read path
    # ------------------------------------------------------------------
    @staticmethod
    def lockfree_eligible(index) -> bool:
        """Whether the index's structural batch lookups may run shared.

        Requires the family's ``concurrent_reads`` declaration *and* the
        converged phase with no merge cycle due: anything still doing
        construction, cracking or folding mutates on read and must go
        through the exclusive lane.
        """
        return (
            getattr(index, "concurrent_reads", False)
            and index.phase is IndexPhase.CONVERGED
            and not index.has_pending_merge()
        )

    def read_structural(self, index, lows, highs):
        """Answer a batch via the shared (lock-free) lane, if possible.

        Returns ``((sums, counts), folded_seq)`` — the structural answer and
        the delta-sequence watermark it is exact at — or ``None`` when the
        index is not eligible (caller falls back to the serialized path).
        Eligibility is re-checked *under* the shared lane: a phase change
        between the optimistic check and the acquisition routes the query
        back to the work queue.
        """
        if not self.lockfree_eligible(index):
            return None
        lane = self.lane_for(index)
        with lane.shared():
            if not self.lockfree_eligible(index):
                return None
            answered = index._search_many(lows, highs)
            if answered is None:
                return None
            watermark = index._folded_seq
            lane.lockfree_reads += 1
            return answered, watermark

    # ------------------------------------------------------------------
    # Serialized (mutating) path
    # ------------------------------------------------------------------
    def run_serialized(
        self,
        index,
        cls: ConnectionClass,
        column_name: str,
        fn: Callable[[], object],
    ):
        """Run ``fn`` in the index's work queue under an admission ticket.

        The index's budget policy is wrapped in a
        :class:`~repro.core.policy.CappedBudget` clamped to the admitted
        allowance for the duration of the call; the indexing seconds the
        query actually granted are charged to the class's work account and
        the fairness ledger afterwards.
        """
        allowance = self._admit(cls, column_name)
        tracer = obs.tracer()
        span = None
        if tracer.enabled:
            span = tracer.start("scheduler.serialized", {
                "cls": cls.name, "column": column_name,
                "allowance": allowance if allowance != float("inf") else None,
            })
        op_started = time.perf_counter()
        lane = self.lane_for(index)
        granted = 0.0
        try:
            with lane.exclusive():
                capped = CappedBudget(index.budget, allowance)
                index.swap_budget(capped)
                try:
                    result = fn()
                finally:
                    index.swap_budget(capped.inner)
                lane.serialized_ops += 1
                granted = capped.granted_seconds
        finally:
            if span is not None:
                span.set(granted=granted).end()
        self._obs_serialized_seconds.observe(time.perf_counter() - op_started)
        self._charge(cls, column_name, granted)
        return result

    def _admit(self, cls: ConnectionClass, column_name: str) -> float:
        """Admission ticket: the indexing-seconds allowance for one query."""
        if cls.name not in self._classes:
            raise ConcurrencyError(f"unknown connection class {cls.name!r}")
        with self._lock:
            account = self._accounts[cls.name]
            account.deposit()
            self._obs_admitted[cls.name].inc()
            if cls.tau is None:
                return float("inf")
            allowance = min(account.balance, cls.tau)
            # Fairness across hot columns: scale the allowance down when
            # this class already consumed more than its weight-proportional
            # share of the column's granted work.
            total = sum(
                self._ledger.get((name, column_name), 0.0) for name in self._classes
            )
            if total > 0.0:
                share = self._ledger.get((cls.name, column_name), 0.0) / total
                fair = cls.weight / self._total_weight
                if share > fair:
                    allowance *= max(self.min_throttle, fair / share)
                    self._obs_throttled[cls.name].inc()
            return allowance

    def _throttle_factor(self, cls_name: str, column_name: str) -> float:
        """Current fairness scaling a class's next admission would see."""
        cls = self._classes[cls_name]
        total = sum(
            self._ledger.get((name, column_name), 0.0) for name in self._classes
        )
        if total <= 0.0:
            return 1.0
        share = self._ledger.get((cls_name, column_name), 0.0) / total
        fair = cls.weight / self._total_weight
        if share <= fair:
            return 1.0
        return max(self.min_throttle, fair / share)

    def _charge(self, cls: ConnectionClass, column_name: str, granted: float) -> None:
        if granted <= 0.0:
            return
        with self._lock:
            self._accounts[cls.name].charge(granted)
            key = (cls.name, column_name)
            self._ledger[key] = self._ledger.get(key, 0.0) + granted

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-safe scheduler counters for status reporting and tests."""
        with self._lock:
            return {
                "min_throttle": self.min_throttle,
                "total_weight": self._total_weight,
                "burst_queries": self.burst_queries,
                "classes": {
                    name: {
                        "tau": account.cls.tau,
                        "weight": account.cls.weight,
                        "queries_admitted": account.queries_admitted,
                        "allowance_deposited": account.deposited,
                        "work_charged": account.charged,
                        "balance": account.balance,
                        "balance_cap": (
                            None if account.cls.tau is None
                            else self.burst_queries * account.cls.tau
                        ),
                    }
                    for name, account in self._accounts.items()
                },
                "columns": {
                    f"{cls}:{column}": seconds
                    for (cls, column), seconds in sorted(self._ledger.items())
                },
                # The computed fairness view: per (class, column) share of
                # the column's granted work vs. the class's fair share, and
                # the throttle factor the *next* admission would be scaled
                # by — previously only derivable by poking the raw ledger.
                "fairness": {
                    f"{cls}:{column}": {
                        "charged": seconds,
                        "share": (
                            seconds / total if (total := sum(
                                self._ledger.get((name, column), 0.0)
                                for name in self._classes
                            )) > 0.0 else 0.0
                        ),
                        "fair_share": (
                            self._classes[cls].weight / self._total_weight
                        ),
                        "throttle": self._throttle_factor(cls, column),
                    }
                    for (cls, column), seconds in sorted(self._ledger.items())
                },
                "lanes": {
                    f"{getattr(lane.index, 'name', '?')}@{key:#x}": {
                        "serialized_ops": lane.serialized_ops,
                        "lockfree_reads": lane.lockfree_reads,
                    }
                    for key, lane in self._lanes.items()
                },
            }
