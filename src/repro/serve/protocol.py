"""Newline-delimited JSON wire protocol of the query service.

Every message — request and response — is one JSON object on one line,
terminated by ``\\n``.  The format is deliberately boring: any language with
a socket and a JSON parser is a client.

Requests carry an ``op`` field::

    {"op": "hello", "role": "reader", "class": "interactive"}
    {"op": "between", "column": "ra", "low": 1000, "high": 50000}
    {"op": "batch", "column": "ra", "bounds": [[0, 10], [20, 30]]}
    {"op": "where", "predicates": {"ra": [0, 100], "dec": [5, 50]}}
    {"op": "insert", "values": [1, 2, 3]}
    {"op": "commit"}

Responses carry ``ok``; successful reads include the snapshot ``version``
they were answered at, so a client can verify its pinned view::

    {"ok": true, "sum": 123456, "count": 42, "version": 7}
    {"ok": false, "error": "protocol", "message": "..."}
"""

from __future__ import annotations

import json
import socket

from repro.errors import ProtocolError

#: Upper bound on one encoded message; a line longer than this is a protocol
#: violation, not a memory-exhaustion vector.
MAX_MESSAGE_BYTES = 16 * 1024 * 1024


def encode_message(payload: dict) -> bytes:
    """Serialize ``payload`` to one newline-terminated JSON line."""
    line = json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_MESSAGE_BYTES}-byte limit"
        )
    return line


def send_message(sock: socket.socket, payload: dict) -> None:
    """Encode and send one message over ``sock``."""
    sock.sendall(encode_message(payload))


def read_message(stream) -> dict | None:
    """Read one message from a buffered binary ``stream``.

    Returns ``None`` on a clean EOF (peer closed the connection between
    messages).  Raises :class:`~repro.errors.ProtocolError` on oversized
    lines, truncated frames or malformed JSON.
    """
    line = stream.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"incoming message exceeds the {MAX_MESSAGE_BYTES}-byte limit"
        )
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated message (connection closed mid-line)")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON message: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"messages must be JSON objects, got {type(payload).__name__}"
        )
    return payload


def error_payload(code: str, message: str) -> dict:
    """The standard error-response shape."""
    return {"ok": False, "error": code, "message": message}
