"""Connection classes and the per-socket request handler.

A *connection class* is the serving layer's unit of service differentiation:
it carries the interactivity budget τ (model seconds) the paper's cost
models target per query, plus a fairness weight.  The scheduler turns τ
into admission tickets — each admitted query may spend at most an
allowance of indexing seconds derived from its class's τ and remaining
work-account balance — so one greedy client class cannot monopolise the
progressive construction of a hot column.

:class:`ClientConnection` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` over one accepted socket: a ``hello`` declares
the role (``reader`` or ``writer``) and class, readers then execute
range/point/batch/conjunctive queries against their pinned snapshot
versions, and the single writer appends through the engine's write path.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConcurrencyError, ProgressiveIndexError
from repro.serve.protocol import (
    ProtocolError,
    error_payload,
    read_message,
    send_message,
)


@dataclass(frozen=True)
class ConnectionClass:
    """Service class of a connection.

    Parameters
    ----------
    name:
        Class identifier clients pass in their ``hello``.
    tau:
        Interactivity budget in model seconds: the per-query indexing
        allowance ceiling the scheduler admits for this class.  ``None``
        disables capping entirely (administrative connections).
    weight:
        Fairness weight: the share of a hot column's progressive work this
        class is entitled to relative to the other classes.
    """

    name: str
    tau: Optional[float]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.tau is not None and self.tau < 0:
            raise ProgressiveIndexError(f"tau must be >= 0, got {self.tau}")
        if self.weight <= 0:
            raise ProgressiveIndexError(f"weight must be > 0, got {self.weight}")


#: Default service classes: interactive analysts get a tight τ and most of
#: the fairness weight; bulk/batch clients get a 10x looser τ but a small
#: share of any contended column's indexing work; ``admin`` is uncapped.
DEFAULT_CLASSES = (
    ConnectionClass("interactive", tau=0.005, weight=4.0),
    ConnectionClass("batch", tau=0.05, weight=1.0),
    ConnectionClass("admin", tau=None, weight=1.0),
)


class ClientConnection:
    """Serves one accepted socket until ``bye`` or disconnect.

    The first message must be ``{"op": "hello", "role": ..., "class": ...}``;
    afterwards each request is dispatched by its ``op`` field.  Protocol or
    library errors are reported as ``{"ok": false, ...}`` responses and the
    connection keeps serving; only transport failures terminate it.
    """

    def __init__(self, server, sock: socket.socket, peer: str) -> None:
        self._server = server
        self._sock = sock
        self._file = sock.makefile("rb")
        self._peer = peer
        self._role: Optional[str] = None
        self._reader = None
        self._writer = None

    # ------------------------------------------------------------------
    def serve(self) -> None:
        """Request loop; returns when the peer says ``bye`` or hangs up."""
        try:
            while True:
                try:
                    request = read_message(self._file)
                except ProtocolError as exc:
                    send_message(self._sock, error_payload("protocol", str(exc)))
                    continue
                if request is None:
                    return
                if not self._handle(request):
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            return
        finally:
            self._teardown()

    def _teardown(self) -> None:
        if self._writer is not None:
            self._writer.release()
            self._writer = None
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _handle(self, request: dict) -> bool:
        op = request.get("op")
        if op == "bye":
            send_message(self._sock, {"ok": True, "op": "bye"})
            return False
        try:
            if op == "hello":
                response = self._hello(request)
            elif self._role is None:
                raise ProtocolError("the first request must be 'hello'")
            elif op == "status":
                response = {"ok": True, "status": self._server.status()}
            elif op == "metrics":
                response = self._metrics(request)
            elif op == "trace":
                response = self._trace(request)
            elif self._role == "reader":
                response = self._reader_op(op, request)
            else:
                response = self._writer_op(op, request)
        except (ProtocolError, ProgressiveIndexError) as exc:
            response = error_payload(type(exc).__name__, str(exc))
        except (KeyError, TypeError, ValueError) as exc:
            response = error_payload("bad-request", f"{type(exc).__name__}: {exc}")
        send_message(self._sock, response)
        return True

    # ------------------------------------------------------------------
    def _hello(self, request: dict) -> dict:
        if self._role is not None:
            raise ProtocolError("connection already completed its hello")
        role = request.get("role", "reader")
        if role not in ("reader", "writer"):
            raise ProtocolError(f"unknown role {role!r}; use 'reader' or 'writer'")
        engine = self._server.engine
        if role == "reader":
            class_name = request.get("class", "interactive")
            self._reader = engine.reader(class_name)
            versions = self._reader.pinned_versions()
        else:
            try:
                self._writer = engine.acquire_writer()
            except ConcurrencyError as exc:
                return error_payload("writer-busy", str(exc))
            versions = engine.committed_versions()
        self._role = role
        return {"ok": True, "op": "hello", "role": role, "versions": versions}

    # ------------------------------------------------------------------
    def _metrics(self, request: dict) -> dict:
        """Registry snapshot, as structured JSON or Prometheus text.

        Available to both roles (like ``status``): telemetry is not a
        data-plane privilege.
        """
        from repro import obs

        snapshot = obs.metrics().snapshot()
        if request.get("format") == "prometheus":
            return {
                "ok": True,
                "format": "prometheus",
                "body": obs.render_prometheus(snapshot),
            }
        return {"ok": True, "metrics": snapshot}

    def _trace(self, request: dict) -> dict:
        """Recent finished spans from the tracer's ring buffer.

        ``limit`` bounds the reply; ``drain`` additionally clears the ring
        so a polling exporter sees each span once.
        """
        from repro import obs

        tracer = obs.tracer()
        if request.get("drain"):
            spans = tracer.drain()
            limit = request.get("limit")
            if limit is not None:
                spans = spans[-int(limit):]
        else:
            spans = tracer.recent(request.get("limit"))
        return {"ok": True, "enabled": tracer.enabled, "spans": spans}

    # ------------------------------------------------------------------
    def _reader_op(self, op: str, request: dict) -> dict:
        reader = self._reader
        if op == "between" or op == "equals":
            column = request["column"]
            if op == "equals":
                low = high = request["value"]
            else:
                low, high = request["low"], request["high"]
            result = reader.between(column, low, high)
            return {
                "ok": True,
                "sum": _native(result.value_sum),
                "count": int(result.count),
                "version": reader.snapshot_version(column),
            }
        if op == "batch":
            column = request["column"]
            bounds = request["bounds"]
            lows = [pair[0] for pair in bounds]
            highs = [pair[1] for pair in bounds]
            sums, counts = reader.search_many(column, lows, highs)
            return {
                "ok": True,
                "sums": [_native(value) for value in sums],
                "counts": [int(value) for value in counts],
                "version": reader.snapshot_version(column),
            }
        if op == "where":
            predicates = {
                name: (pair[0], pair[1])
                for name, pair in request["predicates"].items()
            }
            result = reader.where(predicates)
            return {
                "ok": True,
                "count": int(result.count),
                "sums": {
                    name: _native(value) for name, value in result.value_sums.items()
                },
                "versions": reader.pinned_versions(),
            }
        if op == "refresh":
            versions = reader.refresh()
            return {"ok": True, "op": "refresh", "versions": versions}
        raise ProtocolError(f"unknown reader operation {op!r}")

    # ------------------------------------------------------------------
    def _writer_op(self, op: str, request: dict) -> dict:
        writer = self._writer
        if op == "insert":
            rids = writer.insert(request["values"], request.get("column"))
            return {"ok": True, "op": "insert", "rows": int(len(rids))}
        if op == "delete":
            deleted = writer.delete(
                request["column"], request["low"], request.get("high")
            )
            return {"ok": True, "op": "delete", "rows": int(deleted)}
        if op == "update":
            updated = writer.update(
                request["column"], request["low"], request["high"], request["value"]
            )
            return {"ok": True, "op": "update", "rows": int(updated)}
        if op == "commit":
            versions = writer.commit()
            return {"ok": True, "op": "commit", "versions": versions}
        raise ProtocolError(f"unknown writer operation {op!r}")


def _native(value):
    """Coerce a NumPy scalar to its native Python equivalent for JSON."""
    return value.item() if hasattr(value, "item") else value
