"""The concurrent query service: MVCC readers over one progressive engine.

* :mod:`repro.serve.protocol` — the newline-delimited JSON wire format.
* :mod:`repro.serve.sync` — the writer-preferring reader–writer lock used
  for the engine-wide write gate and the per-index work lanes.
* :mod:`repro.serve.connection` — connection classes (τ + fairness weight)
  and the per-socket request handler.
* :mod:`repro.serve.scheduler` — the :class:`ProgressiveScheduler`: work
  lanes serializing all index mutation, lock-free converged reads, τ
  admission tickets and the cross-client fairness ledger.
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — the threaded
  socket server and the thin synchronous client.

The heavier submodules are re-exported lazily so importing
:mod:`repro.serve` from the engine layer (which the server itself builds
on) never creates an import cycle.
"""

from repro.serve.connection import DEFAULT_CLASSES, ConnectionClass
from repro.serve.sync import RWLock

__all__ = [
    "DEFAULT_CLASSES",
    "ConnectionClass",
    "ProgressiveScheduler",
    "QueryServer",
    "RWLock",
    "ServiceClient",
    "ServiceError",
    "WorkAccount",
    "WorkLane",
]

_LAZY = {
    "ProgressiveScheduler": ("repro.serve.scheduler", "ProgressiveScheduler"),
    "WorkAccount": ("repro.serve.scheduler", "WorkAccount"),
    "WorkLane": ("repro.serve.scheduler", "WorkLane"),
    "QueryServer": ("repro.serve.server", "QueryServer"),
    "ServiceClient": ("repro.serve.client", "ServiceClient"),
    "ServiceError": ("repro.serve.client", "ServiceError"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value
