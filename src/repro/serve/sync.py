"""Synchronization primitives for the concurrent serving layer.

The standard library has no reader–writer lock; the serving layer needs two:

* the engine-wide **write gate** — delta-store writers take it exclusively so
  a query never observes a column version moving underneath it (growable
  delta arrays may reallocate on append), while all query execution holds it
  shared;
* the per-index **work lane** — mutating query execution (progressive
  construction, cracking, MERGE folds) holds it exclusively, forming the
  serialized work queue, while converged vectorized lookups hold it shared
  and therefore run concurrently with each other.

The implementation is writer-preferring: once a writer is waiting, new
readers queue behind it, bounding writer latency under a read-heavy stream.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """A writer-preferring reader–writer lock.

    Any number of readers may hold the lock concurrently; a writer holds it
    alone.  Acquisitions are not reentrant — a thread must not acquire the
    same lock twice (in either mode) without releasing in between.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read(self):
        """``with lock.read():`` — shared acquisition."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """``with lock.write():`` — exclusive acquisition."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RWLock(readers={self._readers}, writer={self._writer_active}, "
            f"waiting={self._writers_waiting})"
        )
