"""Spillable scratch allocations for the streaming construction kernels.

Progressive construction needs *writable* working arrays: the quicksort
index array, bucket blocks, radix final arrays, sorter partition scratch.
In-memory those are ``np.empty`` allocations proportional to ``N`` — the
exact thing out-of-core operation must avoid.  :class:`ScratchAllocator`
hands out the same writable arrays but tracks the anonymous bytes it has
granted; once a configured budget is exceeded, further allocations are
backed by unlinked temp files (``np.memmap``), so the OS pages them in and
out instead of the process holding them resident.

Spilled arrays behave exactly like ndarrays for every kernel (slicing,
in-place ``sort``, fancy writes); :meth:`ScratchAllocator.trim` additionally
flushes and ``madvise(DONTNEED)``-drops their clean/dirty pages, bounding
peak RSS between construction bursts.
"""

from __future__ import annotations

import mmap
import os
import tempfile
import threading
import weakref

import numpy as np

#: Allocations below this many bytes never spill — file churn would cost
#: more than the resident footprint they avoid.
SMALL_ALLOCATION_BYTES = 1 << 18


class ScratchAllocator:
    """Budgeted allocator for writable scratch arrays.

    Parameters
    ----------
    budget_bytes:
        Anonymous-RAM allowance.  ``None`` disables spilling entirely (the
        in-memory engine, unchanged).
    directory:
        Where spill files live; a private temp directory by default.
    """

    def __init__(self, budget_bytes: int | None = None, directory: str | None = None) -> None:
        self.budget_bytes = None if budget_bytes is None else int(budget_bytes)
        self._directory = directory
        self._lock = threading.Lock()
        self._resident_bytes = 0
        self._spilled: list = []  # weakrefs (np.memmap is unhashable, no WeakSet)
        self.spill_count = 0
        self.spilled_bytes = 0
        # Pull-mode metrics: the allocator's own counters are read lazily
        # at snapshot time — no per-allocation overhead.
        from repro import obs

        registry = obs.metrics()
        registry.register_pull("scratch.spill.count", self,
                               lambda a: a.spill_count,
                               help="Scratch allocations spilled to disk")
        registry.register_pull("scratch.spill.bytes", self,
                               lambda a: a.spilled_bytes,
                               help="Bytes of scratch spilled to disk")
        registry.register_pull("scratch.resident.bytes", self,
                               lambda a: a._resident_bytes, kind="gauge",
                               help="Resident (in-budget) scratch bytes")

    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        if self._directory is None:
            self._directory = tempfile.mkdtemp(prefix="repro-scratch-")
        else:
            os.makedirs(self._directory, exist_ok=True)
        return self._directory

    @property
    def resident_bytes(self) -> int:
        """Anonymous scratch bytes currently alive."""
        return self._resident_bytes

    # ------------------------------------------------------------------
    def allocate(self, n_rows: int, dtype) -> np.ndarray:
        """Return a writable array of ``n_rows``; spilled past the budget."""
        dtype = np.dtype(dtype)
        n_rows = int(n_rows)
        nbytes = n_rows * dtype.itemsize
        if not self._should_spill(nbytes):
            array = np.empty(n_rows, dtype=dtype)
            with self._lock:
                self._resident_bytes += nbytes
            weakref.finalize(array, self._released, nbytes)
            return array
        return self._spill(n_rows, dtype, nbytes)

    def _should_spill(self, nbytes: int) -> bool:
        if self.budget_bytes is None or nbytes < SMALL_ALLOCATION_BYTES:
            return False
        with self._lock:
            return self._resident_bytes + nbytes > self.budget_bytes

    def _released(self, nbytes: int) -> None:
        with self._lock:
            self._resident_bytes = max(0, self._resident_bytes - nbytes)

    def _spill(self, n_rows: int, dtype: np.dtype, nbytes: int) -> np.ndarray:
        fd, path = tempfile.mkstemp(prefix="scratch-", suffix=".spill", dir=self.directory)
        try:
            os.ftruncate(fd, max(1, nbytes))
            array = np.memmap(path, dtype=dtype, mode="r+", shape=(n_rows,))
        finally:
            os.close(fd)
            # Unlink immediately: the mapping keeps the file alive, and a
            # crashed process leaves no spill litter behind.
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - platform quirks
                pass
        with self._lock:
            self.spill_count += 1
            self.spilled_bytes += nbytes
            self._spilled.append(weakref.ref(array))
        return array

    # ------------------------------------------------------------------
    def trim(self) -> None:
        """Flush spilled arrays and drop their resident pages (best effort)."""
        with self._lock:
            refs = [ref for ref in self._spilled if ref() is not None]
            self._spilled = refs
        for ref in refs:
            array = ref()
            if array is not None:
                trim_mapped(array)

    def stats(self) -> dict:
        return {
            "budget_bytes": self.budget_bytes,
            "resident_bytes": int(self._resident_bytes),
            "spill_count": int(self.spill_count),
            "spilled_bytes": int(self.spilled_bytes),
        }


def trim_mapped(array: np.ndarray) -> None:
    """Write back and drop the resident pages of one ``np.memmap``."""
    raw = getattr(array, "_mmap", None)
    if raw is None:
        return
    try:
        array.flush()
        raw.madvise(mmap.MADV_DONTNEED)
    except (AttributeError, ValueError, OSError):  # pragma: no cover
        pass


class BlockArena:
    """Fixed-size block supplier carving blocks out of spillable slabs.

    The linked-block structures (:class:`~repro.progressive.blocks.BlockList`)
    allocate one small ``np.empty`` per block; under a memory budget those
    tiny anonymous allocations collectively reach O(N).  An arena instead
    allocates large slabs through the :class:`ScratchAllocator` (which
    spills them once past budget) and hands out block-sized views.
    """

    def __init__(
        self,
        allocator: ScratchAllocator,
        block_size: int,
        dtype,
        slab_blocks: int = 64,
    ) -> None:
        self.allocator = allocator
        self.block_size = int(block_size)
        self.dtype = np.dtype(dtype)
        self.slab_blocks = max(1, int(slab_blocks))
        self._slab: np.ndarray | None = None
        self._next_block = 0
        self._lock = threading.Lock()

    def new_block(self) -> np.ndarray:
        """A writable array of ``block_size`` rows (a view into a slab)."""
        with self._lock:
            if self._slab is None or self._next_block >= self.slab_blocks:
                self._slab = self.allocator.allocate(
                    self.block_size * self.slab_blocks, self.dtype
                )
                self._next_block = 0
            start = self._next_block * self.block_size
            self._next_block += 1
            return self._slab[start : start + self.block_size]
