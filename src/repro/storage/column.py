"""Mutable column of numeric values: read-optimized base + delta store.

A :class:`Column` is the unit every index in this library operates on.  Since
the mutable-substrate refactor it is no longer a frozen array but a *versioned*
pair of

* a contiguous, read-only **base array** (the read-optimized majority of the
  data — indexes build their structures from it), and
* an append-only :class:`~repro.storage.delta.DeltaStore` absorbing every
  ``insert``/``delete``/``update`` without ever reorganising the base
  (updates are a delete plus an insert, mirroring column stores).

Reads are **snapshot-versioned**: :meth:`Column.snapshot` freezes the rows
visible at a version into a :class:`ColumnSnapshot`, which exposes the exact
read API the old immutable column had (``data``, ``min``/``max``,
``scan_range``, ``copy_data``).  Indexes pin a snapshot at creation time and
answer structural queries against it; the per-index delta overlay corrects
their answers with whatever writes happened after the pinned version, and
merge work moves those writes into the structures under the same budget
policies that pace construction.

The live column's own read API (``data``, ``scan_range`` …) always reflects
the *current* visible rows — base minus deleted plus inserted — caching the
materialized array per version so read-heavy phases pay the compaction once
per write burst.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterator, Optional, Union

import numpy as np

from repro.errors import DroppedColumnError, InvalidColumnError
from repro.storage.delta import DeltaStore
from repro.storage.lazy import (
    ChainArray,
    LazyArray,
    array_chunks,
    chunked_rids_where,
    chunked_scan_range,
    is_lazy,
)
from repro.storage.membudget import MemoryBudget, budget_of

ArrayLike = Union[np.ndarray, list, tuple]

#: Number of materialized snapshot versions a column retains.  Snapshots at
#: the same version are shared (index creation over a written column pays the
#: base∪delta materialization once), but a long write stream must not pin
#: every historical version's array in memory — older entries are LRU-evicted
#: and later requests for them re-materialize from the delta store.
SNAPSHOT_CACHE_SIZE = 4


class _ReadableColumn:
    """Shared read API over a one-dimensional numeric array.

    Subclasses provide :meth:`_view` returning the array the reads should
    target; min/max are cached by the subclass's invalidation policy.
    """

    _name: str

    def _view(self) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Attribute name of the column."""
        return self._name

    @property
    def data(self) -> np.ndarray:
        """Read-only view of the visible values."""
        return self._view()

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype of the stored values (``int64`` or ``float64``)."""
        return self._view().dtype

    def __len__(self) -> int:
        return int(self._view().size)

    def __iter__(self) -> Iterator:
        return iter(self._view())

    def __getitem__(self, item):
        return self._view()[item]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def min(self):
        """Smallest visible value (cached until the next write)."""
        if self._min is None:
            self._min = self._view().min()
        return self._min

    def max(self):
        """Largest visible value (cached until the next write)."""
        if self._max is None:
            self._max = self._view().max()
        return self._max

    def value_range(self):
        """Return ``(min, max)`` of the visible values."""
        return self.min(), self.max()

    # ------------------------------------------------------------------
    # Scan primitives
    # ------------------------------------------------------------------
    def scan_range(self, low, high, start: int = 0, stop: int | None = None):
        """Predicated scan: sum and count of values in ``[low, high]``.

        Mirrors the paper's ``SELECT SUM(R.A) WHERE R.A BETWEEN low AND high``
        executed with predication (no data-dependent branches): a boolean mask
        is materialised and reduced regardless of selectivity.

        Parameters
        ----------
        low, high:
            Inclusive range bounds.
        start, stop:
            Optional element offsets restricting the scan to
            ``data[start:stop]``; used by partial indexes that only need to
            scan the not-yet-indexed tail of their snapshot.

        Returns
        -------
        tuple
            ``(matching_sum, matching_count)``.
        """
        view = self._view()
        if is_lazy(view):
            total, count = chunked_scan_range(
                view, low, high, start=start,
                stop=view.size if stop is None else stop,
                chunk_rows=self._chunk_rows(),
            )
            return (total, count) if count else (view.dtype.type(0), 0)
        segment = view[start:stop]
        mask = (segment >= low) & (segment <= high)
        count = int(np.count_nonzero(mask))
        if count == 0:
            return segment.dtype.type(0), 0
        return segment[mask].sum(), count

    def scan_count(self, low, high, start: int = 0, stop: int | None = None) -> int:
        """Count of values in ``[low, high]`` within ``data[start:stop]``."""
        view = self._view()
        if is_lazy(view):
            return chunked_scan_range(
                view, low, high, start=start,
                stop=view.size if stop is None else stop,
                chunk_rows=self._chunk_rows(),
            )[1]
        segment = view[start:stop]
        mask = (segment >= low) & (segment <= high)
        return int(np.count_nonzero(mask))

    def _chunk_rows(self) -> int | None:
        """Streamed chunk size for lazy reads (budget-derived when set)."""
        budget = budget_of(self)
        if budget is not None:
            return budget.chunk_rows(self.dtype)
        return None

    def copy_data(self) -> np.ndarray:
        """Return a writable copy of the visible values.

        Indexes that physically reorganise data (cracking, progressive
        quicksort) call this to obtain their private working array.  Under
        a memory budget the copy is allocated through the shared scratch
        allocator (pager-backed past the allowance) and filled chunk by
        chunk, so a paged base never materializes wholesale into RAM.
        """
        view = self._view()
        budget = budget_of(self)
        if budget is not None:
            out = budget.scratch.allocate(len(view), view.dtype)
            for offset, chunk in array_chunks(view, budget.chunk_rows(view.dtype)):
                out[offset : offset + len(chunk)] = chunk
            return out
        return self._view().copy()


def _coerce(values: ArrayLike, dtype: Optional[np.dtype] = None):
    """Validate and normalise column data to a contiguous int64/float64 array.

    Lazy arrays (paged compressed columns, chained snapshot views) pass
    through untouched — materializing them here would defeat out-of-core
    operation; they are already read-only and dtype-normalized at creation.
    """
    if is_lazy(values):
        name = np.dtype(values.dtype).name
        if name not in ("int64", "float64"):
            raise InvalidColumnError(f"column data must be numeric, got dtype {name}")
        if dtype is not None and np.dtype(dtype) != np.dtype(values.dtype):
            raise InvalidColumnError(
                f"lazy column data has dtype {name}, expected {np.dtype(dtype).name}"
            )
        return values
    array = np.asarray(values)
    if array.ndim != 1:
        raise InvalidColumnError(
            f"column data must be one-dimensional, got shape {array.shape}"
        )
    if dtype is not None:
        if array.dtype.kind not in ("i", "u", "b", "f"):
            raise InvalidColumnError(
                f"column data must be numeric, got dtype {array.dtype}"
            )
        if np.dtype(dtype).kind == "i" and array.dtype.kind == "f":
            # Casting 2.7 into an int64 column would silently store 2 — the
            # row the user wrote would never match the predicate they query.
            if not np.all(np.isfinite(array)) or not np.array_equal(
                array, np.trunc(array)
            ):
                raise InvalidColumnError(
                    "cannot write non-integral float values into an int64 "
                    "column; convert the values (or the column) explicitly"
                )
        return np.ascontiguousarray(array.astype(dtype, copy=False))
    if array.dtype.kind in ("i", "u", "b"):
        array = array.astype(np.int64, copy=False)
    elif array.dtype.kind == "f":
        array = array.astype(np.float64, copy=False)
    else:
        raise InvalidColumnError(
            f"column data must be numeric, got dtype {array.dtype}"
        )
    return np.ascontiguousarray(array)


class Column(_ReadableColumn):
    """A mutable, versioned column of numeric values.

    Parameters
    ----------
    values:
        One-dimensional numeric data.  Integer data is stored as ``int64``
        (the paper uses 8-byte integers); floating point data is stored as
        ``float64``.
    name:
        Optional attribute name, used only for display purposes.
    memory_budget:
        Optional :class:`~repro.storage.membudget.MemoryBudget` (or byte
        count) bounding what the column and everything built on it holds
        resident; ``None`` keeps the fully in-memory behavior.
    """

    def __init__(
        self,
        values: ArrayLike,
        name: str = "value",
        memory_budget=None,
    ) -> None:
        array = _coerce(values)
        if array.size == 0:
            raise InvalidColumnError("column data must not be empty")
        self._base = array
        self._base.setflags(write=False)
        self.memory_budget = MemoryBudget.coerce(memory_budget)
        self._name = str(name)
        self._min = None
        self._max = None
        self._delta: Optional[DeltaStore] = None
        self._dropped = False
        # (version, array) cache of the materialized visible rows.
        self._visible_cache: Optional[tuple] = None
        # version -> ColumnSnapshot LRU (see SNAPSHOT_CACHE_SIZE).  Both
        # caches are read from concurrent reader threads while the serving
        # layer's writer advances the version, so get/insert/evict run under
        # a lock; ``move_to_end`` on an entry another thread is evicting
        # would otherwise corrupt the OrderedDict.
        self._snapshot_cache: "OrderedDict[int, ColumnSnapshot]" = OrderedDict()
        self._cache_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    @property
    def base_data(self) -> np.ndarray:
        """The read-only base array (excludes all delta-store writes)."""
        return self._base

    @property
    def base_size(self) -> int:
        """Number of rows in the base array."""
        return int(self._base.size)

    @property
    def version(self) -> int:
        """Monotone write version (0 = never written to)."""
        return 0 if self._delta is None else self._delta.version

    @property
    def delta(self) -> Optional[DeltaStore]:
        """The write log (``None`` until the first write)."""
        return self._delta

    @property
    def dropped(self) -> bool:
        """Whether this column has been dropped from its table."""
        return self._dropped

    def _view(self) -> np.ndarray:
        delta = self._delta
        if delta is None or delta.version == 0:
            return self._base
        version = delta.version
        cached = self._visible_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        with self._cache_lock:
            cached = self._visible_cache
            if cached is not None and cached[0] == version:
                return cached[1]
            visible = self._visible_view(version)
            if visible is not self._base and not is_lazy(visible):
                visible = np.ascontiguousarray(visible)
                visible.setflags(write=False)
            self._visible_cache = (version, visible)
        return visible

    def _visible_view(self, version: int):
        """The rows visible at ``version`` — without copying a paged base.

        When the base is pager-backed (an ``np.memmap`` over a v1 column
        file or a paged view of a v2 compressed file) and no base row has
        been deleted, the result is a :class:`ChainArray` of the on-disk
        base plus the frozen insert tail: the base never materializes into
        RAM.  Base deletes fall back to full materialization (the visible
        base is then a gather, inherently O(alive rows)).
        """
        delta = self._delta
        if self.is_paged and delta.visible_base_mask(version) is None:
            inserts = delta.visible_insert_values(version)
            if inserts.size == 0:
                return self._base
            # Advanced indexing in visible_insert_values already copied the
            # log values out; freezing the copy makes the view immutable.
            inserts.setflags(write=False)
            return ChainArray([self._base, inserts])
        return delta.visible_array(version)

    def snapshot(self, version: Optional[int] = None) -> "ColumnSnapshot":
        """Freeze the rows visible at ``version`` (default: now).

        With no writes this is zero-copy (the snapshot shares the base
        array, which may itself be a read-only ``np.memmap`` over a column
        file); after writes the visible rows are materialized once per
        version and cached in a small LRU — repeated snapshots of a live
        version share one array, while versions left behind by a long write
        stream are evicted instead of retained forever (indexes pinning an
        evicted snapshot keep it alive through their own reference).
        """
        if version is None:
            version = self.version
        if self._delta is None or version == 0:
            return ColumnSnapshot(self._base, self._name, 0, self)
        with self._cache_lock:
            cached = self._snapshot_cache.get(version)
            if cached is not None:
                self._snapshot_cache.move_to_end(version)
                return cached
        # Materialize outside the lock: only cache bookkeeping must be
        # serialized, and materializing a large delta is the expensive part
        # concurrent readers should overlap.
        array = self._visible_view(version)
        if array is self._base or is_lazy(array):
            snapshot = ColumnSnapshot(array, self._name, version, self)
        else:
            array = np.ascontiguousarray(array)
            array.setflags(write=False)
            snapshot = ColumnSnapshot(array, self._name, version, self)
        with self._cache_lock:
            raced = self._snapshot_cache.get(version)
            if raced is not None:
                # Another thread materialized the same version first; share
                # its snapshot so equal versions stay identity-comparable.
                self._snapshot_cache.move_to_end(version)
                return raced
            self._snapshot_cache[version] = snapshot
            while len(self._snapshot_cache) > SNAPSHOT_CACHE_SIZE:
                self._snapshot_cache.popitem(last=False)
        return snapshot

    def cached_snapshot_versions(self) -> tuple:
        """Versions currently held by the snapshot LRU (oldest first)."""
        with self._cache_lock:
            return tuple(self._snapshot_cache.keys())

    # ------------------------------------------------------------------
    # Write operations
    # ------------------------------------------------------------------
    def _writable_delta(self) -> DeltaStore:
        if self._dropped:
            raise DroppedColumnError(
                f"column {self._name!r} has been dropped; writes are rejected"
            )
        if self._delta is None:
            self._delta = DeltaStore(self._base, memory_budget=self.memory_budget,
                                     name=self._name)
        return self._delta

    def _invalidate(self) -> None:
        self._min = None
        self._max = None

    def insert(self, values, handle=None) -> np.ndarray:
        """Append rows; returns the stable row ids of the new rows."""
        delta = self._writable_delta()
        coerced = _coerce(np.atleast_1d(np.asarray(values)), dtype=self._base.dtype)
        rids = delta.insert(coerced, handle=handle)
        self._invalidate()
        return rids

    def delete_rows(self, rids, handle=None) -> int:
        """Delete the rows with the given stable row ids."""
        delta = self._writable_delta()
        deleted = delta.delete(rids, handle=handle)
        if deleted:
            self._invalidate()
        return deleted

    def delete_where(self, low, high, handle=None) -> np.ndarray:
        """Delete all visible rows with values in ``[low, high]``.

        Returns the rids of the deleted rows (empty when nothing matched).
        """
        rids = self.rids_where(low, high)
        if rids.size:
            self.delete_rows(rids, handle=handle)
        return rids

    def update_rows(self, rids, values, handle=None) -> np.ndarray:
        """Replace the values of ``rids``; returns the *new* rids.

        An update is a delete plus an insert — the old rows become
        tombstones and the new values land in the insert log with fresh
        stable rids, exactly how a column store absorbs in-place writes.
        """
        rids = np.atleast_1d(np.asarray(rids, dtype=np.int64))
        values = np.atleast_1d(np.asarray(values))
        if values.size == 1 and rids.size > 1:
            values = np.repeat(values, rids.size)
        if values.size != rids.size:
            raise InvalidColumnError(
                f"update_rows() got {rids.size} rids but {values.size} values"
            )
        # Insert before deleting so an update touching every visible row
        # never passes through an empty column state.
        new_rids = self.insert(values, handle=handle)
        self.delete_rows(rids, handle=handle)
        return new_rids

    def update_where(self, low, high, value, handle=None) -> np.ndarray:
        """Set every visible row in ``[low, high]`` to ``value``; returns new rids."""
        rids = self.rids_where(low, high)
        if rids.size == 0:
            return rids
        return self.update_rows(rids, np.repeat(np.asarray(value), rids.size), handle=handle)

    def rids_where(self, low, high) -> np.ndarray:
        """Stable rids of the currently visible rows in ``[low, high]``."""
        if self._delta is None or self._delta.version == 0:
            if is_lazy(self._base):
                return chunked_rids_where(
                    self._base, low, high, chunk_rows=self._chunk_rows()
                )
            mask = (self._base >= low) & (self._base <= high)
            return np.flatnonzero(mask).astype(np.int64)
        delta = self._delta
        if is_lazy(self._base):
            base_rids = chunked_rids_where(
                self._base, low, high,
                chunk_rows=self._chunk_rows(),
                alive_mask=delta.visible_base_mask(),
            )
        else:
            base_mask = (self._base >= low) & (self._base <= high)
            alive = delta.visible_base_mask()
            if alive is not None:
                base_mask &= alive
            base_rids = np.flatnonzero(base_mask).astype(np.int64)
        ins_values = delta.insert_values
        ins_mask = (
            delta.visible_insert_mask() & (ins_values >= low) & (ins_values <= high)
        )
        ins_rids = delta.base_size + np.flatnonzero(ins_mask).astype(np.int64)
        return np.concatenate([base_rids, ins_rids])

    def values_at(self, rids) -> np.ndarray:
        """Current values of the rows with the given stable rids."""
        rids = np.atleast_1d(np.asarray(rids, dtype=np.int64))
        if self._delta is None:
            if rids.size and (rids.min() < 0 or rids.max() >= self._base.size):
                raise InvalidColumnError(
                    f"row id out of range (0 .. {self._base.size - 1})"
                )
            return self._base[rids]
        return self._delta.values_at(rids)

    def drop(self) -> None:
        """Mark the column dropped; subsequent writes raise loudly."""
        self._dropped = True

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Column(name={self._name!r}, size={len(self)}, dtype={self.dtype}, "
            f"version={self.version})"
        )

    # ------------------------------------------------------------------
    # Persistence hooks
    # ------------------------------------------------------------------
    def restore_delta(self, state: dict) -> None:
        """Re-attach a checkpointed delta store (recovery path).

        Only legal on a column that has never been written to in this
        process — recovery rebuilds the write log *before* replaying the
        WAL tail on top of it.
        """
        if self._delta is not None:
            raise InvalidColumnError(
                f"column {self._name!r} already has a live delta store; "
                "restore_delta() is a recovery-only operation"
            )
        self._delta = DeltaStore.from_state(
            self._base, state, memory_budget=self.memory_budget
        )
        self._invalidate()
        self._visible_cache = None

    @property
    def is_mapped(self) -> bool:
        """Whether the base array is a memory map over a column file.

        ``_coerce`` turns a contiguous native-dtype ``np.memmap`` into a
        zero-copy base-class view, so the mapping is found by walking the
        ``base`` chain rather than an ``isinstance`` check on ``_base``.
        """
        array = self._base
        while array is not None and not is_lazy(array):
            if isinstance(array, np.memmap):
                return True
            array = getattr(array, "base", None)
        return False

    @property
    def is_paged(self) -> bool:
        """Whether the base lives on disk (memmap or compressed paged view)."""
        return is_lazy(self._base) or self.is_mapped

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_numpy(cls, array: np.ndarray, name: str = "value") -> "Column":
        """Build a column that wraps ``array`` (copying only when required)."""
        return cls(array, name=name)

    @classmethod
    def from_file(
        cls,
        path: str,
        name: str = "value",
        memory_budget=None,
        cache=None,
    ) -> "Column":
        """Build a column whose base array is paged in from ``path``.

        A v1 file (:func:`repro.persist.pager.write_column_file`) maps
        read-only and zero-copy; a v2 compressed file
        (:func:`repro.persist.compress.write_compressed_column`) reads
        through a block cache — the ``memory_budget``'s shared cache when
        one is given, the process default otherwise.
        """
        from repro.persist.pager import map_column_file

        budget = MemoryBudget.coerce(memory_budget)
        if cache is None and budget is not None:
            cache = budget.block_cache
        return cls(
            map_column_file(path, cache=cache), name=name, memory_budget=budget
        )


class ColumnSnapshot(_ReadableColumn):
    """A frozen, versioned view of a column's visible rows.

    Quacks exactly like the pre-refactor immutable column, which is what the
    index implementations build their structures against: the snapshot array
    never changes, so every cached statistic and derived structure stays
    valid no matter how many writes land on the live column afterwards.
    """

    def __init__(
        self,
        array: np.ndarray,
        name: str,
        version: int,
        source: Optional[Column] = None,
    ) -> None:
        self._data = array
        self._name = str(name)
        self._min = None
        self._max = None
        #: Version of the live column this snapshot froze.
        self.version = int(version)
        #: The live column the snapshot was taken from (``None`` if detached).
        self.source = source

    def _view(self) -> np.ndarray:
        return self._data

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ColumnSnapshot(name={self._name!r}, size={len(self)}, "
            f"version={self.version})"
        )
