"""Immutable column of numeric values.

A :class:`Column` is the unit every index in this library operates on.  It is
a thin wrapper around a contiguous one-dimensional NumPy array that

* validates the input (non-empty, one-dimensional, numeric),
* exposes cached ``min``/``max`` statistics (used for pivot selection and
  radix domain computation, mirroring the paper's use of ``[min, max]``),
* provides the vectorised scan primitives shared by all indexes
  (:meth:`scan_range` and :meth:`scan_count`), which implement the paper's
  predicated full-scan baseline.

The column is treated as immutable: indexes copy data out of it but never
write back into it.  The underlying array is flagged read-only to make
accidental mutation an error rather than a silent bug.
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

from repro.errors import InvalidColumnError

ArrayLike = Union[np.ndarray, list, tuple]


class Column:
    """An immutable, contiguous column of numeric values.

    Parameters
    ----------
    values:
        One-dimensional numeric data.  Integer data is stored as ``int64``
        (the paper uses 8-byte integers); floating point data is stored as
        ``float64``.
    name:
        Optional attribute name, used only for display purposes.
    """

    def __init__(self, values: ArrayLike, name: str = "value") -> None:
        array = np.asarray(values)
        if array.ndim != 1:
            raise InvalidColumnError(
                f"column data must be one-dimensional, got shape {array.shape}"
            )
        if array.size == 0:
            raise InvalidColumnError("column data must not be empty")
        if array.dtype.kind in ("i", "u", "b"):
            array = array.astype(np.int64, copy=False)
        elif array.dtype.kind == "f":
            array = array.astype(np.float64, copy=False)
        else:
            raise InvalidColumnError(
                f"column data must be numeric, got dtype {array.dtype}"
            )
        self._data = np.ascontiguousarray(array)
        self._data.setflags(write=False)
        self._name = str(name)
        self._min = None
        self._max = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Attribute name of the column."""
        return self._name

    @property
    def data(self) -> np.ndarray:
        """Read-only view of the underlying array."""
        return self._data

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype of the stored values (``int64`` or ``float64``)."""
        return self._data.dtype

    def __len__(self) -> int:
        return int(self._data.size)

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def __getitem__(self, item):
        return self._data[item]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Column(name={self._name!r}, size={len(self)}, dtype={self.dtype})"

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def min(self):
        """Smallest value in the column (cached after the first call)."""
        if self._min is None:
            self._min = self._data.min()
        return self._min

    def max(self):
        """Largest value in the column (cached after the first call)."""
        if self._max is None:
            self._max = self._data.max()
        return self._max

    def value_range(self):
        """Return ``(min, max)`` of the column."""
        return self.min(), self.max()

    # ------------------------------------------------------------------
    # Scan primitives
    # ------------------------------------------------------------------
    def scan_range(self, low, high, start: int = 0, stop: int | None = None):
        """Predicated scan: sum and count of values in ``[low, high]``.

        Mirrors the paper's ``SELECT SUM(R.A) WHERE R.A BETWEEN low AND high``
        executed with predication (no data-dependent branches): a boolean mask
        is materialised and reduced regardless of selectivity.

        Parameters
        ----------
        low, high:
            Inclusive range bounds.
        start, stop:
            Optional element offsets restricting the scan to
            ``data[start:stop]``; used by partial indexes that only need to
            scan the not-yet-indexed tail of the column.

        Returns
        -------
        tuple
            ``(matching_sum, matching_count)``.
        """
        segment = self._data[start:stop]
        mask = (segment >= low) & (segment <= high)
        count = int(np.count_nonzero(mask))
        if count == 0:
            return segment.dtype.type(0), 0
        return segment[mask].sum(), count

    def scan_count(self, low, high, start: int = 0, stop: int | None = None) -> int:
        """Count of values in ``[low, high]`` within ``data[start:stop]``."""
        segment = self._data[start:stop]
        mask = (segment >= low) & (segment <= high)
        return int(np.count_nonzero(mask))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_numpy(cls, array: np.ndarray, name: str = "value") -> "Column":
        """Build a column that wraps ``array`` (copying only when required)."""
        return cls(array, name=name)

    def copy_data(self) -> np.ndarray:
        """Return a writable copy of the column data.

        Indexes that physically reorganise data (cracking, progressive
        quicksort) call this to obtain their private working array.
        """
        return self._data.copy()
