"""Columnar storage substrate.

The paper operates on a single integer attribute of a large table (e.g. the
Right Ascension column of SkyServer's ``PhotoObjAll``).  This package provides
the minimal columnar storage layer the indexes are built on: an immutable
:class:`~repro.storage.column.Column` plus a simple named-column
:class:`~repro.storage.table.Table`.
"""

from repro.storage.column import Column
from repro.storage.table import Table

__all__ = ["Column", "Table"]
