"""Columnar storage substrate.

The paper operates on a single integer attribute of a large table (e.g. the
Right Ascension column of SkyServer's ``PhotoObjAll``).  This package provides
the mutable columnar storage layer the indexes are built on: a versioned
:class:`~repro.storage.column.Column` (read-optimized base array plus an
append-only :class:`~repro.storage.delta.DeltaStore` absorbing
insert/delete/update writes), frozen
:class:`~repro.storage.column.ColumnSnapshot` views the indexes build their
structures against, and a row-oriented named-column
:class:`~repro.storage.table.Table`.
"""

from repro.storage.column import Column, ColumnSnapshot
from repro.storage.delta import DeltaStore, merge_sorted_with_delta, remove_tombstones
from repro.storage.table import Table

__all__ = [
    "Column",
    "ColumnSnapshot",
    "DeltaStore",
    "Table",
    "merge_sorted_with_delta",
    "remove_tombstones",
]
