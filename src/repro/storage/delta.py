"""Append-only delta store backing the mutable column substrate.

The paper amortizes index *construction* into queries; the delta store
extends the same pay-as-you-go idea to *maintenance*.  A
:class:`~repro.storage.column.Column` stays a read-optimized base array
forever; every write lands in its :class:`DeltaStore` instead:

* an ``insert`` appends the new values to an append-only log;
* a ``delete`` marks the victim row in a deleted-rid bitmap and records the
  deleted *value* in a tombstone log (aggregate queries only ever need the
  value, never the position);
* an ``update`` is a delete plus an insert.

Every row — base or inserted — has a stable row id (rid): base rows are
``0 .. base_size - 1``, inserted rows continue from ``base_size`` in
insertion order.  Every individual write is stamped with a monotonically
increasing sequence number; the store can answer "which inserts/deletes
happened in the window ``(after, upto]``" with two binary searches, which is
exactly what an index's delta overlay needs to correct a structural answer
computed over an older snapshot.

The log arrays grow by amortized doubling, so a write is O(1) and the log
views handed to overlays are zero-copy slices.
"""

from __future__ import annotations

import os
import tempfile
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InvalidColumnError


def _spill_backing(capacity: int, dtype: np.dtype, directory: Optional[str]) -> np.ndarray:
    """A writable array of ``capacity`` backed by an unlinked temp file.

    The mapping keeps the file alive; unlinking immediately means a crashed
    process leaves no spill litter behind, and the kernel reclaims the
    bytes the moment the array is garbage collected.
    """
    if directory is not None:
        os.makedirs(directory, exist_ok=True)
    fd, path = tempfile.mkstemp(prefix="delta-", suffix=".spill", dir=directory)
    try:
        os.ftruncate(fd, max(1, int(capacity) * dtype.itemsize))
        array = np.memmap(path, dtype=dtype, mode="r+", shape=(int(capacity),))
    finally:
        os.close(fd)
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - platform quirks
            pass
    return array


class _GrowableArray:
    """A contiguous NumPy array with amortized-O(1) append.

    With ``spill_bytes`` set, a regrow that would exceed it re-homes the
    log into an unlinked-temp-file ``np.memmap`` instead of anonymous RAM:
    every existing semantic survives — ``values`` stays a zero-copy
    *writable* view (the delete path stamps dead-sequence numbers in
    place) — but the OS pages the log in and out instead of the process
    holding it resident.
    """

    __slots__ = ("_data", "_size", "_spill_bytes", "_spill_dir", "spilled")

    def __init__(
        self,
        dtype,
        initial_capacity: int = 16,
        spill_bytes: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        self._data = np.empty(int(initial_capacity), dtype=dtype)
        self._size = 0
        self._spill_bytes = spill_bytes
        self._spill_dir = spill_dir
        self.spilled = False

    def __len__(self) -> int:
        return self._size

    @property
    def values(self) -> np.ndarray:
        """Zero-copy view of the appended elements."""
        return self._data[: self._size]

    def append(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self._data.dtype)
        needed = self._size + values.size
        if needed > self._data.size:
            capacity = max(self._data.size * 2, needed)
            if (
                self._spill_bytes is not None
                and capacity * self._data.dtype.itemsize > self._spill_bytes
            ):
                grown = _spill_backing(capacity, self._data.dtype, self._spill_dir)
                if not self.spilled:
                    from repro import obs

                    obs.metrics().counter(
                        "delta.spills",
                        help="Delta write logs spilled to disk backing",
                    ).inc()
                self.spilled = True
            else:
                grown = np.empty(capacity, dtype=self._data.dtype)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size : needed] = values
        self._size = needed


class DeltaStore:
    """Versioned write log of one column.

    Parameters
    ----------
    base:
        The column's immutable base array; deleted base rids index into it.
    memory_budget:
        Optional :class:`~repro.storage.membudget.MemoryBudget`; when set,
        each write log spills its backing to an unlinked temp file once it
        outgrows its share of the budget's delta allowance.
    """

    def __init__(self, base, memory_budget=None, name=None) -> None:
        self._base = base
        self.base_size = int(base.size)
        dtype = np.dtype(base.dtype)
        self.memory_budget = memory_budget
        if memory_budget is not None:
            spill = {
                "spill_bytes": max(1, memory_budget.delta_cap_bytes // 4),
                "spill_dir": memory_budget.spill_dir,
            }
        else:
            spill = {}
        # Insert log: value, sequence number, and the sequence number of the
        # delete that later killed the row (-1 while alive).
        self._ins_values = _GrowableArray(dtype, **spill)
        self._ins_seq = _GrowableArray(np.int64, **spill)
        self._ins_dead_seq = _GrowableArray(np.int64, **spill)
        # Delete log: sequence number and the value of the deleted row.
        self._del_seq = _GrowableArray(np.int64, **spill)
        self._del_values = _GrowableArray(dtype, **spill)
        # Deleted-rid bitmap over the base rows, stored as the sequence
        # number of the delete (-1 = alive); allocated on the first delete.
        self._base_dead_seq: Optional[np.ndarray] = None
        #: Sequence number of the most recent write (0 = no writes yet).
        self.version = 0
        #: Distinct non-``None`` write handles with uncommitted deltas,
        #: keyed on ``id(handle)`` with a weak reference alongside: a
        #: garbage-collected writer auto-commits (its flag is pruned), which
        #: also defuses CPython id reuse resurrecting a stale flag.
        self.pending_handles: Dict[int, Optional[weakref.ref]] = {}
        self._handle_names: dict = {}
        # Lazily-read pull series: write counts and the log footprint are
        # already tracked, so the write hot path pays nothing.
        from repro import obs

        registry = obs.metrics()
        column_name = name or "column"
        registry.register_pull("delta.inserts", self, lambda d: d.n_inserts,
                               help="Rows in the insert log",
                               column=column_name)
        registry.register_pull("delta.deletes", self, lambda d: d.n_deletes,
                               help="Rows in the delete log",
                               column=column_name)
        registry.register_pull("delta.bytes", self, lambda d: d.memory_footprint(),
                               kind="gauge", help="Delta log footprint in bytes",
                               column=column_name)

    # ------------------------------------------------------------------
    # Write operations
    # ------------------------------------------------------------------
    def insert(self, values: np.ndarray, handle=None) -> np.ndarray:
        """Append ``values``; returns the stable rids of the new rows."""
        values = np.atleast_1d(np.asarray(values))
        first_rid = self.base_size + len(self._ins_values)
        seqs = self.version + 1 + np.arange(values.size, dtype=np.int64)
        self._ins_values.append(values)
        self._ins_seq.append(seqs)
        self._ins_dead_seq.append(np.full(values.size, -1, dtype=np.int64))
        self.version += int(values.size)
        self._note_handle(handle)
        return first_rid + np.arange(values.size, dtype=np.int64)

    def delete(self, rids: np.ndarray, handle=None) -> int:
        """Mark ``rids`` deleted; returns the number of rows deleted.

        Every rid must reference a currently visible row — deleting an
        unknown or already-deleted row is an error, not a no-op.
        """
        rids = np.atleast_1d(np.asarray(rids, dtype=np.int64))
        if rids.size == 0:
            return 0
        if rids.size != np.unique(rids).size:
            raise InvalidColumnError("delete() received duplicate row ids")
        if self.visible_count() - rids.size <= 0:
            raise InvalidColumnError(
                "cannot delete every visible row: a column must keep at "
                "least one row (min/max statistics and index construction "
                "require non-empty data)"
            )
        values = self.values_at(rids, require_alive=True)
        base_mask = rids < self.base_size
        base_rids = rids[base_mask]
        if base_rids.size:
            if self._base_dead_seq is None:
                self._base_dead_seq = np.full(self.base_size, -1, dtype=np.int64)
        seqs = self.version + 1 + np.arange(rids.size, dtype=np.int64)
        if base_rids.size:
            self._base_dead_seq[base_rids] = seqs[base_mask]
        insert_ordinals = rids[~base_mask] - self.base_size
        if insert_ordinals.size:
            self._ins_dead_seq.values[insert_ordinals] = seqs[~base_mask]
        self._del_seq.append(seqs)
        self._del_values.append(values)
        self.version += int(rids.size)
        self._note_handle(handle)
        return int(rids.size)

    def _note_handle(self, handle) -> None:
        if handle is None:
            return
        try:
            ref: Optional[weakref.ref] = weakref.ref(handle)
        except TypeError:
            ref = None  # non-weakrefable handles stay pending until commit()
        self.pending_handles[id(handle)] = ref
        self._handle_names[id(handle)] = repr(handle)

    def commit(self, handle) -> None:
        """Mark ``handle``'s writes committed (clears its pending flag)."""
        self.pending_handles.pop(id(handle), None)
        self._handle_names.pop(id(handle), None)

    def foreign_handles(self, handle) -> list:
        """Pending write handles other than ``handle`` (display names).

        Handles whose writer object has been garbage collected are pruned —
        an abandoned, uncommitted writer must not block ``create_index``
        forever.
        """
        own = id(handle) if handle is not None else None
        names = []
        for key in sorted(self.pending_handles):
            ref = self.pending_handles[key]
            if ref is not None and ref() is None:
                self.pending_handles.pop(key)
                self._handle_names.pop(key, None)
                continue
            if key != own:
                names.append(self._handle_names.get(key, str(key)))
        return names

    # ------------------------------------------------------------------
    # Row lookups
    # ------------------------------------------------------------------
    def is_alive(self, rid: int, version: Optional[int] = None) -> bool:
        """Whether ``rid`` is visible at ``version`` (default: now)."""
        upto = self.version if version is None else int(version)
        rid = int(rid)
        if rid < 0:
            return False
        if rid < self.base_size:
            if self._base_dead_seq is None:
                return True
            dead = int(self._base_dead_seq[rid])
            return dead < 0 or dead > upto
        ordinal = rid - self.base_size
        if ordinal >= len(self._ins_values):
            return False
        if int(self._ins_seq.values[ordinal]) > upto:
            return False
        dead = int(self._ins_dead_seq.values[ordinal])
        return dead < 0 or dead > upto

    def values_at(self, rids: np.ndarray, require_alive: bool = False) -> np.ndarray:
        """Current values of ``rids`` (base or inserted rows)."""
        rids = np.atleast_1d(np.asarray(rids, dtype=np.int64))
        highest = self.base_size + len(self._ins_values)
        if rids.size and (rids.min() < 0 or rids.max() >= highest):
            bad = rids[(rids < 0) | (rids >= highest)][0]
            raise InvalidColumnError(
                f"row id {int(bad)} is out of range (0 .. {highest - 1})"
            )
        base_mask = rids < self.base_size
        if require_alive:
            # Vectorized liveness check (this sits on the range-delete hot
            # path): a row is dead iff its dead-seq is set; at the current
            # version every logged insert is already visible.
            base_rids = rids[base_mask]
            if base_rids.size and self._base_dead_seq is not None:
                dead = self._base_dead_seq[base_rids] >= 0
                if dead.any():
                    raise InvalidColumnError(
                        f"row id {int(base_rids[dead][0])} is already deleted"
                    )
            ordinals = rids[~base_mask] - self.base_size
            if ordinals.size:
                dead = self._ins_dead_seq.values[ordinals] >= 0
                if dead.any():
                    raise InvalidColumnError(
                        f"row id {int(ordinals[dead][0] + self.base_size)} "
                        "is already deleted"
                    )
        values = np.empty(rids.size, dtype=self._base.dtype)
        if base_mask.any():
            values[base_mask] = self._base[rids[base_mask]]
        if (~base_mask).any():
            values[~base_mask] = self._ins_values.values[
                rids[~base_mask] - self.base_size
            ]
        return values

    # ------------------------------------------------------------------
    # Snapshot materialization
    # ------------------------------------------------------------------
    def visible_base_mask(self, version: Optional[int] = None) -> Optional[np.ndarray]:
        """Bool mask of base rows alive at ``version`` (``None`` = all alive)."""
        upto = self.version if version is None else int(version)
        if self._base_dead_seq is None:
            return None
        dead = (self._base_dead_seq >= 0) & (self._base_dead_seq <= upto)
        if not dead.any():
            return None
        return ~dead

    def visible_insert_mask(self, version: Optional[int] = None) -> np.ndarray:
        """Bool mask over the insert log of rows alive at ``version``."""
        upto = self.version if version is None else int(version)
        seqs = self._ins_seq.values
        dead = self._ins_dead_seq.values
        return (seqs <= upto) & ((dead < 0) | (dead > upto))

    def visible_insert_values(self, version: Optional[int] = None) -> np.ndarray:
        """Values of inserted rows alive at ``version``."""
        return self._ins_values.values[self.visible_insert_mask(version)]

    @property
    def insert_values(self) -> np.ndarray:
        """The full insert log values (including later-deleted rows)."""
        return self._ins_values.values

    def visible_array(self, version: Optional[int] = None) -> np.ndarray:
        """Materialize the visible rows at ``version`` (base order + inserts)."""
        mask = self.visible_base_mask(version)
        base_part = self._base if mask is None else self._base[mask]
        inserts = self.visible_insert_values(version)
        if inserts.size == 0:
            return base_part
        return np.concatenate([base_part, inserts])

    def visible_count(self, version: Optional[int] = None) -> int:
        """Number of rows visible at ``version``."""
        upto = self.version if version is None else int(version)
        count = self.base_size
        if self._base_dead_seq is not None:
            count -= int(
                np.count_nonzero(
                    (self._base_dead_seq >= 0) & (self._base_dead_seq <= upto)
                )
            )
        seqs = self._ins_seq.values
        dead = self._ins_dead_seq.values
        count += int(np.count_nonzero((seqs <= upto) & ((dead < 0) | (dead > upto))))
        return count

    # ------------------------------------------------------------------
    # Windows (the overlay's view of "what happened since my watermark")
    # ------------------------------------------------------------------
    def insert_window(self, after: int, upto: int) -> np.ndarray:
        """Values inserted with sequence numbers in ``(after, upto]``."""
        seqs = self._ins_seq.values
        lo = int(np.searchsorted(seqs, after, side="right"))
        hi = int(np.searchsorted(seqs, upto, side="right"))
        return self._ins_values.values[lo:hi]

    def delete_window(self, after: int, upto: int) -> np.ndarray:
        """Values deleted with sequence numbers in ``(after, upto]``."""
        seqs = self._del_seq.values
        lo = int(np.searchsorted(seqs, after, side="right"))
        hi = int(np.searchsorted(seqs, upto, side="right"))
        return self._del_values.values[lo:hi]

    def window_size(self, after: int, upto: int) -> int:
        """Number of write operations in ``(after, upto]``."""
        return self.insert_window(after, upto).size + self.delete_window(after, upto).size

    # ------------------------------------------------------------------
    @property
    def n_inserts(self) -> int:
        """Total rows ever inserted (including later-deleted ones)."""
        return len(self._ins_values)

    @property
    def n_deletes(self) -> int:
        """Total rows ever deleted."""
        return len(self._del_seq)

    def memory_footprint(self) -> int:
        """Approximate bytes held by the write logs and bitmaps."""
        total = (
            self._ins_values.values.nbytes
            + self._ins_seq.values.nbytes
            + self._ins_dead_seq.values.nbytes
            + self._del_seq.values.nbytes
            + self._del_values.values.nbytes
        )
        if self._base_dead_seq is not None:
            total += self._base_dead_seq.nbytes
        return total

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the write log (pending handles excluded).

        Handles are process-local writer identities; after a restart every
        surviving (checkpointed or WAL-replayed) operation is committed by
        definition, so they are deliberately not part of the durable state.
        """
        state = {
            "version": int(self.version),
            "base_size": int(self.base_size),
            "ins_values": np.array(self._ins_values.values),
            "ins_seq": np.array(self._ins_seq.values),
            "ins_dead_seq": np.array(self._ins_dead_seq.values),
            "del_seq": np.array(self._del_seq.values),
            "del_values": np.array(self._del_values.values),
        }
        if self._base_dead_seq is not None:
            state["base_dead_seq"] = np.array(self._base_dead_seq)
        return state

    @classmethod
    def from_state(cls, base, state: dict, memory_budget=None) -> "DeltaStore":
        """Rebuild a delta store over ``base`` from :meth:`state_dict` output."""
        store = cls(base, memory_budget=memory_budget)
        if int(state["base_size"]) != store.base_size:
            raise InvalidColumnError(
                f"delta-store state covers a base of {state['base_size']} rows, "
                f"but the column base holds {store.base_size}"
            )
        store._ins_values.append(state["ins_values"])
        store._ins_seq.append(state["ins_seq"])
        store._ins_dead_seq.append(state["ins_dead_seq"])
        store._del_seq.append(state["del_seq"])
        store._del_values.append(state["del_values"])
        dead = state.get("base_dead_seq")
        if dead is not None:
            store._base_dead_seq = np.array(dead, dtype=np.int64)
        store.version = int(state["version"])
        return store

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DeltaStore(version={self.version}, inserts={self.n_inserts}, "
            f"deletes={self.n_deletes})"
        )


# ----------------------------------------------------------------------
# Sealed sorted runs (the spilled half of the overlay side buffers)
# ----------------------------------------------------------------------
class SealedRun:
    """One immutable sorted run of values spilled to disk.

    Alongside the sorted values the run stores their prefix sums, so a
    range correction ``(sum, count)`` costs two binary searches plus one
    prefix difference — O(log n) pages touched, exactly like the resident
    side buffers, never a full read of the run.
    """

    def __init__(self, values_sorted: np.ndarray, directory: Optional[str] = None) -> None:
        values_sorted = np.ascontiguousarray(values_sorted)
        if values_sorted.size == 0:
            raise InvalidColumnError("cannot seal an empty run")
        self.size = int(values_sorted.size)
        self.dtype = values_sorted.dtype
        prefix_dtype = np.float64 if values_sorted.dtype.kind == "f" else np.int64
        # Values and prefix sums are both 8-byte elements, so one file of
        # 2n + 1 slots holds both sections.
        backing = _spill_backing(2 * self.size + 1, values_sorted.dtype, directory)
        # Two sections in one unlinked file: values, then prefix sums.
        self.values = backing[: self.size]
        self.values[:] = values_sorted
        prefix_view = backing[self.size :].view(prefix_dtype)[: self.size + 1]
        prefix_view[0] = 0
        np.cumsum(values_sorted, dtype=prefix_dtype, out=prefix_view[1:])
        self.prefix = prefix_view
        if hasattr(backing, "flush"):
            backing.flush()

    def correction(self, low, high) -> Tuple:
        """``(sum, count)`` of run values in ``[low, high]``."""
        lo = int(np.searchsorted(self.values, low, side="left"))
        hi = int(np.searchsorted(self.values, high, side="right"))
        return self.prefix[hi] - self.prefix[lo], hi - lo

    def correct_many(self, lows: np.ndarray, highs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`correction` over predicate batches."""
        los = np.searchsorted(self.values, lows, side="left")
        his = np.searchsorted(self.values, highs, side="right")
        return self.prefix[his] - self.prefix[los], (his - los).astype(np.int64)

    def materialize(self) -> np.ndarray:
        """The sorted values, resident (used only by O(n) folds)."""
        return np.array(self.values)


class SortedRunStore:
    """A stack of :class:`SealedRun` files plus aggregate corrections.

    The overlay seals its resident sorted buffer into a run whenever it
    outgrows the budget's allowance; corrections then combine the resident
    buffer with every sealed run.  Folding (the merge phase) drains all
    runs back into the index structure and clears the store.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self.runs: List[SealedRun] = []

    def seal(self, values_sorted: np.ndarray) -> None:
        if values_sorted.size:
            self.runs.append(SealedRun(values_sorted, self.directory))

    @property
    def total_rows(self) -> int:
        return sum(run.size for run in self.runs)

    def correction(self, low, high) -> Tuple:
        """Aggregated ``(sum, count)`` over every sealed run."""
        total = 0  # python int: int64 runs stay exact past 2**53
        count = 0
        for run in self.runs:
            part_sum, part_count = run.correction(low, high)
            total = total + part_sum
            count += int(part_count)
        return total, count

    def correct_many(self, lows: np.ndarray, highs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        sum_dtype = self.runs[0].prefix.dtype if self.runs else np.float64
        sums = np.zeros(len(lows), dtype=sum_dtype)
        counts = np.zeros(len(lows), dtype=np.int64)
        for run in self.runs:
            part_sums, part_counts = run.correct_many(lows, highs)
            sums += part_sums
            counts += part_counts
        return sums, counts

    def merged(self) -> np.ndarray:
        """All run values merged into one sorted resident array."""
        if not self.runs:
            return np.empty(0, dtype=np.int64)
        parts = [run.materialize() for run in self.runs]
        out = np.concatenate(parts)
        out.sort(kind="stable")
        return out

    def clear(self) -> None:
        self.runs = []


# ----------------------------------------------------------------------
# Sorted-merge helpers shared by the index-side delta overlays
# ----------------------------------------------------------------------
def remove_tombstones(sorted_values: np.ndarray, tombstones_sorted: np.ndarray) -> np.ndarray:
    """Remove one occurrence per tombstone value from a sorted array.

    Every tombstone corresponds to exactly one deleted row whose value is
    guaranteed to be present in ``sorted_values`` (aggregate queries make
    equal values interchangeable, so *which* occurrence is removed does not
    matter).  Duplicated tombstone values remove consecutive occurrences.
    """
    if tombstones_sorted.size == 0:
        return sorted_values
    positions = np.searchsorted(sorted_values, tombstones_sorted, side="left")
    first_of_value = np.searchsorted(tombstones_sorted, tombstones_sorted, side="left")
    occurrence = np.arange(tombstones_sorted.size) - first_of_value
    return np.delete(sorted_values, positions + occurrence)


def merge_sorted_with_delta(
    sorted_values: np.ndarray,
    inserts_sorted: np.ndarray,
    tombstones_sorted: np.ndarray,
) -> np.ndarray:
    """Fold sorted insert/tombstone buffers into a sorted array.

    Returns a new sorted array equal to ``sorted_values`` plus the inserts
    minus one occurrence per tombstone.
    """
    if inserts_sorted.size:
        combined = np.concatenate([sorted_values, inserts_sorted])
        combined.sort(kind="stable")
    else:
        combined = sorted_values
    return remove_tombstones(combined, tombstones_sorted)
