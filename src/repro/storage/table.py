"""A minimal named-column table with row-oriented writes.

The paper's experiments only touch a single attribute, but a downstream user
of the library typically starts from a table.  :class:`Table` groups columns
by name and is the entry point used by the high-level
:class:`repro.engine.session.IndexingSession` API.

Writes are **row oriented**: :meth:`Table.insert_rows`,
:meth:`Table.delete_rows` and :meth:`Table.update_where` apply the same
stable row ids to *every* column in lockstep, so the columns' delta stores
stay aligned and multi-column conjunctions (``session.where``) remain
correct after any interleaving of writes.  Writing to a single column of a
multi-column table directly (``table.column("a").insert(...)``) would break
that alignment — always go through the table-level methods.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

import numpy as np

from repro.errors import InvalidColumnError, UnknownColumnError
from repro.storage.column import Column


class Table:
    """A collection of equally sized named columns.

    Parameters
    ----------
    columns:
        Mapping from column name to column data (NumPy arrays, lists or
        :class:`Column` instances).  All columns must have the same length.
    name:
        Optional table name for display purposes.
    """

    def __init__(self, columns: Mapping[str, object], name: str = "table") -> None:
        if not columns:
            raise InvalidColumnError("a table requires at least one column")
        self._name = str(name)
        self._columns: Dict[str, Column] = {}
        length = None
        for col_name, values in columns.items():
            column = values if isinstance(values, Column) else Column(values, name=col_name)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise InvalidColumnError(
                    f"column {col_name!r} has length {len(column)}, expected {length}"
                )
            self._columns[str(col_name)] = column

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Table name."""
        return self._name

    @property
    def column_names(self) -> Iterable[str]:
        """Names of the columns in insertion order."""
        return tuple(self._columns.keys())

    def __len__(self) -> int:
        return len(next(iter(self._columns.values())))

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def column(self, column_name: str) -> Column:
        """Return the column registered under ``column_name``."""
        try:
            return self._columns[column_name]
        except KeyError:
            raise UnknownColumnError(
                f"table {self._name!r} has no column {column_name!r}; "
                f"available columns: {sorted(self._columns)}"
            ) from None

    def __getitem__(self, column_name: str) -> Column:
        return self.column(column_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table(name={self._name!r}, rows={len(self)}, columns={list(self._columns)})"

    # ------------------------------------------------------------------
    # Row-oriented writes
    # ------------------------------------------------------------------
    def insert_rows(self, values_by_column: Mapping[str, object], handle=None) -> np.ndarray:
        """Insert full rows; returns the stable rids of the new rows.

        ``values_by_column`` must provide a value (or equal-length sequence
        of values) for **every** column of the table — partial rows would
        leave the columns misaligned.
        """
        unknown = set(values_by_column) - set(self._columns)
        if unknown:
            raise UnknownColumnError(
                f"insert_rows() references unknown columns {sorted(unknown)}; "
                f"available: {sorted(self._columns)}"
            )
        missing = set(self._columns) - set(values_by_column)
        if missing:
            raise InvalidColumnError(
                f"insert_rows() must cover every column; missing {sorted(missing)}"
            )
        arrays = {
            name: np.atleast_1d(np.asarray(values))
            for name, values in values_by_column.items()
        }
        sizes = {array.size for array in arrays.values()}
        if len(sizes) != 1:
            raise InvalidColumnError(
                f"insert_rows() received ragged row data (lengths {sorted(sizes)})"
            )
        # Sharded tables route every column's batch with ONE assignment
        # computed from the driving column's values, so a row lands in the
        # same shard across columns (duck-typed to avoid a storage -> shard
        # import cycle; unsharded columns take the plain path).
        shard_ids = None
        first = next(iter(self._columns.values()))
        shard_set = getattr(first, "shard_set", None)
        if shard_set is not None:
            shard_ids = shard_set.route_values(arrays[shard_set.driving_column])
        rids = None
        for name, column in self._columns.items():
            if shard_ids is not None:
                rids = column.insert(arrays[name], handle=handle, shard_ids=shard_ids)
            else:
                rids = column.insert(arrays[name], handle=handle)
        return rids

    def delete_rows(self, rids, handle=None) -> int:
        """Delete the rows with the given stable rids from every column."""
        deleted = 0
        for column in self._columns.values():
            deleted = column.delete_rows(rids, handle=handle)
        return deleted

    def delete_where(self, column_name: str, low, high, handle=None) -> int:
        """Delete every row whose ``column_name`` value lies in ``[low, high]``."""
        rids = self.column(column_name).rids_where(low, high)
        if rids.size:
            self.delete_rows(rids, handle=handle)
        return int(rids.size)

    def update_plan(self, column_name: str, low, high, value):
        """The insert + delete pair an update decomposes into.

        Returns ``(rids, replacements)``: the stable rids of the matching
        rows and the full replacement rows (target column substituted, all
        other column values preserved).  ``rids`` is empty when nothing
        matches.  Shared by :meth:`update_where` and the durability layer's
        write-ahead logging, so the logged operations are exactly the ones
        the table applies.
        """
        target = self.column(column_name)
        rids = target.rids_where(low, high)
        if rids.size == 0:
            return rids, {}
        replacements = {
            name: (
                np.repeat(np.asarray(value), rids.size)
                if name == column_name
                else column.values_at(rids)
            )
            for name, column in self._columns.items()
        }
        return rids, replacements

    def update_where(self, column_name: str, low, high, value, handle=None) -> int:
        """Set ``column_name`` to ``value`` for every row in ``[low, high]``.

        The matching rows are deleted and re-inserted with the target column
        substituted, so every column sees the same delete + insert pair and
        the stable-rid alignment across columns is preserved.
        """
        rids, replacements = self.update_plan(column_name, low, high, value)
        if rids.size == 0:
            return 0
        # Insert before deleting so an update touching every visible row
        # never passes through an empty column state.
        self.insert_rows(replacements, handle=handle)
        self.delete_rows(rids, handle=handle)
        return int(rids.size)

    def drop_column(self, column_name: str) -> None:
        """Remove ``column_name`` from the table and mark it dropped.

        Writes through stale references to the dropped column raise
        :class:`~repro.errors.DroppedColumnError` instead of silently
        mutating data no query will see.
        """
        if len(self._columns) == 1:
            raise InvalidColumnError(
                f"cannot drop {column_name!r}: a table requires at least one column"
            )
        column = self.column(column_name)
        column.drop()
        del self._columns[column_name]

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, name: str = "table", **columns: np.ndarray) -> "Table":
        """Convenience constructor: ``Table.from_arrays(a=array1, b=array2)``."""
        return cls(columns, name=name)
