"""A minimal named-column table.

The paper's experiments only touch a single attribute, but a downstream user
of the library typically starts from a table.  :class:`Table` groups columns
by name and is the entry point used by the high-level
:class:`repro.engine.session.IndexingSession` API.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

import numpy as np

from repro.errors import InvalidColumnError
from repro.storage.column import Column


class Table:
    """A collection of equally sized named columns.

    Parameters
    ----------
    columns:
        Mapping from column name to column data (NumPy arrays, lists or
        :class:`Column` instances).  All columns must have the same length.
    name:
        Optional table name for display purposes.
    """

    def __init__(self, columns: Mapping[str, object], name: str = "table") -> None:
        if not columns:
            raise InvalidColumnError("a table requires at least one column")
        self._name = str(name)
        self._columns: Dict[str, Column] = {}
        length = None
        for col_name, values in columns.items():
            column = values if isinstance(values, Column) else Column(values, name=col_name)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise InvalidColumnError(
                    f"column {col_name!r} has length {len(column)}, expected {length}"
                )
            self._columns[str(col_name)] = column
        self._length = int(length)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Table name."""
        return self._name

    @property
    def column_names(self) -> Iterable[str]:
        """Names of the columns in insertion order."""
        return tuple(self._columns.keys())

    def __len__(self) -> int:
        return self._length

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def column(self, column_name: str) -> Column:
        """Return the column registered under ``column_name``."""
        try:
            return self._columns[column_name]
        except KeyError:
            raise InvalidColumnError(
                f"table {self._name!r} has no column {column_name!r}; "
                f"available columns: {sorted(self._columns)}"
            ) from None

    def __getitem__(self, column_name: str) -> Column:
        return self.column(column_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table(name={self._name!r}, rows={self._length}, columns={list(self._columns)})"

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, name: str = "table", **columns: np.ndarray) -> "Table":
        """Convenience constructor: ``Table.from_arrays(a=array1, b=array2)``."""
        return cls(columns, name=name)
