"""Lazy, chunk-addressable array views for out-of-core columns.

The out-of-core substrate replaces "the base is a big ``np.ndarray``" with
"the base is *array-like*": either a real ndarray (possibly an ``np.memmap``
over a column file) or a :class:`LazyArray` that materializes only the rows
a read actually touches.  Two lazy shapes exist:

* :class:`~repro.persist.compress.PagedArray` — a compressed column file
  decompressed one block at a time through a shared
  :class:`~repro.persist.compress.BlockCache`;
* :class:`ChainArray` (here) — a lazy concatenation of parts, used by
  :class:`~repro.storage.column.Column` snapshots so a written-to mapped
  column exposes ``base ⧺ inserts`` without copying the base into RAM.

Every consumer that only needs *bounded* pieces (chunked scans, the
streaming construction kernels, slice reads) stays bounded; anything that
genuinely needs the whole array (``copy_data`` for cracking,
``np.asarray``) still works via :meth:`LazyArray.__array__`, it just pays
the materialization it asks for.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

#: Default number of rows per streamed chunk when no budget says otherwise.
DEFAULT_CHUNK_ROWS = 1 << 18


def is_lazy(array) -> bool:
    """Whether ``array`` is a lazy view rather than a real ndarray."""
    return isinstance(array, LazyArray)


class LazyArray:
    """Abstract 1-D read-only array-like with chunked access.

    Subclasses implement :meth:`_read` (contiguous row range → ndarray) and
    may override :meth:`take`, :meth:`min` and :meth:`max` with cheaper
    paths.  The base class provides slicing, iteration, NumPy interop and
    chunk streaming on top.
    """

    dtype: np.dtype
    size: int

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int]:
        return (self.size,)

    @property
    def ndim(self) -> int:
        return 1

    @property
    def nbytes(self) -> int:
        """Logical (decompressed) payload size."""
        return int(self.size) * self.dtype.itemsize

    def __len__(self) -> int:
        return int(self.size)

    # ------------------------------------------------------------------
    def _read(self, start: int, stop: int) -> np.ndarray:
        """Materialize rows ``[start, stop)`` (contiguous)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def __getitem__(self, item):
        if isinstance(item, (int, np.integer)):
            index = int(item)
            if index < 0:
                index += self.size
            if not 0 <= index < self.size:
                raise IndexError(f"index {item} out of range for size {self.size}")
            return self._read(index, index + 1)[0]
        if isinstance(item, slice):
            start, stop, step = item.indices(self.size)
            if step == 1:
                if stop <= start:
                    return np.empty(0, dtype=self.dtype)
                return self._read(start, stop)
            return self.take(np.arange(start, stop, step, dtype=np.int64))
        indices = np.asarray(item)
        if indices.dtype == bool:
            if indices.size != self.size:
                raise IndexError("boolean mask length does not match array size")
            return self.take(np.flatnonzero(indices))
        return self.take(indices.astype(np.int64, copy=False))

    def __iter__(self) -> Iterator:
        for _, chunk in self.iter_chunks():
            yield from chunk

    def __array__(self, dtype=None, copy=None):
        array = self.materialize()
        if dtype is not None and np.dtype(dtype) != array.dtype:
            array = array.astype(dtype)
        return array

    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> np.ndarray:
        """Gather arbitrary rows; the default reads chunk-grouped ranges."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.empty(0, dtype=self.dtype)
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise IndexError("gather index out of range")
        out = np.empty(indices.size, dtype=self.dtype)
        order = np.argsort(indices, kind="stable")
        sorted_idx = indices[order]
        span = DEFAULT_CHUNK_ROWS
        pos = 0
        while pos < sorted_idx.size:
            lo = int(sorted_idx[pos])
            chunk_start = (lo // span) * span
            chunk_stop = min(chunk_start + span, self.size)
            end = int(np.searchsorted(sorted_idx, chunk_stop, side="left"))
            chunk = self._read(chunk_start, chunk_stop)
            out[order[pos:end]] = chunk[sorted_idx[pos:end] - chunk_start]
            pos = end
        return out

    def materialize(self) -> np.ndarray:
        """Materialize the full array (callers opt into the O(N) copy)."""
        if self.size == 0:
            return np.empty(0, dtype=self.dtype)
        return self._read(0, self.size)

    def iter_chunks(
        self,
        chunk_rows: int | None = None,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(offset, values)`` over rows ``[start, stop)``."""
        span = int(chunk_rows or DEFAULT_CHUNK_ROWS)
        stop = self.size if stop is None else min(int(stop), self.size)
        cursor = max(0, int(start))
        while cursor < stop:
            upto = min(cursor + span, stop)
            yield cursor, self._read(cursor, upto)
            cursor = upto

    # ------------------------------------------------------------------
    def min(self):
        """Smallest value (streamed; subclasses may answer from metadata)."""
        best = None
        for _, chunk in self.iter_chunks():
            low = chunk.min()
            best = low if best is None else min(best, low)
        if best is None:
            raise ValueError("min() of an empty lazy array")
        return best

    def max(self):
        """Largest value (streamed; subclasses may answer from metadata)."""
        best = None
        for _, chunk in self.iter_chunks():
            high = chunk.max()
            best = high if best is None else max(best, high)
        if best is None:
            raise ValueError("max() of an empty lazy array")
        return best

    def copy(self) -> np.ndarray:
        """Writable materialized copy (mirrors ``ndarray.copy``)."""
        return self.materialize()

    def setflags(self, write: bool = False) -> None:
        """No-op: lazy arrays are read-only by construction."""
        if write:
            raise ValueError("lazy arrays are read-only")


class ChainArray(LazyArray):
    """Lazy concatenation of array-like parts (ndarrays or lazy arrays).

    A snapshot of a written-to mapped column is ``ChainArray([base_memmap,
    frozen_inserts])`` — the base stays on disk, only the (small) insert
    tail is resident.  Reads spanning the seam are assembled on the fly.
    """

    def __init__(self, parts: Sequence) -> None:
        kept = [part for part in parts if len(part)]
        if not kept:
            raise ValueError("ChainArray needs at least one non-empty part")
        dtypes = {np.dtype(part.dtype) for part in kept}
        if len(dtypes) != 1:
            raise ValueError(f"ChainArray parts disagree on dtype: {dtypes}")
        self._parts = kept
        self.dtype = dtypes.pop()
        bounds = np.cumsum([0] + [len(part) for part in kept])
        self._starts = bounds[:-1]
        self._stops = bounds[1:]
        self.size = int(bounds[-1])

    @property
    def parts(self) -> tuple:
        return tuple(self._parts)

    def _read(self, start: int, stop: int) -> np.ndarray:
        first = int(np.searchsorted(self._stops, start, side="right"))
        last = int(np.searchsorted(self._starts, stop, side="left"))
        pieces = []
        for i in range(first, last):
            lo = max(start, int(self._starts[i])) - int(self._starts[i])
            hi = min(stop, int(self._stops[i])) - int(self._starts[i])
            pieces.append(np.asarray(self._parts[i][lo:hi]))
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def min(self):
        return min(part.min() for part in self._parts)

    def max(self):
        return max(part.max() for part in self._parts)

    def take(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.empty(0, dtype=self.dtype)
        if indices.min() < 0 or indices.max() >= self.size:
            raise IndexError("gather index out of range")
        out = np.empty(indices.size, dtype=self.dtype)
        for i, part in enumerate(self._parts):
            mask = (indices >= self._starts[i]) & (indices < self._stops[i])
            if not mask.any():
                continue
            local = indices[mask] - int(self._starts[i])
            if isinstance(part, LazyArray):
                out[mask] = part.take(local)
            else:
                out[mask] = part[local]
        return out


# ----------------------------------------------------------------------
# Chunk-streaming helpers shared by columns and kernels
# ----------------------------------------------------------------------
def array_chunks(
    array,
    chunk_rows: int | None = None,
    start: int = 0,
    stop: int | None = None,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(offset, values)`` chunks over any ndarray or lazy array."""
    if is_lazy(array):
        yield from array.iter_chunks(chunk_rows, start=start, stop=stop)
        return
    span = int(chunk_rows or DEFAULT_CHUNK_ROWS)
    stop = array.size if stop is None else min(int(stop), array.size)
    cursor = max(0, int(start))
    while cursor < stop:
        upto = min(cursor + span, stop)
        yield cursor, array[cursor:upto]
        cursor = upto


def chunked_scan_range(
    array,
    low,
    high,
    start: int = 0,
    stop: int | None = None,
    chunk_rows: int | None = None,
) -> Tuple:
    """Predicated ``(sum, count)`` over ``array[start:stop]``, streamed."""
    total = np.dtype(array.dtype).type(0)
    count = 0
    for _, chunk in array_chunks(array, chunk_rows, start=start, stop=stop):
        mask = (chunk >= low) & (chunk <= high)
        hits = int(np.count_nonzero(mask))
        if hits:
            total = total + chunk[mask].sum()
            count += hits
    return total, count


def chunked_rids_where(
    array,
    low,
    high,
    chunk_rows: int | None = None,
    alive_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Row ids of values in ``[low, high]``, streamed over ``array``."""
    found = []
    for offset, chunk in array_chunks(array, chunk_rows):
        mask = (chunk >= low) & (chunk <= high)
        if alive_mask is not None:
            mask &= alive_mask[offset : offset + chunk.size]
        hits = np.flatnonzero(mask)
        if hits.size:
            found.append(hits.astype(np.int64) + offset)
    if not found:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(found)
