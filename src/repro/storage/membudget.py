"""The single ``memory_budget`` knob of the out-of-core substrate.

One :class:`MemoryBudget` travels with the data: ``Database`` /
``IndexingSession`` attach it to every :class:`~repro.storage.column.Column`,
and each downstream component derives its own allowance from it —

* the :class:`~repro.persist.compress.BlockCache` capacity (decompressed
  blocks resident at once),
* the :class:`~repro.storage.scratch.ScratchAllocator` allowance (anonymous
  construction scratch before spilling to pager-backed files),
* the delta-store in-memory log cap (past it the logs grow into spill
  files) and the per-index overlay buffer cap (past it sorted buffers are
  sealed to on-disk runs),
* the chunk size the streaming kernels use.

``memory_budget=None`` everywhere means "the in-memory engine, unchanged":
no spilling, no caps, no behavioral difference from previous releases.
"""

from __future__ import annotations

import numpy as np

from repro.storage.scratch import ScratchAllocator

#: Smallest budget the derivations stay sensible for (1 MiB).
MIN_BUDGET_BYTES = 1 << 20


class MemoryBudget:
    """Byte allowance for everything the engine holds resident per table.

    Parameters
    ----------
    total_bytes:
        The budget.  Values below 1 MiB are clamped up — the fixed costs of
        the interpreter make smaller budgets fiction.
    spill_dir:
        Directory for scratch spill files and sealed delta runs; a private
        temp directory by default (a :class:`~repro.persist.database.Database`
        passes its own ``scratch/`` subdirectory).
    """

    def __init__(self, total_bytes: int, spill_dir: str | None = None) -> None:
        self.total_bytes = max(int(total_bytes), MIN_BUDGET_BYTES)
        self.spill_dir = spill_dir
        self._block_cache = None
        self._scratch: ScratchAllocator | None = None

    @classmethod
    def coerce(cls, value, spill_dir: str | None = None) -> "MemoryBudget | None":
        """Accept ``None``, a byte count, or an existing budget."""
        if value is None or isinstance(value, MemoryBudget):
            return value
        return cls(int(value), spill_dir=spill_dir)

    # ------------------------------------------------------------------
    # Derived allowances
    # ------------------------------------------------------------------
    @property
    def cache_bytes(self) -> int:
        """Block-cache capacity: 1/4 of the budget."""
        return max(self.total_bytes // 4, 1 << 20)

    @property
    def scratch_bytes(self) -> int:
        """Anonymous construction-scratch allowance: 1/4 of the budget."""
        return max(self.total_bytes // 4, 1 << 20)

    @property
    def delta_cap_bytes(self) -> int:
        """In-memory delta-log allowance per column: 1/8 of the budget."""
        return max(self.total_bytes // 8, 1 << 18)

    @property
    def overlay_cap_bytes(self) -> int:
        """Per-index sorted-buffer allowance before sealing a run: 1/16."""
        return max(self.total_bytes // 16, 1 << 17)

    def chunk_rows(self, dtype) -> int:
        """Rows per streamed chunk: 1/16 of the budget, clamped sane."""
        itemsize = np.dtype(dtype).itemsize
        rows = self.total_bytes // 16 // itemsize
        return int(min(max(rows, 1 << 14), 1 << 22))

    def overlay_cap_rows(self, dtype) -> int:
        return max(1, self.overlay_cap_bytes // np.dtype(dtype).itemsize)

    # ------------------------------------------------------------------
    # Shared components (created on first use)
    # ------------------------------------------------------------------
    @property
    def block_cache(self):
        """The shared decompressed-block cache (capacity :attr:`cache_bytes`)."""
        if self._block_cache is None:
            from repro.persist.compress import BlockCache

            self._block_cache = BlockCache(self.cache_bytes)
        return self._block_cache

    @property
    def scratch(self) -> ScratchAllocator:
        """The shared scratch allocator (allowance :attr:`scratch_bytes`)."""
        if self._scratch is None:
            self._scratch = ScratchAllocator(self.scratch_bytes, self.spill_dir)
        return self._scratch

    # ------------------------------------------------------------------
    def trim(self) -> None:
        """Drop droppable resident pages (spilled scratch); best effort."""
        if self._scratch is not None:
            self._scratch.trim()

    def stats(self) -> dict:
        info = {
            "total_bytes": int(self.total_bytes),
            "cache_bytes": int(self.cache_bytes),
            "scratch_bytes": int(self.scratch_bytes),
            "delta_cap_bytes": int(self.delta_cap_bytes),
            "overlay_cap_bytes": int(self.overlay_cap_bytes),
        }
        if self._scratch is not None:
            info["scratch"] = self._scratch.stats()
        if self._block_cache is not None:
            info["block_cache"] = self._block_cache.stats()
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MemoryBudget(total_bytes={self.total_bytes})"


def budget_of(obj) -> "MemoryBudget | None":
    """The :class:`MemoryBudget` attached to a column-like object, if any."""
    budget = getattr(obj, "memory_budget", None)
    if budget is not None:
        return budget
    source = getattr(obj, "source", None)
    if source is not None:
        return getattr(source, "memory_budget", None)
    return None
