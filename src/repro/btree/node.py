"""Nodes of the node-based B+-tree.

The tree stores the indexed values themselves (the paper's queries aggregate
the indexed attribute, so no separate row identifiers are needed).  Leaves
keep their values in small sorted NumPy arrays and are chained left-to-right
so range queries can walk the leaf level; inner nodes store separator keys
and child pointers.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class LeafNode:
    """A leaf holding a sorted run of values.

    Attributes
    ----------
    values:
        Sorted NumPy array of the values stored in this leaf.
    next_leaf:
        The leaf immediately to the right, or ``None`` for the last leaf.
    """

    __slots__ = ("values", "next_leaf")

    is_leaf = True

    def __init__(self, values: np.ndarray, next_leaf: Optional["LeafNode"] = None) -> None:
        self.values = np.asarray(values)
        self.next_leaf = next_leaf

    @property
    def size(self) -> int:
        """Number of values stored in the leaf."""
        return int(self.values.size)

    @property
    def smallest(self):
        """Smallest value in the leaf (used as separator during splits)."""
        return self.values[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LeafNode(size={self.size})"


class InnerNode:
    """An inner node routing lookups through separator keys.

    ``children[i]`` holds values ``< keys[i]``; ``children[-1]`` holds values
    ``>= keys[-1]``.  Keys are kept in a Python list because inner nodes are
    small (bounded by the fanout) and are modified during inserts.
    """

    __slots__ = ("keys", "children")

    is_leaf = False

    def __init__(self, keys: List, children: List) -> None:
        self.keys = list(keys)
        self.children = list(children)

    @property
    def size(self) -> int:
        """Number of children."""
        return len(self.children)

    def child_for(self, value, side: str = "right") -> object:
        """Child that may contain ``value``.

        ``side="right"`` (the insert convention) routes a value equal to a
        separator key into the right child; ``side="left"`` routes it into
        the leftmost child that may hold duplicates of the value, which is
        what range scans starting at ``value`` need.
        """
        return self.children[self.child_index_for(value, side=side)]

    def child_index_for(self, value, side: str = "right") -> int:
        """Index of the child that may contain ``value`` (see :meth:`child_for`)."""
        return int(np.searchsorted(np.asarray(self.keys), value, side=side))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"InnerNode(keys={len(self.keys)}, children={len(self.children)})"
