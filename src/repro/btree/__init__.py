"""B+-tree substrate.

Two flavours are provided:

* :class:`~repro.btree.bplus_tree.BPlusTree` — a node-based B+-tree with bulk
  loading, point/range lookups and single-value inserts.  The full-index
  baseline bulk loads the column into this structure on its first query.
* :class:`~repro.btree.cascade.CascadeTree` — the implicit "copy every β-th
  element to a parent level" structure that the consolidation phase of the
  progressive indexes builds on top of their fully sorted array.
"""

from repro.btree.bplus_tree import BPlusTree
from repro.btree.cascade import CascadeTree

__all__ = ["BPlusTree", "CascadeTree"]
