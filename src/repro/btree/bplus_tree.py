"""A node-based B+-tree with bulk loading, lookups and inserts.

The full-index baseline of the paper "bulk loads the data into a B+-tree
after which the B+-tree is used to answer subsequent queries"; this module
provides that structure.  It indexes the values of a single column (the
queries aggregate the indexed attribute itself) and supports:

* :meth:`BPlusTree.bulk_load` — build the tree bottom-up from sorted data;
* :meth:`BPlusTree.range_query` — ``SUM``/``COUNT`` over an inclusive range;
* :meth:`BPlusTree.point_query` — aggregate of a single value;
* :meth:`BPlusTree.insert` — single-value insert with node splits (not used
  by the paper's read-only experiments, provided for library completeness).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.query import Predicate, QueryResult
from repro.btree.node import InnerNode, LeafNode

#: Default tree fanout (paper: β = 64 in the consolidation discussion).
DEFAULT_FANOUT = 64


class BPlusTree:
    """A B+-tree over numeric values.

    Parameters
    ----------
    fanout:
        Maximum number of children per inner node and values per leaf.
    """

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout}")
        self.fanout = int(fanout)
        self.root: Optional[object] = None
        self._first_leaf: Optional[LeafNode] = None
        self._size = 0
        self._height = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (0 for an empty tree, 1 for a single leaf)."""
        return self._height

    @property
    def first_leaf(self) -> Optional[LeafNode]:
        """Leftmost leaf (entry point for full leaf-level scans)."""
        return self._first_leaf

    def iter_leaves(self):
        """Iterate over the leaves left to right."""
        leaf = self._first_leaf
        while leaf is not None:
            yield leaf
            leaf = leaf.next_leaf

    def to_array(self) -> np.ndarray:
        """All stored values in sorted order."""
        chunks = [leaf.values for leaf in self.iter_leaves() if leaf.size]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def memory_footprint(self) -> int:
        """Approximate bytes used by leaves and inner nodes."""
        leaf_bytes = sum(leaf.values.nbytes for leaf in self.iter_leaves())
        # Inner nodes are small; estimate 16 bytes per key plus pointers.
        inner_bytes = 0
        stack = [self.root] if self.root is not None and not self.root.is_leaf else []
        while stack:
            node = stack.pop()
            inner_bytes += 16 * len(node.keys) + 8 * len(node.children)
            for child in node.children:
                if not child.is_leaf:
                    stack.append(child)
        return leaf_bytes + inner_bytes

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, sorted_values: np.ndarray, fanout: int = DEFAULT_FANOUT) -> "BPlusTree":
        """Build a tree bottom-up from ``sorted_values`` (must be sorted)."""
        tree = cls(fanout=fanout)
        values = np.asarray(sorted_values)
        tree._size = int(values.size)
        if values.size == 0:
            return tree
        leaves: List[LeafNode] = []
        for start in range(0, values.size, fanout):
            leaves.append(LeafNode(values[start : start + fanout]))
        for left, right in zip(leaves, leaves[1:]):
            left.next_leaf = right
        tree._first_leaf = leaves[0]
        tree._height = 1
        level: List[object] = list(leaves)
        while len(level) > 1:
            parents: List[object] = []
            for start in range(0, len(level), fanout):
                group = level[start : start + fanout]
                keys = [tree._smallest_value(child) for child in group[1:]]
                parents.append(InnerNode(keys, group))
            level = parents
            tree._height += 1
        tree.root = level[0]
        return tree

    @staticmethod
    def _smallest_value(node: object):
        while not node.is_leaf:
            node = node.children[0]
        return node.smallest

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def _descend_to_leaf(self, value, side: str = "right") -> Optional[LeafNode]:
        node = self.root
        if node is None:
            return None
        while not node.is_leaf:
            node = node.child_for(value, side=side)
        return node

    def range_query(self, low, high) -> QueryResult:
        """Aggregate (sum, count) of values in ``[low, high]``."""
        if self.root is None or low > high:
            return QueryResult.empty()
        # Descend with the "left" convention so duplicates of ``low`` that
        # spill into an earlier leaf are not skipped.
        leaf = self._descend_to_leaf(low, side="left")
        total_sum = 0
        total_count = 0
        while leaf is not None:
            values = leaf.values
            if values.size:
                if values[0] > high:
                    break
                lo = int(np.searchsorted(values, low, side="left"))
                hi = int(np.searchsorted(values, high, side="right"))
                if hi > lo:
                    segment = values[lo:hi]
                    total_sum = total_sum + segment.sum()
                    total_count += int(segment.size)
                if hi < values.size:
                    break
            leaf = leaf.next_leaf
        return QueryResult(total_sum, total_count)

    def point_query(self, value) -> QueryResult:
        """Aggregate of all occurrences of ``value``."""
        return self.range_query(value, value)

    def query(self, predicate: Predicate) -> QueryResult:
        """Answer a :class:`~repro.core.query.Predicate`."""
        return self.range_query(predicate.low, predicate.high)

    def contains(self, value) -> bool:
        """Whether ``value`` occurs in the tree."""
        return self.point_query(value).count > 0

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------
    def insert(self, value) -> None:
        """Insert a single value, splitting nodes as required."""
        self._size += 1
        if self.root is None:
            leaf = LeafNode(np.asarray([value]))
            self.root = leaf
            self._first_leaf = leaf
            self._height = 1
            return
        split = self._insert_recursive(self.root, value)
        if split is not None:
            key, right_node = split
            self.root = InnerNode([key], [self.root, right_node])
            self._height += 1

    def _insert_recursive(self, node: object, value):
        if node.is_leaf:
            position = int(np.searchsorted(node.values, value, side="right"))
            node.values = np.insert(node.values, position, value)
            if node.values.size <= self.fanout:
                return None
            middle = node.values.size // 2
            right = LeafNode(node.values[middle:], next_leaf=node.next_leaf)
            node.values = node.values[:middle]
            node.next_leaf = right
            return right.values[0], right
        child_index = node.child_index_for(value)
        split = self._insert_recursive(node.children[child_index], value)
        if split is None:
            return None
        key, right_child = split
        node.keys.insert(child_index, key)
        node.children.insert(child_index + 1, right_child)
        if len(node.children) <= self.fanout:
            return None
        middle = len(node.children) // 2
        push_up_key = node.keys[middle - 1]
        right = InnerNode(node.keys[middle:], node.children[middle:])
        node.keys = node.keys[: middle - 1]
        node.children = node.children[:middle]
        return push_up_key, right
