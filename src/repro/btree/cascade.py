"""Implicit B+-tree cascade over a sorted array.

The consolidation phase of every progressive index "progressively constructs
a B+-tree from [the sorted array]" by copying every β-th element of a level
into its parent level.  The resulting read-only structure is an implicit
B+-tree: a stack of ever-smaller sorted arrays where a lookup descends from
the top level, narrowing the candidate window in the level below to about one
fanout of elements per step, and finishes with a binary search inside a small
window of the leaf array.  :class:`CascadeTree` is that structure.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.query import Predicate, QueryResult, search_sorted_many

#: Default fanout β of the cascade.
DEFAULT_FANOUT = 64


class CascadeTree:
    """An implicit B+-tree built from a sorted leaf array.

    Parameters
    ----------
    leaf_values:
        The fully sorted array of indexed values (level 0).
    fanout:
        β — each upper level samples every β-th element of the level below.
    levels:
        Optional pre-built upper levels, ordered bottom-up
        (``levels[0]`` samples the leaf array, ``levels[i]`` samples
        ``levels[i-1]``).  Used by the progressive consolidator, which builds
        them incrementally; when omitted the levels are built eagerly.
    """

    def __init__(
        self,
        leaf_values: np.ndarray,
        fanout: int = DEFAULT_FANOUT,
        levels: List[np.ndarray] | None = None,
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout}")
        self.fanout = int(fanout)
        self.leaf_values = np.asarray(leaf_values)
        if levels is None:
            self.levels = self.build_levels(self.leaf_values, self.fanout)
        else:
            self.levels = list(levels)
        self._prefix_sums: np.ndarray | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def build_levels(leaf_values: np.ndarray, fanout: int) -> List[np.ndarray]:
        """Build the upper levels by sampling every ``fanout``-th element."""
        levels: List[np.ndarray] = []
        current = np.asarray(leaf_values)
        while current.size > fanout:
            current = current[::fanout].copy()
            levels.append(current)
        return levels

    @staticmethod
    def copied_elements(n_elements: int, fanout: int) -> int:
        """Total elements copied into upper levels (paper: ``N_copy``)."""
        total = 0
        current = n_elements
        while current > fanout:
            current = (current + fanout - 1) // fanout
            total += current
        return total

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of levels including the leaf array."""
        return len(self.levels) + 1

    def __len__(self) -> int:
        return int(self.leaf_values.size)

    def memory_footprint(self) -> int:
        """Bytes used by the upper levels (the leaf array is shared)."""
        return sum(level.nbytes for level in self.levels)

    # ------------------------------------------------------------------
    def _leaf_position(self, value, side: str) -> int:
        """Position of ``value`` in the leaf array via cascade descent.

        Each level narrows the candidate window in the level below to roughly
        one fanout of elements, so the total number of elements inspected is
        ``O(fanout * height)`` regardless of the column size.
        """
        # Arrays ordered top-down, each followed by its child array.
        chain = list(reversed(self.levels)) + [self.leaf_values]
        lo = 0
        hi = chain[0].size
        for depth, level in enumerate(chain):
            window = level[lo:hi]
            position = lo + int(np.searchsorted(window, value, side=side))
            if depth == len(chain) - 1:
                return position
            child = chain[depth + 1]
            lo = max(0, (position - 1) * self.fanout)
            hi = min(child.size, position * self.fanout + 1)
        return 0  # pragma: no cover - chain is never empty

    # ------------------------------------------------------------------
    def range_query(self, low, high) -> QueryResult:
        """Aggregate (sum, count) of leaf values in ``[low, high]``."""
        if self.leaf_values.size == 0 or low > high:
            return QueryResult.empty()
        lo = self._leaf_position(low, side="left")
        hi = self._leaf_position(high, side="right")
        if hi <= lo:
            return QueryResult.empty()
        segment = self.leaf_values[lo:hi]
        return QueryResult(segment.sum(), int(segment.size))

    def point_query(self, value) -> QueryResult:
        """Aggregate of all occurrences of ``value``."""
        return self.range_query(value, value)

    # ------------------------------------------------------------------
    def search_many(self, lows, highs):
        """Vectorized batch of range queries over the sorted leaf array.

        Every query of the batch is answered with two ``np.searchsorted``
        calls plus prefix-sum differences — no Python-level per-query work.
        The prefix sums are cached on first use (the leaf array is immutable
        once the cascade exists, so the cache never needs invalidation).

        The leaves are sorted by construction for every index family: the
        order-preserving key codecs (:mod:`repro.core.keys`) guarantee that
        even the radix-built arrays are totally ordered on float columns, so
        no runtime sortedness verification (and no per-query fallback) is
        needed any more.

        Returns ``(sums, counts)`` arrays aligned with the inputs.
        """
        sums, counts, self._prefix_sums = search_sorted_many(
            self.leaf_values, lows, highs, self._prefix_sums
        )
        return sums, counts

    def query(self, predicate: Predicate) -> QueryResult:
        """Answer a :class:`~repro.core.query.Predicate`."""
        return self.range_query(predicate.low, predicate.high)
