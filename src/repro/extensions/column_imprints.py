"""Progressive column imprints (future work, Section 6 of the paper).

Column imprints (Sidirourgos & Kersten, SIGMOD 2013) are a secondary index
that stores, per cache-line-sized block of the column, a small bitmap of the
value ranges (bins) occurring in that block.  A range query only scans the
blocks whose bitmap intersects the query's bins.

The progressive variant builds the imprints ``delta * N`` elements per query:
blocks that already have an imprint are pruned with it, the not-yet-imprinted
tail of the column is scanned unconditionally.

The bitmap math (bin edges, per-block occupancy, query bitmaps, candidate
selection) is the shared vectorized machinery of
:mod:`repro.shard.zonemaps` — the same code that drives the shard router's
zone-map check, applied here at cache-line-block granularity.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import BudgetPolicy
from repro.core.calibration import CostConstants
from repro.core.index import BaseIndex
from repro.core.phase import IndexPhase
from repro.core.query import Predicate, QueryResult
from repro.shard import zonemaps
from repro.storage.column import Column

#: Number of value bins per imprint bitmap (the original paper uses up to 64,
#: one bit per bin, so a bitmap fits a machine word).
DEFAULT_BINS = 64

#: Number of column elements summarised by one imprint bitmap.
DEFAULT_BLOCK_ELEMENTS = 64


class ProgressiveColumnImprints(BaseIndex):
    """Progressively built column imprints for range-query pruning.

    Parameters
    ----------
    column:
        Column to index.
    budget:
        Indexing-budget controller.
    constants:
        Cost-model constants.
    n_bins:
        Number of equi-width value bins per bitmap.
    block_elements:
        Number of consecutive column elements covered by one bitmap.
    """

    name = "PIMP"
    description = "Progressive column imprints (future-work extension)"

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
        n_bins: int = DEFAULT_BINS,
        block_elements: int = DEFAULT_BLOCK_ELEMENTS,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants)
        if not 2 <= n_bins <= zonemaps.MAX_BINS:
            raise ValueError(
                f"n_bins must be within [2, {zonemaps.MAX_BINS}] "
                f"(one bit per bin in a uint64 bitmap), got {n_bins}"
            )
        if block_elements < 1:
            raise ValueError(f"block_elements must be positive, got {block_elements}")
        self.n_bins = int(n_bins)
        self.block_elements = int(block_elements)
        self._bin_edges: np.ndarray | None = None
        self._imprints: np.ndarray | None = None     # (n_blocks,) uint64 bitmaps
        self._blocks_imprinted = 0
        self._n_blocks = 0

    # ------------------------------------------------------------------
    @property
    def blocks_imprinted(self) -> int:
        """Number of blocks whose imprint bitmap has been built."""
        return self._blocks_imprinted

    def memory_footprint(self) -> int:
        if self._imprints is None:
            return 0
        return int(self._imprints.nbytes) + int(self._bin_edges.nbytes)

    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        n = len(self._column)
        self._bin_edges = zonemaps.bin_edges(
            float(self._column.min()), float(self._column.max()), self.n_bins
        )
        self._n_blocks = int(np.ceil(n / self.block_elements))
        self._imprints = np.zeros(self._n_blocks, dtype=np.uint64)
        self._blocks_imprinted = 0
        self._register_scan_time()
        self._advance_phase(IndexPhase.CREATION)

    def _bins_of(self, values: np.ndarray) -> np.ndarray:
        return zonemaps.bins_of(self._bin_edges, values)

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def _family_state(self) -> dict:
        state = {
            "initialized": self._imprints is not None,
            "blocks_imprinted": int(self._blocks_imprinted),
            "n_blocks": int(self._n_blocks),
        }
        if self._imprints is not None:
            state["bin_edges"] = np.asarray(self._bin_edges, dtype=np.float64)
            state["imprints"] = np.array(self._imprints)
        return state

    def _load_family_state(self, state: dict) -> None:
        if not state.get("initialized"):
            return
        self._bin_edges = np.asarray(state["bin_edges"], dtype=np.float64)
        self._imprints = np.asarray(state["imprints"], dtype=np.uint64)
        self._blocks_imprinted = int(state["blocks_imprinted"])
        self._n_blocks = int(state["n_blocks"])

    def _imprint_blocks(self, block_budget: int) -> int:
        start_block = self._blocks_imprinted
        stop_block = min(self._n_blocks, start_block + int(block_budget))
        if stop_block <= start_block:
            return 0
        data = self._column.data
        start = start_block * self.block_elements
        stop = min(len(self._column), stop_block * self.block_elements)
        self._imprints[start_block:stop_block] = zonemaps.occupancy_bitmaps(
            self._bin_edges, data[start:stop], self.block_elements
        )
        self._blocks_imprinted = stop_block
        return stop_block - start_block

    def _query_bitmap(self, predicate: Predicate) -> np.uint64:
        return zonemaps.query_bitmap(self._bin_edges, predicate.low, predicate.high)

    # ------------------------------------------------------------------
    def _execute(self, predicate: Predicate) -> QueryResult:
        if self.phase is IndexPhase.INACTIVE:
            self._initialize()
        n = len(self._column)
        scan_time = self._cost_model.scan_time(n)
        build_time = self._cost_model.write_time(n)
        rho = self._blocks_imprinted / max(1, self._n_blocks)
        base_cost = scan_time  # pessimistic: pruning factor is data dependent
        delta = self.budget.next_delta(build_time, base_cost)
        delta = min(delta, 1.0 - rho)
        block_budget = int(np.ceil(delta * self._n_blocks)) if delta > 0 else 0
        built = self._imprint_blocks(block_budget) if block_budget > 0 else 0

        result = self._answer(predicate)

        self.last_stats.delta = delta
        self.last_stats.elements_indexed = built * self.block_elements
        self.last_stats.predicted_cost = base_cost + delta * build_time

        if self._blocks_imprinted >= self._n_blocks and self.phase is IndexPhase.CREATION:
            self._advance_phase(IndexPhase.CONVERGED)
        return result

    def _answer(self, predicate: Predicate) -> QueryResult:
        data = self._column.data
        query_bitmap = self._query_bitmap(predicate)
        result = QueryResult.empty()
        if self._blocks_imprinted > 0:
            bitmaps = self._imprints[: self._blocks_imprinted]
            candidates = zonemaps.bitmap_candidates(bitmaps, query_bitmap)
            for block in candidates:
                start = int(block) * self.block_elements
                stop = min(len(self._column), start + self.block_elements)
                segment = data[start:stop]
                result += QueryResult.from_masked(segment, predicate.mask(segment))
        tail_start = self._blocks_imprinted * self.block_elements
        if tail_start < len(self._column):
            result += self._scan_column(predicate, start=tail_start)
        return result

    def pruning_fraction(self, predicate: Predicate) -> float:
        """Fraction of imprinted blocks a query can skip (1.0 = skip all)."""
        if self._blocks_imprinted == 0:
            return 0.0
        bitmaps = self._imprints[: self._blocks_imprinted]
        candidates = int(np.count_nonzero(bitmaps & self._query_bitmap(predicate)))
        return 1.0 - candidates / self._blocks_imprinted
