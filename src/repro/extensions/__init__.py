"""Extensions from the paper's future-work section (Section 6).

The paper sketches how other index structures can be made progressive.  Two
of them are cheap to express on top of this library's machinery and are
provided here:

* :class:`~repro.extensions.progressive_hash.ProgressiveHashIndex` — "instead
  of constructing the complete hash table, we only insert ``n * delta``
  elements and scan the remainder of the column.  The partial hash table can
  be used to answer point queries on the indexed part of the data."
* :class:`~repro.extensions.column_imprints.ProgressiveColumnImprints` —
  "column imprints, where instead of immediately building imprints for the
  entire column, only build them for the first fraction delta of the data."
"""

from repro.extensions.column_imprints import ProgressiveColumnImprints
from repro.extensions.progressive_hash import ProgressiveHashIndex

__all__ = ["ProgressiveColumnImprints", "ProgressiveHashIndex"]
