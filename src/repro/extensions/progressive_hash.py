"""Progressive hash index (future work, Section 6 of the paper).

A hash table over the column values is built ``delta * N`` elements per
query.  Point queries use the hash table for the already-inserted prefix of
the column and scan the remaining tail; range queries always scan (a hash
table cannot prune ranges), so this extension only pays off for point-query
workloads — which is exactly the trade-off the paper's future-work section
describes.

The "hash table" maps a value to the aggregate of its occurrences in the
indexed prefix (sum and count), which is all the paper's ``SUM``/``COUNT``
queries need.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.policy import BudgetPolicy
from repro.core.calibration import CostConstants
from repro.core.index import BaseIndex
from repro.core.phase import IndexPhase
from repro.core.query import Predicate, QueryResult
from repro.storage.column import Column


class ProgressiveHashIndex(BaseIndex):
    """A progressively built hash index accelerating point queries.

    Parameters
    ----------
    column:
        Column to index.
    budget:
        Indexing-budget controller; the full phase work is one pass that
        hashes every element of the column.
    constants:
        Cost-model constants.
    """

    name = "PHASH"
    description = "Progressive hash index (future-work extension)"

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants)
        self._table: Dict[int, tuple] = {}
        self._elements_inserted = 0

    # ------------------------------------------------------------------
    @property
    def elements_inserted(self) -> int:
        """Number of column elements already present in the hash table."""
        return self._elements_inserted

    def memory_footprint(self) -> int:
        # Rough estimate: one dict slot (key + sum + count) per distinct value.
        return len(self._table) * 3 * 8

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def _family_state(self) -> dict:
        keys = np.fromiter(self._table.keys(), dtype=np.int64, count=len(self._table))
        # Keep the sum dtype of the column: int64 sums persisted as float64
        # could round above 2**53.
        sum_dtype = np.int64 if self._column.dtype.kind in ("i", "u") else np.float64
        sums = np.empty(keys.size, dtype=sum_dtype)
        counts = np.empty(keys.size, dtype=np.int64)
        for number, key in enumerate(keys.tolist()):
            value_sum, count = self._table[key]
            sums[number] = value_sum
            counts[number] = int(count)
        return {
            "elements_inserted": int(self._elements_inserted),
            "keys": keys,
            "sums": sums,
            "counts": counts,
        }

    def _load_family_state(self, state: dict) -> None:
        self._elements_inserted = int(state.get("elements_inserted", 0))
        keys = np.asarray(state.get("keys", np.empty(0, dtype=np.int64)))
        sums = np.asarray(state.get("sums", np.empty(0)))
        counts = np.asarray(state.get("counts", np.empty(0, dtype=np.int64)))
        int_column = self._column.dtype.kind in ("i", "u")
        self._table = {
            int(key): ((int(s) if int_column else float(s)), int(c))
            for key, s, c in zip(keys.tolist(), sums.tolist(), counts.tolist())
        }

    # ------------------------------------------------------------------
    def _execute(self, predicate: Predicate) -> QueryResult:
        n = len(self._column)
        if self.phase is IndexPhase.INACTIVE:
            self._register_scan_time()
            self._advance_phase(IndexPhase.CREATION)

        scan_time = self._cost_model.scan_time(n)
        build_time = self._cost_model.write_time(n) + n * self._cost_model.constants.phi
        rho = self._elements_inserted / n
        if predicate.is_point:
            base_cost = (1.0 - rho) * scan_time + self._cost_model.constants.phi
        else:
            base_cost = scan_time
        delta = self.budget.next_delta(build_time, base_cost)
        delta = min(delta, 1.0 - rho)
        to_insert = min(n - self._elements_inserted, int(np.ceil(delta * n))) if delta > 0 else 0

        if to_insert > 0:
            self._insert_chunk(to_insert)

        if predicate.is_point and self._elements_inserted > 0:
            aggregate = self._table.get(int(predicate.low), (0, 0))
            result = QueryResult(aggregate[0], aggregate[1])
            result += self._scan_column(predicate, start=self._elements_inserted)
        else:
            result = self._scan_column(predicate)

        self.last_stats.delta = delta
        self.last_stats.elements_indexed = to_insert
        self.last_stats.predicted_cost = base_cost + delta * build_time

        if self._elements_inserted >= n and self.phase is IndexPhase.CREATION:
            self._advance_phase(IndexPhase.CONVERGED)
        return result

    def _insert_chunk(self, count: int) -> None:
        start = self._elements_inserted
        stop = min(len(self._column), start + count)
        chunk = self._column.data[start:stop]
        values, sums, counts = _aggregate_chunk(chunk)
        for value, value_sum, value_count in zip(values, sums, counts):
            previous = self._table.get(int(value), (0, 0))
            self._table[int(value)] = (previous[0] + value_sum, previous[1] + int(value_count))
        self._elements_inserted = stop


def _aggregate_chunk(chunk: np.ndarray):
    """Group a chunk by value, returning (values, per-value sums, counts)."""
    values, inverse, counts = np.unique(chunk, return_inverse=True, return_counts=True)
    sums = np.bincount(inverse, weights=chunk.astype(np.float64))
    # Integer columns should keep exact integer sums.
    if np.issubdtype(chunk.dtype, np.integer):
        sums = values.astype(np.int64) * counts
    return values, sums, counts
