"""Figures 8 and 9: cost-model validation — plus the greedy-policy check.

Figure 8 runs the SkyServer-like workload with a **fixed** indexing budget
(``delta = 0.25``) and compares, per query, the measured execution time with
the cost-model prediction.  Figure 9 repeats the comparison with the
**adaptive** indexing budget (``t_budget = 0.2 * t_scan``), where the paper
additionally observes that the measured per-query time stays approximately
constant until the index converges.

:func:`run_greedy_vs_fixed` validates the cost-model-*driven* side of the
paper: under :class:`~repro.core.policy.CostModelGreedy` every pre-convergence
query's predicted total must land on the interactivity threshold τ, the
per-query time variance must undercut the fixed-``delta`` run, and the total
time to convergence must stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.budget import AdaptiveBudget, FixedBudget
from repro.core.policy import CostModelGreedy
from repro.engine.executor import ExecutionResult, WorkloadExecutor
from repro.engine.metrics import robustness
from repro.engine.registry import PROGRESSIVE_ALGORITHMS
from repro.experiments.config import ExperimentConfig
from repro.storage.column import Column
from repro.workloads.skyserver import skyserver_data, skyserver_workload

#: Fixed delta used by the Figure 8 experiment.
FIXED_DELTA = 0.25

#: Tolerance on "predicted total within τ": the minimum-delta convergence
#: floor can push a query marginally over the threshold.
TAU_TOLERANCE = 1.05


@dataclass
class CostModelSeries:
    """Measured and predicted per-query times for one algorithm."""

    algorithm: str
    budget: str
    measured_seconds: np.ndarray
    predicted_seconds: np.ndarray
    phases: List[str]

    @property
    def n_queries(self) -> int:
        """Number of queries in the series."""
        return int(self.measured_seconds.size)

    def correlation(self) -> float:
        """Pearson correlation between measured and predicted times.

        Computed over queries with a prediction; a high correlation is the
        quantitative counterpart of "the cost model tracks the measured
        cost" in Figures 8 and 9.
        """
        mask = ~np.isnan(self.predicted_seconds)
        measured = self.measured_seconds[mask]
        predicted = self.predicted_seconds[mask]
        if measured.size < 2 or np.allclose(measured, measured[0]) or np.allclose(
            predicted, predicted[0]
        ):
            return 1.0
        return float(np.corrcoef(measured, predicted)[0, 1])

    def mean_relative_error(self) -> float:
        """Mean relative deviation of the prediction from the measurement."""
        mask = ~np.isnan(self.predicted_seconds)
        measured = self.measured_seconds[mask]
        predicted = self.predicted_seconds[mask]
        if measured.size == 0:
            return 0.0
        denominator = np.maximum(measured, 1e-12)
        return float(np.mean(np.abs(predicted - measured) / denominator))


@dataclass
class CostModelValidationResult:
    """Series of every algorithm for one budget flavour."""

    budget: str
    series: Dict[str, CostModelSeries] = field(default_factory=dict)

    def algorithms(self) -> List[str]:
        """Algorithms present in the result."""
        return sorted(self.series)


def _series_from_execution(execution: ExecutionResult, budget: str) -> CostModelSeries:
    return CostModelSeries(
        algorithm=execution.index_name,
        budget=budget,
        measured_seconds=execution.times(),
        predicted_seconds=execution.predicted_times(),
        phases=[record.phase.value for record in execution.records],
    )


def run_cost_model_validation(
    config: ExperimentConfig | None = None,
    adaptive: bool = False,
    algorithms: Sequence[str] | None = None,
    fixed_delta: float = FIXED_DELTA,
) -> CostModelValidationResult:
    """Run the Figure 8 (``adaptive=False``) or Figure 9 (``adaptive=True``) experiment."""
    config = config or ExperimentConfig()
    algorithms = list(algorithms or PROGRESSIVE_ALGORITHMS)
    rng = config.rng(salt=13)
    data = skyserver_data(config.n_elements, rng=rng)
    workload = skyserver_workload(config.n_queries, rng=rng)
    constants = config.constants()
    executor = WorkloadExecutor()
    budget_label = "adaptive" if adaptive else f"fixed(delta={fixed_delta})"

    result = CostModelValidationResult(budget=budget_label)
    for algorithm in algorithms:
        index_class = PROGRESSIVE_ALGORITHMS[algorithm]
        column = Column(data, name="ra")
        if adaptive:
            budget = AdaptiveBudget(scan_fraction=config.budget_fraction)
        else:
            budget = FixedBudget(fixed_delta)
        index = index_class(column, budget=budget, constants=constants)
        execution = executor.run(index, workload)
        result.series[algorithm] = _series_from_execution(execution, budget_label)
    return result


# ----------------------------------------------------------------------
# Greedy (cost-model-driven) vs fixed delta
# ----------------------------------------------------------------------
@dataclass
class PolicyComparisonRow:
    """Greedy-vs-fixed comparison of one algorithm.

    Attributes
    ----------
    algorithm:
        Paper acronym.
    tau_seconds:
        The interactivity threshold τ the greedy policy resolved to.
    fixed_variance, greedy_variance:
        Per-query time variance (the paper's robustness metric) of the two
        runs.
    fixed_convergence_seconds, greedy_convergence_seconds:
        Cumulative wall-clock time until convergence (``None`` when the run
        did not converge within the workload).
    fixed_convergence_query, greedy_convergence_query:
        Convergence query numbers.
    within_tau_fraction:
        Fraction of pre-convergence greedy queries whose *predicted* total
        cost stayed within ``τ * TAU_TOLERANCE`` — the greedy policy's
        contract.
    """

    algorithm: str
    tau_seconds: float
    fixed_variance: float
    greedy_variance: float
    fixed_convergence_seconds: Optional[float]
    greedy_convergence_seconds: Optional[float]
    fixed_convergence_query: Optional[int]
    greedy_convergence_query: Optional[int]
    within_tau_fraction: float

    @property
    def variance_ratio(self) -> float:
        """``greedy / fixed`` variance (< 1 means greedy is more robust)."""
        if self.fixed_variance <= 0:
            return float("inf") if self.greedy_variance > 0 else 1.0
        return self.greedy_variance / self.fixed_variance

    @property
    def convergence_ratio(self) -> Optional[float]:
        """``greedy / fixed`` total time to convergence."""
        if self.fixed_convergence_seconds is None or self.greedy_convergence_seconds is None:
            return None
        if self.fixed_convergence_seconds <= 0:
            return None
        return self.greedy_convergence_seconds / self.fixed_convergence_seconds


@dataclass
class GreedyValidationResult:
    """Greedy-vs-fixed rows for every algorithm."""

    fixed_delta: float
    rows: Dict[str, PolicyComparisonRow] = field(default_factory=dict)

    def algorithms(self) -> List[str]:
        """Algorithms present in the result."""
        return sorted(self.rows)


def _convergence_seconds(execution: ExecutionResult) -> Optional[float]:
    converged = execution.metrics().convergence_query
    if converged is None:
        return None
    return float(np.sum(execution.times()[:converged]))


def run_greedy_vs_fixed(
    config: ExperimentConfig | None = None,
    algorithms: Sequence[str] | None = None,
    fixed_delta: float = FIXED_DELTA,
) -> GreedyValidationResult:
    """Compare :class:`CostModelGreedy` against a fixed ``delta`` per algorithm.

    Both runs see the same data and workload.  The greedy policy's τ is
    resolved from ``config.budget_fraction`` (``τ = (1 + fraction) *
    t_scan``), mirroring the paper's adaptive experiments.
    """
    config = config or ExperimentConfig()
    algorithms = list(algorithms or PROGRESSIVE_ALGORITHMS)
    rng = config.rng(salt=17)
    data = skyserver_data(config.n_elements, rng=rng)
    workload = skyserver_workload(config.n_queries, rng=rng)
    constants = config.constants()
    executor = WorkloadExecutor()

    result = GreedyValidationResult(fixed_delta=fixed_delta)
    for algorithm in algorithms:
        index_class = PROGRESSIVE_ALGORITHMS[algorithm]

        fixed_index = index_class(
            Column(data, name="ra"), budget=FixedBudget(fixed_delta), constants=constants
        )
        fixed_run = executor.run(fixed_index, workload)

        greedy_policy = CostModelGreedy(scan_fraction=config.budget_fraction)
        greedy_index = index_class(
            Column(data, name="ra"), budget=greedy_policy, constants=constants
        )
        greedy_run = executor.run(greedy_index, workload)

        tau = greedy_policy.interactivity_budget or 0.0
        converged_at = greedy_run.metrics().convergence_query
        pre_convergence = greedy_run.records[
            : converged_at if converged_at is not None else len(greedy_run.records)
        ]
        within = [
            record.predicted_seconds is not None
            and record.predicted_seconds <= tau * TAU_TOLERANCE
            for record in pre_convergence
        ]
        result.rows[algorithm] = PolicyComparisonRow(
            algorithm=algorithm,
            tau_seconds=tau,
            fixed_variance=robustness(fixed_run.times(), window=config.robustness_window),
            greedy_variance=robustness(greedy_run.times(), window=config.robustness_window),
            fixed_convergence_seconds=_convergence_seconds(fixed_run),
            greedy_convergence_seconds=_convergence_seconds(greedy_run),
            fixed_convergence_query=fixed_run.metrics().convergence_query,
            greedy_convergence_query=converged_at,
            within_tau_fraction=(sum(within) / len(within)) if within else 1.0,
        )
    return result
