"""Figures 8 and 9: cost-model validation.

Figure 8 runs the SkyServer-like workload with a **fixed** indexing budget
(``delta = 0.25``) and compares, per query, the measured execution time with
the cost-model prediction.  Figure 9 repeats the comparison with the
**adaptive** indexing budget (``t_budget = 0.2 * t_scan``), where the paper
additionally observes that the measured per-query time stays approximately
constant until the index converges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.budget import AdaptiveBudget, FixedBudget
from repro.engine.executor import ExecutionResult, WorkloadExecutor
from repro.engine.registry import PROGRESSIVE_ALGORITHMS
from repro.experiments.config import ExperimentConfig
from repro.storage.column import Column
from repro.workloads.skyserver import skyserver_data, skyserver_workload

#: Fixed delta used by the Figure 8 experiment.
FIXED_DELTA = 0.25


@dataclass
class CostModelSeries:
    """Measured and predicted per-query times for one algorithm."""

    algorithm: str
    budget: str
    measured_seconds: np.ndarray
    predicted_seconds: np.ndarray
    phases: List[str]

    @property
    def n_queries(self) -> int:
        """Number of queries in the series."""
        return int(self.measured_seconds.size)

    def correlation(self) -> float:
        """Pearson correlation between measured and predicted times.

        Computed over queries with a prediction; a high correlation is the
        quantitative counterpart of "the cost model tracks the measured
        cost" in Figures 8 and 9.
        """
        mask = ~np.isnan(self.predicted_seconds)
        measured = self.measured_seconds[mask]
        predicted = self.predicted_seconds[mask]
        if measured.size < 2 or np.allclose(measured, measured[0]) or np.allclose(
            predicted, predicted[0]
        ):
            return 1.0
        return float(np.corrcoef(measured, predicted)[0, 1])

    def mean_relative_error(self) -> float:
        """Mean relative deviation of the prediction from the measurement."""
        mask = ~np.isnan(self.predicted_seconds)
        measured = self.measured_seconds[mask]
        predicted = self.predicted_seconds[mask]
        if measured.size == 0:
            return 0.0
        denominator = np.maximum(measured, 1e-12)
        return float(np.mean(np.abs(predicted - measured) / denominator))


@dataclass
class CostModelValidationResult:
    """Series of every algorithm for one budget flavour."""

    budget: str
    series: Dict[str, CostModelSeries] = field(default_factory=dict)

    def algorithms(self) -> List[str]:
        """Algorithms present in the result."""
        return sorted(self.series)


def _series_from_execution(execution: ExecutionResult, budget: str) -> CostModelSeries:
    return CostModelSeries(
        algorithm=execution.index_name,
        budget=budget,
        measured_seconds=execution.times(),
        predicted_seconds=execution.predicted_times(),
        phases=[record.phase.value for record in execution.records],
    )


def run_cost_model_validation(
    config: ExperimentConfig | None = None,
    adaptive: bool = False,
    algorithms: Sequence[str] | None = None,
    fixed_delta: float = FIXED_DELTA,
) -> CostModelValidationResult:
    """Run the Figure 8 (``adaptive=False``) or Figure 9 (``adaptive=True``) experiment."""
    config = config or ExperimentConfig()
    algorithms = list(algorithms or PROGRESSIVE_ALGORITHMS)
    rng = config.rng(salt=13)
    data = skyserver_data(config.n_elements, rng=rng)
    workload = skyserver_workload(config.n_queries, rng=rng)
    constants = config.constants()
    executor = WorkloadExecutor()
    budget_label = "adaptive" if adaptive else f"fixed(delta={fixed_delta})"

    result = CostModelValidationResult(budget=budget_label)
    for algorithm in algorithms:
        index_class = PROGRESSIVE_ALGORITHMS[algorithm]
        column = Column(data, name="ra")
        if adaptive:
            budget = AdaptiveBudget(scan_fraction=config.budget_fraction)
        else:
            budget = FixedBudget(fixed_delta)
        index = index_class(column, budget=budget, constants=constants)
        execution = executor.run(index, workload)
        result.series[algorithm] = _series_from_execution(execution, budget_label)
    return result
