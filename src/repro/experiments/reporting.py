"""Plain-text and CSV report writers for the experiment drivers.

The original paper renders its results as LaTeX tables and R plots; the
reproduction prints aligned text tables (one per paper artefact) and can dump
the underlying rows as CSV so they can be re-plotted with any tool.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Sequence


def format_seconds(value: float | None) -> str:
    """Render a duration with a precision that matches its magnitude."""
    if value is None:
        return "x"
    if value == 0:
        return "0"
    if value < 1e-4:
        return f"{value:.2e}"
    if value < 1:
        return f"{value:.4f}"
    return f"{value:.2f}"


def format_count(value) -> str:
    """Render a query count (``None`` becomes the paper's "x")."""
    return "x" if value is None else str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[str]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Serialise rows to a CSV string."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Per-artefact renderers
# ----------------------------------------------------------------------
def render_table2(result) -> str:
    """Render Table 2 (SkyServer comparison)."""
    headers = ["Index", "First Q (s)", "First Q / scan", "Convergence", "Robustness", "Cumulative (s)"]
    rows = []
    for name in result.algorithms():
        row = result.row(name)
        rows.append(
            [
                name,
                format_seconds(row.first_query_seconds),
                f"{row.first_query_scan_ratio:.1f}x",
                format_count(row.convergence_query),
                format_seconds(row.robustness_variance),
                format_seconds(row.cumulative_seconds),
            ]
        )
    return render_table(headers, rows, title="Table 2: SkyServer workload")


def render_synthetic_table(result, metric: str, title: str) -> str:
    """Render one of Tables 3-5 from a synthetic comparison result."""
    sections = []
    for block in result.blocks():
        table = result.table(metric, block)
        if not table:
            continue
        algorithms: List[str] = sorted({a for row in table.values() for a in row})
        headers = ["Workload"] + algorithms
        rows = []
        for pattern, values in table.items():
            rows.append(
                [pattern] + [format_seconds(values.get(algorithm)) for algorithm in algorithms]
            )
        sections.append(render_table(headers, rows, title=f"{title} — {block}"))
    return "\n\n".join(sections)


def render_delta_impact(result) -> str:
    """Render the Figure 7 sweep as four text tables."""
    metrics = [
        ("first_query_seconds", "Figure 7a: first query time (s)"),
        ("payoff_query", "Figure 7b: queries until pay-off"),
        ("convergence_query", "Figure 7c: queries until convergence"),
        ("cumulative_seconds", "Figure 7d: cumulative time (s)"),
    ]
    sections = []
    algorithms = result.algorithms()
    for metric, title in metrics:
        deltas = sorted({row.delta for row in result.rows})
        headers = ["delta"] + algorithms
        table_rows = []
        for delta in deltas:
            row = [f"{delta:g}"]
            for algorithm in algorithms:
                match = [
                    r for r in result.for_algorithm(algorithm) if r.delta == delta
                ]
                if not match:
                    row.append("-")
                    continue
                value = getattr(match[0], metric)
                if metric.endswith("seconds"):
                    row.append(format_seconds(value))
                else:
                    row.append(format_count(value))
            table_rows.append(row)
        sections.append(render_table(headers, table_rows, title=title))
    return "\n\n".join(sections)


def render_cost_model_validation(result) -> str:
    """Render the Figure 8/9 summary (correlation and relative error)."""
    headers = ["Index", "Budget", "Queries", "Correlation", "Mean rel. error"]
    rows = []
    for algorithm in result.algorithms():
        series = result.series[algorithm]
        rows.append(
            [
                algorithm,
                series.budget,
                str(series.n_queries),
                f"{series.correlation():.3f}",
                f"{series.mean_relative_error():.2f}",
            ]
        )
    return render_table(
        headers, rows, title="Figures 8/9: cost model vs. measured time"
    )


def render_greedy_validation(result) -> str:
    """Render the greedy-vs-fixed policy comparison."""
    headers = [
        "Index",
        "tau (s)",
        "Var fixed",
        "Var greedy",
        "Var ratio",
        "Conv fixed (s)",
        "Conv greedy (s)",
        "Within tau",
    ]
    rows = []
    for algorithm in result.algorithms():
        row = result.rows[algorithm]
        ratio = row.convergence_ratio
        rows.append(
            [
                algorithm,
                format_seconds(row.tau_seconds),
                format_seconds(row.fixed_variance),
                format_seconds(row.greedy_variance),
                f"{row.variance_ratio:.2f}",
                format_seconds(row.fixed_convergence_seconds),
                format_seconds(row.greedy_convergence_seconds),
                f"{row.within_tau_fraction:.0%}",
            ]
        )
    return render_table(
        headers,
        rows,
        title=(
            "Cost-model-greedy vs fixed delta "
            f"(fixed delta = {result.fixed_delta:g})"
        ),
    )


def render_phase_breakdown(breakdown, title: str = "Per-phase breakdown") -> str:
    """Render a per-phase breakdown (phase -> PhaseStats mapping).

    Accepts the mapping produced by
    :meth:`~repro.engine.executor.ExecutionResult.phase_breakdown` or by
    :func:`~repro.engine.metrics.compute_phase_breakdown`.
    """
    headers = ["Phase", "Queries", "Elapsed (s)", "Indexing budget (s)"]
    rows = [
        [
            stats.phase.value,
            str(stats.queries),
            format_seconds(stats.elapsed_seconds),
            format_seconds(stats.indexing_seconds),
        ]
        for stats in breakdown.values()
    ]
    return render_table(headers, rows, title=title)


def render_figure10(executions: Dict[str, object], head: int = 20) -> str:
    """Render the first ``head`` per-query times of the Figure 10 series."""
    headers = ["Query"] + list(executions)
    rows = []
    n_queries = min(head, min(execution.n_queries for execution in executions.values()))
    for query_index in range(n_queries):
        row = [str(query_index + 1)]
        for execution in executions.values():
            row.append(format_seconds(execution.records[query_index].elapsed_seconds))
        rows.append(row)
    return render_table(headers, rows, title="Figure 10: per-query time (s), first queries")
