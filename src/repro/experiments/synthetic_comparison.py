"""Tables 3, 4 and 5: synthetic workload comparison.

The synthetic evaluation runs the workload patterns of Figure 6 against the
four progressive indexes and adaptive adaptive indexing (the best cracking
comparator) over four experiment blocks:

* uniform random data, range queries with selectivity 0.1;
* skewed data, range queries;
* uniform data, point queries;
* a larger column ("10^9" in the paper, scaled down here), range queries.

Table 3 reports the first-query cost, Table 4 the cumulative time and
Table 5 the robustness (variance of the first 100 query times) of every
(block, pattern, algorithm) combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.budget import AdaptiveBudget
from repro.engine.executor import WorkloadExecutor
from repro.engine.registry import ALGORITHMS, PROGRESSIVE_ALGORITHMS
from repro.experiments.config import ExperimentConfig
from repro.storage.column import Column
from repro.workloads.distributions import skewed_data, uniform_data
from repro.workloads.patterns import POINT_QUERY_PATTERNS, SYNTHETIC_PATTERNS, generate_pattern

#: Algorithm order of Tables 3-5.
TABLE_ALGORITHMS = ("PQ", "PB", "PLSD", "PMSD", "AA")

#: The experiment blocks (table sections) of Tables 3-5.
BLOCKS = ("uniform", "skewed", "point", "large")


@dataclass
class SyntheticCell:
    """One (block, pattern, algorithm) measurement."""

    block: str
    pattern: str
    algorithm: str
    first_query_seconds: float
    cumulative_seconds: float
    robustness_variance: float
    convergence_query: int | None


@dataclass
class SyntheticComparisonResult:
    """All measurements of the synthetic grid."""

    cells: List[SyntheticCell] = field(default_factory=list)

    def table(self, metric: str, block: str) -> Dict[str, Dict[str, float]]:
        """``{pattern: {algorithm: value}}`` for one metric and block."""
        output: Dict[str, Dict[str, float]] = {}
        for cell in self.cells:
            if cell.block != block:
                continue
            output.setdefault(cell.pattern, {})[cell.algorithm] = getattr(cell, metric)
        return output

    def blocks(self) -> List[str]:
        """Blocks present in the result."""
        return [block for block in BLOCKS if any(c.block == block for c in self.cells)]

    def winners(self, metric: str, block: str) -> Dict[str, str]:
        """Per-pattern algorithm with the smallest value of ``metric``."""
        table = self.table(metric, block)
        return {
            pattern: min(values, key=values.get) for pattern, values in table.items()
        }


def _block_settings(
    block: str, config: ExperimentConfig, rng: np.random.Generator
) -> Tuple[np.ndarray, bool]:
    """Data set and point-query flag for one experiment block."""
    if block == "uniform":
        return uniform_data(config.n_elements, rng=rng), False
    if block == "skewed":
        return skewed_data(config.n_elements, rng=rng), False
    if block == "point":
        return uniform_data(config.n_elements, rng=rng), True
    if block == "large":
        return uniform_data(config.n_elements_large, rng=rng), False
    raise ValueError(f"unknown block {block!r}")


def _patterns_for_block(block: str, patterns: Iterable[str] | None) -> List[str]:
    if patterns is not None:
        return list(patterns)
    if block == "point":
        return list(POINT_QUERY_PATTERNS)
    if block == "large":
        # The paper's 10^9 block only reports SeqOver, Skew and Random.
        return ["SeqOver", "Skew", "Random"]
    return list(SYNTHETIC_PATTERNS)


def _build_index(name: str, column: Column, config: ExperimentConfig):
    constants = config.constants()
    if name in PROGRESSIVE_ALGORITHMS:
        budget = AdaptiveBudget(scan_fraction=config.budget_fraction)
        return ALGORITHMS[name](column, budget=budget, constants=constants)
    return ALGORITHMS[name](column, constants=constants)


def run_synthetic_comparison(
    config: ExperimentConfig | None = None,
    blocks: Sequence[str] = BLOCKS,
    patterns: Sequence[str] | None = None,
    algorithms: Sequence[str] = TABLE_ALGORITHMS,
) -> SyntheticComparisonResult:
    """Run the Tables 3-5 grid.

    Parameters
    ----------
    config:
        Experiment configuration.
    blocks:
        Which experiment blocks to run (all four by default).
    patterns:
        Restrict to a subset of workload patterns (block defaults otherwise).
    algorithms:
        Algorithms to compare.
    """
    config = config or ExperimentConfig()
    executor = WorkloadExecutor()
    result = SyntheticComparisonResult()

    for block in blocks:
        rng = config.rng(salt=hash(block) % 1000)
        data, point_queries = _block_settings(block, config, rng)
        domain_low, domain_high = int(data.min()), int(data.max())
        for pattern in _patterns_for_block(block, patterns):
            workload = generate_pattern(
                pattern,
                domain_low,
                domain_high,
                config.n_queries,
                selectivity=config.selectivity,
                rng=config.rng(salt=hash((block, pattern)) % 1000),
                point_queries=point_queries,
            )
            for algorithm in algorithms:
                column = Column(data, name="value")
                index = _build_index(algorithm, column, config)
                execution = executor.run(index, workload)
                metrics = execution.metrics()
                result.cells.append(
                    SyntheticCell(
                        block=block,
                        pattern=pattern,
                        algorithm=algorithm,
                        first_query_seconds=metrics.first_query_seconds,
                        cumulative_seconds=metrics.cumulative_seconds,
                        robustness_variance=metrics.robustness_variance,
                        convergence_query=metrics.convergence_query,
                    )
                )
    return result
