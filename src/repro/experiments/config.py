"""Shared experiment configuration.

The paper's experiments run on 10^8–10^9 element columns with up to 160,000
queries.  The defaults here are scaled down so the full reproduction runs on
a laptop in minutes; every driver accepts an :class:`ExperimentConfig` so the
original scale can be requested explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.core.calibration import CostConstants, calibrate
from repro.errors import ExperimentError


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    Attributes
    ----------
    n_elements:
        Column size used by the SkyServer-like and synthetic experiments.
    n_elements_large:
        Column size of the "10^9" block of Tables 3–5 (scaled down by the
        same factor as ``n_elements``).
    n_queries:
        Number of queries per workload.
    selectivity:
        Range-query selectivity of the synthetic workloads (paper: 0.1).
    budget_fraction:
        Adaptive indexing budget as a fraction of the scan cost (paper: 0.2).
    seed:
        Seed of the experiment-wide random generator.
    calibrate_constants:
        Measure the cost-model constants at driver start-up (recommended for
        timing experiments); otherwise the deterministic simulated constants
        are used.
    """

    n_elements: int = 1_000_000
    n_elements_large: int = 4_000_000
    n_queries: int = 300
    selectivity: float = 0.1
    budget_fraction: float = 0.2
    seed: int = 42
    calibrate_constants: bool = True
    robustness_window: int = 100
    _constants: CostConstants | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_elements <= 0 or self.n_elements_large <= 0:
            raise ExperimentError("column sizes must be positive")
        if self.n_queries <= 0:
            raise ExperimentError("n_queries must be positive")
        if not 0 < self.selectivity <= 1:
            raise ExperimentError("selectivity must be in (0, 1]")
        if self.budget_fraction <= 0:
            raise ExperimentError("budget_fraction must be positive")

    # ------------------------------------------------------------------
    def rng(self, salt: int = 0) -> np.random.Generator:
        """A fresh random generator derived from the experiment seed."""
        return np.random.default_rng(self.seed + salt)

    def constants(self) -> CostConstants:
        """Cost-model constants (calibrated once per config, then cached)."""
        if self._constants is None:
            if self.calibrate_constants:
                self._constants = calibrate()
            else:
                from repro.core.calibration import simulated_constants

                self._constants = simulated_constants()
        return self._constants

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A tiny configuration for smoke tests and CI."""
        return cls(
            n_elements=20_000,
            n_elements_large=50_000,
            n_queries=40,
            calibrate_constants=False,
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The original paper's scale (only practical on a large machine)."""
        return cls(
            n_elements=100_000_000,
            n_elements_large=1_000_000_000,
            n_queries=10_000,
        )

    def domain(self) -> Tuple[int, int]:
        """Value domain of the synthetic data sets (``[0, n_elements)``)."""
        return 0, self.n_elements
