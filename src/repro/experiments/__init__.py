"""Experiment drivers regenerating the paper's tables and figures.

Every module corresponds to one or more evaluation artefacts (see the
per-experiment index in DESIGN.md):

* :mod:`repro.experiments.config` — shared, scaled-down experiment defaults.
* :mod:`repro.experiments.delta_impact` — Figure 7 (impact of delta).
* :mod:`repro.experiments.cost_model_validation` — Figures 8 and 9.
* :mod:`repro.experiments.skyserver_comparison` — Table 2 and Figure 10.
* :mod:`repro.experiments.synthetic_comparison` — Tables 3, 4 and 5.
* :mod:`repro.experiments.workload_figures` — Figures 5 and 6 (data /
  workload shapes).
* :mod:`repro.experiments.reporting` — plain-text and CSV report writers.
* :mod:`repro.experiments.runner` — ``python -m repro.experiments.runner``
  runs everything and writes EXPERIMENTS-style output.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.cost_model_validation import run_cost_model_validation, run_greedy_vs_fixed
from repro.experiments.delta_impact import run_delta_impact
from repro.experiments.skyserver_comparison import run_figure10, run_skyserver_comparison
from repro.experiments.synthetic_comparison import run_synthetic_comparison
from repro.experiments.workload_figures import figure5_summary, figure6_summary

__all__ = [
    "ExperimentConfig",
    "figure5_summary",
    "figure6_summary",
    "run_cost_model_validation",
    "run_delta_impact",
    "run_figure10",
    "run_greedy_vs_fixed",
    "run_skyserver_comparison",
    "run_synthetic_comparison",
]
