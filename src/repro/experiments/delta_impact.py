"""Figure 7: impact of the delta parameter.

The experiment runs the SkyServer-like workload with a *fixed* delta for each
progressive indexing algorithm and a grid of delta values, and reports the
four panels of Figure 7:

* (a) time of the first query,
* (b) number of queries until pay-off,
* (c) number of queries until convergence,
* (d) cumulative time of the workload.

The paper's qualitative findings that the harness verifies:

* the first query gets more expensive as delta grows, with Bucketsort
  impacted the most and Quicksort the least;
* pay-off and convergence counts drop steeply with delta and then flatten;
* the cumulative time decreases with delta and saturates well before
  ``delta = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.budget import FixedBudget
from repro.engine.executor import WorkloadExecutor
from repro.engine.registry import PROGRESSIVE_ALGORITHMS
from repro.experiments.config import ExperimentConfig
from repro.storage.column import Column
from repro.workloads.skyserver import skyserver_data, skyserver_workload

#: The delta grid of Figure 7 (the paper sweeps [0.005, 1]).
DEFAULT_DELTAS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)


@dataclass
class DeltaImpactRow:
    """One (algorithm, delta) measurement of the sweep."""

    algorithm: str
    delta: float
    first_query_seconds: float
    payoff_query: int | None
    convergence_query: int | None
    cumulative_seconds: float


@dataclass
class DeltaImpactResult:
    """All measurements of the delta sweep, grouped per algorithm."""

    rows: List[DeltaImpactRow] = field(default_factory=list)

    def for_algorithm(self, algorithm: str) -> List[DeltaImpactRow]:
        """Rows of one algorithm, ordered by delta."""
        return sorted(
            (row for row in self.rows if row.algorithm == algorithm),
            key=lambda row: row.delta,
        )

    def algorithms(self) -> List[str]:
        """Algorithms present in the result."""
        return sorted({row.algorithm for row in self.rows})

    def series(self, metric: str) -> Dict[str, List[tuple]]:
        """``{algorithm: [(delta, value), ...]}`` for one metric column."""
        output: Dict[str, List[tuple]] = {}
        for algorithm in self.algorithms():
            output[algorithm] = [
                (row.delta, getattr(row, metric)) for row in self.for_algorithm(algorithm)
            ]
        return output


def run_delta_impact(
    config: ExperimentConfig | None = None,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    algorithms: Sequence[str] | None = None,
) -> DeltaImpactResult:
    """Run the Figure 7 delta sweep.

    Parameters
    ----------
    config:
        Experiment configuration (scaled-down defaults when omitted).
    deltas:
        Delta grid to sweep.
    algorithms:
        Subset of progressive algorithms to run (all four by default).
    """
    config = config or ExperimentConfig()
    algorithms = list(algorithms or PROGRESSIVE_ALGORITHMS)
    rng = config.rng(salt=7)
    data = skyserver_data(config.n_elements, rng=rng)
    workload = skyserver_workload(config.n_queries, rng=rng)
    constants = config.constants()
    executor = WorkloadExecutor()

    result = DeltaImpactResult()
    for algorithm in algorithms:
        index_class = PROGRESSIVE_ALGORITHMS[algorithm]
        for delta in deltas:
            column = Column(data, name="ra")
            index = index_class(column, budget=FixedBudget(delta), constants=constants)
            execution = executor.run(index, workload)
            metrics = execution.metrics()
            result.rows.append(
                DeltaImpactRow(
                    algorithm=algorithm,
                    delta=float(delta),
                    first_query_seconds=metrics.first_query_seconds,
                    payoff_query=metrics.payoff_query,
                    convergence_query=metrics.convergence_query,
                    cumulative_seconds=metrics.cumulative_seconds,
                )
            )
    return result
