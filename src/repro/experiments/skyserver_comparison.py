"""Table 2 and Figure 10: SkyServer workload comparison.

Table 2 runs the full SkyServer-like workload against every algorithm of the
evaluation — the baselines (FS, FI), the adaptive-indexing comparators (STD,
STC, PSTC, CGI, AA) and the four progressive indexes (PQ, PMSD, PLSD, PB) —
and reports first-query cost, convergence query, robustness and cumulative
time.  Figure 10 plots the per-query time series of Progressive Quicksort
against the best cracking comparators (AA for cumulative time, PSTC for
first-query cost / robustness).

The qualitative expectations from the paper:

* every progressive index has a first-query cost of about ``1.2 x`` the scan
  cost, one order of magnitude below the cracking comparators;
* the progressive indexes converge; the cracking comparators do not;
* the progressive indexes are several orders of magnitude more robust
  (lower variance of the first 100 query times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.budget import AdaptiveBudget
from repro.engine.executor import ExecutionResult, WorkloadExecutor
from repro.engine.registry import ALGORITHMS, PROGRESSIVE_ALGORITHMS
from repro.experiments.config import ExperimentConfig
from repro.storage.column import Column
from repro.workloads.skyserver import skyserver_data, skyserver_workload

#: Algorithm order of Table 2.
TABLE2_ALGORITHMS = ("FS", "FI", "STD", "STC", "PSTC", "CGI", "AA", "PQ", "PMSD", "PLSD", "PB")

#: Algorithms plotted in Figure 10.
FIGURE10_ALGORITHMS = ("PQ", "AA", "PSTC")


@dataclass
class SkyServerRow:
    """One line of Table 2."""

    algorithm: str
    first_query_seconds: float
    convergence_query: int | None
    robustness_variance: float
    cumulative_seconds: float
    scan_seconds: float

    @property
    def first_query_scan_ratio(self) -> float:
        """First query cost relative to a single full scan."""
        if self.scan_seconds <= 0:
            return float("inf")
        return self.first_query_seconds / self.scan_seconds


@dataclass
class SkyServerComparisonResult:
    """All rows of Table 2 plus the raw executions for Figure 10."""

    rows: Dict[str, SkyServerRow] = field(default_factory=dict)
    executions: Dict[str, ExecutionResult] = field(default_factory=dict)

    def row(self, algorithm: str) -> SkyServerRow:
        """The Table 2 row of one algorithm."""
        return self.rows[algorithm]

    def algorithms(self) -> List[str]:
        """Algorithms present in the result, in Table 2 order."""
        return [name for name in TABLE2_ALGORITHMS if name in self.rows] + [
            name for name in self.rows if name not in TABLE2_ALGORITHMS
        ]


def _build_index(name: str, column: Column, config: ExperimentConfig):
    constants = config.constants()
    if name in PROGRESSIVE_ALGORITHMS:
        budget = AdaptiveBudget(scan_fraction=config.budget_fraction)
        return ALGORITHMS[name](column, budget=budget, constants=constants)
    return ALGORITHMS[name](column, constants=constants)


def run_skyserver_comparison(
    config: ExperimentConfig | None = None,
    algorithms: Sequence[str] = TABLE2_ALGORITHMS,
) -> SkyServerComparisonResult:
    """Run the Table 2 experiment."""
    config = config or ExperimentConfig()
    rng = config.rng(salt=23)
    data = skyserver_data(config.n_elements, rng=rng)
    workload = skyserver_workload(config.n_queries, rng=rng)
    executor = WorkloadExecutor()

    result = SkyServerComparisonResult()
    for name in algorithms:
        column = Column(data, name="ra")
        index = _build_index(name, column, config)
        execution = executor.run(index, workload)
        metrics = execution.metrics()
        result.executions[name] = execution
        result.rows[name] = SkyServerRow(
            algorithm=name,
            first_query_seconds=metrics.first_query_seconds,
            convergence_query=metrics.convergence_query,
            robustness_variance=metrics.robustness_variance,
            cumulative_seconds=metrics.cumulative_seconds,
            scan_seconds=execution.scan_seconds,
        )
    return result


def run_figure10(
    config: ExperimentConfig | None = None,
    algorithms: Sequence[str] = FIGURE10_ALGORITHMS,
) -> Dict[str, ExecutionResult]:
    """Run the Figure 10 per-query time-series experiment."""
    config = config or ExperimentConfig()
    comparison = run_skyserver_comparison(config, algorithms=algorithms)
    return dict(comparison.executions)
