"""Run the full experiment suite: ``python -m repro.experiments.runner``.

Executes every experiment driver (Figures 5-10, Tables 2-5, the decision-tree
consistency check) with a configurable scale and prints the rendered report.
This is the command used to produce EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.engine.decision_tree import recommend_index
from repro.experiments.config import ExperimentConfig
from repro.experiments.cost_model_validation import run_cost_model_validation
from repro.experiments.delta_impact import run_delta_impact
from repro.experiments.reporting import (
    render_cost_model_validation,
    render_delta_impact,
    render_figure10,
    render_synthetic_table,
    render_table2,
)
from repro.experiments.skyserver_comparison import run_figure10, run_skyserver_comparison
from repro.experiments.synthetic_comparison import run_synthetic_comparison
from repro.experiments.workload_figures import figure5_summary


def build_config(arguments: argparse.Namespace) -> ExperimentConfig:
    """Translate CLI arguments into an :class:`ExperimentConfig`."""
    if arguments.quick:
        return ExperimentConfig.quick()
    return ExperimentConfig(
        n_elements=arguments.elements,
        n_elements_large=arguments.large_elements,
        n_queries=arguments.queries,
        calibrate_constants=not arguments.no_calibration,
    )


def run_all(config: ExperimentConfig, output=sys.stdout) -> None:
    """Run every experiment and print the rendered sections."""
    sections = []
    started = time.perf_counter()

    figure5 = figure5_summary(config)
    sections.append(
        "Figure 5: SkyServer-like inputs — distribution skew "
        f"{figure5.distribution_skew():.1f}x, workload drift "
        f"{figure5.workload_drift() * 100:.2f}% of the domain per query"
    )

    sections.append(render_delta_impact(run_delta_impact(config)))
    sections.append(render_cost_model_validation(run_cost_model_validation(config, adaptive=False)))
    sections.append(render_cost_model_validation(run_cost_model_validation(config, adaptive=True)))
    sections.append(render_table2(run_skyserver_comparison(config)))
    sections.append(render_figure10(run_figure10(config)))

    synthetic = run_synthetic_comparison(config)
    sections.append(render_synthetic_table(synthetic, "first_query_seconds", "Table 3: first query cost (s)"))
    sections.append(render_synthetic_table(synthetic, "cumulative_seconds", "Table 4: cumulative time (s)"))
    sections.append(render_synthetic_table(synthetic, "robustness_variance", "Table 5: robustness (variance)"))

    recommendation = recommend_index(point_query_workload=False, skewed_data=False)
    sections.append(
        "Figure 11: decision tree — uniform range workload recommendation: "
        f"{recommendation.acronym} ({recommendation.reason})"
    )

    elapsed = time.perf_counter() - started
    sections.append(f"Total experiment time: {elapsed:.1f}s")
    print("\n\n".join(sections), file=output)


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--elements", type=int, default=1_000_000, help="column size")
    parser.add_argument(
        "--large-elements", type=int, default=4_000_000, help="column size of the large block"
    )
    parser.add_argument("--queries", type=int, default=300, help="queries per workload")
    parser.add_argument(
        "--quick", action="store_true", help="tiny configuration for a fast smoke run"
    )
    parser.add_argument(
        "--no-calibration",
        action="store_true",
        help="use the deterministic simulated cost constants",
    )
    arguments = parser.parse_args(argv)
    run_all(build_config(arguments))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
