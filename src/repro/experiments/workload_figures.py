"""Figures 5 and 6: data-distribution and workload-shape summaries.

These figures do not measure index performance; they characterise the inputs
of the evaluation.  The drivers here produce the numeric series a plotting
tool would consume: the histogram of the SkyServer-like data distribution and
the per-query range positions of every synthetic workload pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.workloads.patterns import SYNTHETIC_PATTERNS, generate_pattern
from repro.workloads.skyserver import skyserver_data, skyserver_workload


@dataclass
class Figure5Summary:
    """Histogram of the data distribution and the query-range positions."""

    histogram_counts: np.ndarray
    histogram_edges: np.ndarray
    query_lows: np.ndarray
    query_highs: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of queries in the workload series."""
        return int(self.query_lows.size)

    def distribution_skew(self) -> float:
        """Ratio between the densest and the average histogram bucket.

        Values well above 1 confirm the multi-modal, non-uniform shape of
        Figure 5a.
        """
        mean = float(self.histogram_counts.mean()) or 1.0
        return float(self.histogram_counts.max()) / mean

    def workload_drift(self) -> float:
        """Mean absolute jump of the query centre between consecutive queries,
        as a fraction of the domain (small values = spatially clustered)."""
        centres = (self.query_lows + self.query_highs) / 2.0
        domain = float(self.query_highs.max() - self.query_lows.min()) or 1.0
        return float(np.mean(np.abs(np.diff(centres))) / domain)


def figure5_summary(config: ExperimentConfig | None = None, bins: int = 100) -> Figure5Summary:
    """Summarise the SkyServer-like data and workload (Figure 5)."""
    config = config or ExperimentConfig()
    rng = config.rng(salt=5)
    data = skyserver_data(config.n_elements, rng=rng)
    workload = skyserver_workload(config.n_queries, rng=rng)
    counts, edges = np.histogram(data, bins=bins)
    lows = np.array([predicate.low for predicate in workload])
    highs = np.array([predicate.high for predicate in workload])
    return Figure5Summary(
        histogram_counts=counts,
        histogram_edges=edges,
        query_lows=lows,
        query_highs=highs,
    )


def figure6_summary(
    config: ExperimentConfig | None = None,
) -> Dict[str, List[tuple]]:
    """Per-pattern query-range series (Figure 6).

    Returns ``{pattern: [(low, high), ...]}`` normalised to the unit domain.
    """
    config = config or ExperimentConfig()
    output: Dict[str, List[tuple]] = {}
    for pattern in SYNTHETIC_PATTERNS:
        workload = generate_pattern(
            pattern,
            0.0,
            1.0,
            config.n_queries,
            selectivity=config.selectivity,
            rng=config.rng(salt=6),
        )
        output[pattern] = [(predicate.low, predicate.high) for predicate in workload]
    return output
