"""Cracking kernels: alternative implementations of the piece partition.

Pirk et al. (DaMoN 2014) and Haffner et al. (DaMoN 2018) study how the inner
loop of database cracking — partitioning one piece of the column around a
pivot — should be implemented (branching, predication, vectorisation, ...)
and provide a decision tree selecting the most efficient kernel for a given
piece size and selectivity.  The paper's experimental setup includes "an
adaptive cracking kernel algorithm that picks the most efficient kernel when
executing a query, following the decision tree from Haffner et al.".

On our NumPy substrate the distinction between branched and predicated
per-element loops does not exist, but the kernels are still provided (and
benchmarked in the ablation suite) so the selection logic of the original
system is preserved:

* :func:`partition_branched` — a pure-Python reference loop (used for small
  pieces and as the ground truth in tests).
* :func:`partition_predicated` — boolean-mask partition, the NumPy analogue
  of the predicated/vectorised kernels.
* :func:`partition_two_sided` — two-ended writes, the NumPy analogue of the
  in-place Hoare-style kernel.
* :func:`choose_kernel` — the decision tree.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: Pieces of at most this many elements use the branched reference kernel
#: (mirroring the original decision tree's preference for simple code on
#: cache-resident pieces).
BRANCHED_PIECE_LIMIT = 64


def partition_branched(values: np.ndarray, pivot) -> int:
    """Partition ``values`` in place around ``pivot`` with an explicit loop.

    Returns the boundary position: ``values[:boundary] < pivot`` and
    ``values[boundary:] >= pivot``.  This is the reference kernel; it runs in
    pure Python and is only intended for small pieces and for validating the
    vectorised kernels.
    """
    result = sorted(values.tolist(), key=lambda item: (item >= pivot,))
    boundary = sum(1 for item in result if item < pivot)
    values[:] = result
    return boundary


def partition_predicated(values: np.ndarray, pivot) -> int:
    """Partition ``values`` in place around ``pivot`` using a boolean mask."""
    mask = values < pivot
    lows = values[mask]
    highs = values[~mask]
    values[: lows.size] = lows
    values[lows.size :] = highs
    return int(lows.size)


def partition_two_sided(values: np.ndarray, pivot) -> int:
    """Partition ``values`` around ``pivot`` writing from both ends.

    Functionally identical to :func:`partition_predicated`; the two-ended
    write pattern mirrors the in-place Hoare-style kernel of the original
    system and is kept as a separate code path for the kernel ablation
    benchmark.
    """
    mask = values < pivot
    lows = values[mask]
    highs = values[~mask]
    boundary = int(lows.size)
    values[:boundary] = lows
    # Write the upper side back to front, as the original kernel does.
    values[boundary:] = highs[::-1]
    return boundary


def choose_kernel(piece_size: int, selectivity: float = 0.5) -> Callable[[np.ndarray, object], int]:
    """Pick a partition kernel for a piece (Haffner-style decision tree).

    Parameters
    ----------
    piece_size:
        Number of elements in the piece about to be cracked.
    selectivity:
        Estimated fraction of the piece below the pivot; extreme
        selectivities favour the predicated kernel because branches would be
        highly mispredicted in the original system.
    """
    if piece_size <= BRANCHED_PIECE_LIMIT and 0.1 <= selectivity <= 0.9:
        return partition_branched
    if piece_size > BRANCHED_PIECE_LIMIT * 1024:
        return partition_two_sided
    return partition_predicated
