"""Cracking kernels: alternative implementations of the piece partition.

Pirk et al. (DaMoN 2014) and Haffner et al. (DaMoN 2018) study how the inner
loop of database cracking — partitioning one piece of the column around a
pivot — should be implemented (branching, predication, vectorisation, ...)
and provide a decision tree selecting the most efficient kernel for a given
piece size and selectivity.  The paper's experimental setup includes "an
adaptive cracking kernel algorithm that picks the most efficient kernel when
executing a query, following the decision tree from Haffner et al.".

These kernels are the shared partition primitives of the construction-kernel
layer: database cracking routes every crack through :func:`choose_kernel`,
and :class:`~repro.progressive.sorter.ProgressiveSorter` uses the same
decision tree whenever a whole pivot-tree node fits the element budget.

* :func:`partition_branched` — a single-pass, in-place, pure-Python
  two-pointer loop (the branching kernel of the original system; used for
  cache-resident pieces and as the ground truth in tests).
* :func:`partition_predicated` — boolean-mask partition, the NumPy analogue
  of the predicated/vectorised kernels; allocates both sides.
* :func:`partition_two_sided` — truly in-place vectorised Hoare-style
  kernel: only the misplaced elements on each side are swapped, so work and
  scratch memory are proportional to the number of misplaced elements, not
  the piece size.
* :func:`choose_kernel` — the decision tree.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: Pieces of at most this many elements use the branched reference kernel
#: (mirroring the original decision tree's preference for simple code on
#: cache-resident pieces).
BRANCHED_PIECE_LIMIT = 64

#: Pieces larger than this always use the in-place two-sided kernel (the
#: allocation of a same-sized mask plus both sides stops being free once a
#: piece is far outside the cache hierarchy).
TWO_SIDED_PIECE_LIMIT = BRANCHED_PIECE_LIMIT * 1024

#: Selectivities outside ``[EXTREME_SELECTIVITY, 1 - EXTREME_SELECTIVITY]``
#: are "extreme": almost every element already sits on the correct side, so
#: the two-sided kernel's swap count collapses while the predicated kernel
#: still pays a full copy of the piece.
EXTREME_SELECTIVITY = 0.1


def partition_branched(values: np.ndarray, pivot) -> int:
    """Partition ``values`` in place around ``pivot`` with an explicit loop.

    Returns the boundary position: ``values[:boundary] < pivot`` and
    ``values[boundary:] >= pivot``.  A classic single-pass two-pointer
    (Hoare-style) loop: no allocation, at most one swap per misplaced pair.
    This is the reference kernel; it runs in pure Python and is only
    intended for small pieces and for validating the vectorised kernels.
    """
    low = 0
    high = int(values.size) - 1
    while low <= high:
        if values[low] < pivot:
            low += 1
        else:
            values[low], values[high] = values[high], values[low]
            high -= 1
    return low


def partition_predicated(values: np.ndarray, pivot) -> int:
    """Partition ``values`` in place around ``pivot`` using a boolean mask."""
    mask = values < pivot
    lows = values[mask]
    highs = values[~mask]
    values[: lows.size] = lows
    values[lows.size :] = highs
    return int(lows.size)


def partition_two_sided(values: np.ndarray, pivot) -> int:
    """Partition ``values`` around ``pivot`` with in-place two-ended swaps.

    The vectorised analogue of the in-place Hoare-style kernel of the
    original system: the boundary is known from the pivot's rank, so the
    only elements that move are the ``>= pivot`` stragglers in the low side,
    which are swapped pairwise with the ``< pivot`` stragglers in the high
    side (the counts always match).  Work and scratch are proportional to
    the number of misplaced elements — at extreme selectivities this kernel
    barely touches the piece.
    """
    mask = values < pivot
    boundary = int(np.count_nonzero(mask))
    misplaced_low = np.flatnonzero(~mask[:boundary])
    if misplaced_low.size:
        misplaced_high = boundary + np.flatnonzero(mask[boundary:])
        stash = values[misplaced_low].copy()
        values[misplaced_low] = values[misplaced_high]
        values[misplaced_high] = stash
    return boundary


def partition_streamed(
    values: np.ndarray,
    pivot,
    chunk_rows: int,
    scratch_allocator=None,
) -> int:
    """Partition ``values`` around ``pivot`` streaming fixed-size chunks.

    The out-of-core radix pass of the kernel layer: instead of allocating a
    same-sized boolean mask plus both sides at once (the predicated kernel's
    O(piece) temporaries), the piece streams through a two-ended scratch
    buffer ``chunk_rows`` elements at a time, so anonymous temporaries stay
    chunk-sized.  The scratch buffer itself comes from ``scratch_allocator``
    when given — a :class:`~repro.storage.scratch.ScratchAllocator` spills it
    to a pager-backed file past the memory budget — and the result is copied
    back chunk by chunk.  Returns the boundary position like every kernel.
    """
    n = int(values.size)
    if n == 0:
        return 0
    if scratch_allocator is not None:
        scratch = scratch_allocator.allocate(n, values.dtype)
    else:
        scratch = np.empty(n, dtype=values.dtype)
    step = max(1, int(chunk_rows))
    low_fill = 0
    high_fill = n
    for start in range(0, n, step):
        chunk = values[start : start + step]
        mask = chunk < pivot
        lows = chunk[mask]
        highs = chunk[~mask]
        scratch[low_fill : low_fill + lows.size] = lows
        low_fill += lows.size
        scratch[high_fill - highs.size : high_fill] = highs
        high_fill -= highs.size
    for start in range(0, n, step):
        values[start : start + step] = scratch[start : start + step]
    return low_fill


def choose_kernel(piece_size: int, selectivity: float = 0.5) -> Callable[[np.ndarray, object], int]:
    """Pick a partition kernel for a piece (Haffner-style decision tree).

    Parameters
    ----------
    piece_size:
        Number of elements in the piece about to be cracked.
    selectivity:
        Estimated fraction of the piece below the pivot.

    The tree: cache-resident pieces with mid selectivity use the simple
    branched loop; larger pieces with *extreme* selectivity use the
    two-sided kernel (few misplaced elements, so in-place swaps beat a full
    predicated copy — in the original system the same selectivities make
    branches perfectly predicted); pieces far beyond the cache hierarchy
    always use the two-sided kernel; everything else is predicated.
    """
    extreme = selectivity < EXTREME_SELECTIVITY or selectivity > 1.0 - EXTREME_SELECTIVITY
    if piece_size <= BRANCHED_PIECE_LIMIT:
        return partition_predicated if extreme else partition_branched
    if extreme or piece_size > TWO_SIDED_PIECE_LIMIT:
        return partition_two_sided
    return partition_predicated
