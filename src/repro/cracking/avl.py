"""A self-balancing AVL tree mapping keys to values.

The cracker index of database cracking maps pivot values to piece boundaries
and is traditionally implemented as an AVL tree (Idreos et al., CIDR 2007).
This module provides that substrate: an ordered map with ``O(log n)`` insert,
exact lookup, *floor* (largest key ``<= k``) and *higher* (smallest key
``> k``) queries — exactly the operations piece lookup needs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple


class _AVLNode:
    """Internal tree node."""

    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key, value) -> None:
        self.key = key
        self.value = value
        self.left: Optional[_AVLNode] = None
        self.right: Optional[_AVLNode] = None
        self.height = 1


def _height(node: Optional[_AVLNode]) -> int:
    return node.height if node is not None else 0


def _update_height(node: _AVLNode) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _AVLNode) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(node: _AVLNode) -> _AVLNode:
    pivot = node.left
    node.left = pivot.right
    pivot.right = node
    _update_height(node)
    _update_height(pivot)
    return pivot


def _rotate_left(node: _AVLNode) -> _AVLNode:
    pivot = node.right
    node.right = pivot.left
    pivot.left = node
    _update_height(node)
    _update_height(pivot)
    return pivot


def _rebalance(node: _AVLNode) -> _AVLNode:
    _update_height(node)
    balance = _balance_factor(node)
    if balance > 1:
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree:
    """An ordered key → value map backed by an AVL tree."""

    def __init__(self) -> None:
        self._root: Optional[_AVLNode] = None
        self._size = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, key) -> bool:
        return self.get(key) is not None or self._find(key) is not None

    @property
    def height(self) -> int:
        """Height of the tree (0 when empty)."""
        return _height(self._root)

    # ------------------------------------------------------------------
    def insert(self, key, value) -> None:
        """Insert ``key -> value``; an existing key has its value replaced."""
        self._root, inserted = self._insert(self._root, key, value)
        if inserted:
            self._size += 1

    def _insert(self, node: Optional[_AVLNode], key, value) -> Tuple[_AVLNode, bool]:
        if node is None:
            return _AVLNode(key, value), True
        if key == node.key:
            node.value = value
            return node, False
        if key < node.key:
            node.left, inserted = self._insert(node.left, key, value)
        else:
            node.right, inserted = self._insert(node.right, key, value)
        return _rebalance(node), inserted

    # ------------------------------------------------------------------
    def _find(self, key) -> Optional[_AVLNode]:
        node = self._root
        while node is not None:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def get(self, key, default=None):
        """Value stored under ``key``, or ``default`` when absent."""
        node = self._find(key)
        return node.value if node is not None else default

    def floor_item(self, key) -> Optional[Tuple[object, object]]:
        """The ``(key, value)`` pair with the largest key ``<= key``."""
        node = self._root
        best: Optional[_AVLNode] = None
        while node is not None:
            if node.key == key:
                return node.key, node.value
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return (best.key, best.value) if best is not None else None

    def higher_item(self, key) -> Optional[Tuple[object, object]]:
        """The ``(key, value)`` pair with the smallest key ``> key``."""
        node = self._root
        best: Optional[_AVLNode] = None
        while node is not None:
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        return (best.key, best.value) if best is not None else None

    def min_item(self) -> Optional[Tuple[object, object]]:
        """The smallest ``(key, value)`` pair, or ``None`` when empty."""
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.key, node.value

    def max_item(self) -> Optional[Tuple[object, object]]:
        """The largest ``(key, value)`` pair, or ``None`` when empty."""
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return node.key, node.value

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[object, object]]:
        """Iterate over ``(key, value)`` pairs in ascending key order."""
        stack: List[_AVLNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator:
        """Iterate over the keys in ascending order."""
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator:
        """Iterate over the values in ascending key order."""
        for _, value in self.items():
            yield value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"AVLTree(size={self._size}, height={self.height})"
