"""Adaptive indexing (database cracking) baselines.

The paper compares its progressive indexes against the database-cracking
family of adaptive indexes.  This package provides from-scratch
implementations of each comparator:

* :class:`~repro.cracking.standard.StandardCracking` — the original database
  cracking algorithm (crack on the query predicates).
* :class:`~repro.cracking.stochastic.StochasticCracking` — random pivots make
  the cracking pattern independent of the workload.
* :class:`~repro.cracking.progressive_stochastic.ProgressiveStochasticCracking`
  — stochastic cracking with a cap on the number of swaps per query.
* :class:`~repro.cracking.coarse_granular.CoarseGranularIndex` — equal-sized
  partitions are created on the first query, cracking continues afterwards.
* :class:`~repro.cracking.adaptive_adaptive.AdaptiveAdaptiveIndexing` — radix
  partition on the first query, high-fanout cracking afterwards.

They are all built on the shared substrate of a
:class:`~repro.cracking.cracker_column.CrackerColumn` (the physically
reorganised copy of the data) and a
:class:`~repro.cracking.cracker_index.CrackerIndex` (flat sorted arrays
mapping pivot values to piece boundaries; the seed's AVL-backed variant is
kept as :class:`~repro.cracking.cracker_index.AVLCrackerIndex`, a tested
reference).
"""

from repro.cracking.adaptive_adaptive import AdaptiveAdaptiveIndexing
from repro.cracking.coarse_granular import CoarseGranularIndex
from repro.cracking.cracker_column import CrackerColumn
from repro.cracking.cracker_index import AVLCrackerIndex, CrackerIndex
from repro.cracking.progressive_stochastic import ProgressiveStochasticCracking
from repro.cracking.standard import StandardCracking
from repro.cracking.stochastic import StochasticCracking

__all__ = [
    "AVLCrackerIndex",
    "AdaptiveAdaptiveIndexing",
    "CoarseGranularIndex",
    "CrackerColumn",
    "CrackerIndex",
    "ProgressiveStochasticCracking",
    "StandardCracking",
    "StochasticCracking",
]
