"""Adaptive adaptive indexing (Schuhknecht, Dittrich, Linden — ICDE 2018).

Adaptive adaptive indexing generalises the cracking family: its first query
performs an out-of-place radix partition of the whole column into a
configurable number of buckets, and subsequent queries refine the touched
pieces with a configurable fan-out until pieces are small enough to be
sorted.  With the "manual configuration" used in the paper it behaves like a
hybrid between a coarse radix index and cracking: an expensive first query,
then fast and workload-robust convergence of the touched regions.

Substitution note (DESIGN.md): the original implementation is the authors'
C++ binary with software-managed buffers and non-temporal streaming stores.
This re-implementation keeps its *algorithmic* behaviour — first-query radix
partition, high-fanout refinement of touched pieces, full sort of small
pieces — which is what the paper's comparison relies on (first-query cost,
convergence speed, cumulative time).
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import IndexingBudget
from repro.core.calibration import CostConstants
from repro.core.query import Predicate, QueryResult
from repro.cracking.base import CrackingIndexBase
from repro.cracking.cracker_column import upper_exclusive
from repro.cracking.cracker_index import Piece
from repro.storage.column import Column

#: Default radix fan-out of the first-query partition and of piece refinement.
DEFAULT_FANOUT = 64

#: Pieces of at most this many elements are sorted outright when touched.
DEFAULT_SORT_THRESHOLD = 4096


class AdaptiveAdaptiveIndexing(CrackingIndexBase):
    """Radix partition on the first query, high-fanout cracking afterwards.

    Parameters
    ----------
    column, budget, constants, adaptive_kernels, rng:
        See :class:`~repro.cracking.base.CrackingIndexBase`.
    fanout:
        Number of equal-width partitions created per refinement step.
    sort_threshold:
        Pieces of at most this many elements are fully sorted when touched.
    """

    name = "AA"
    description = "Adaptive adaptive indexing"

    def __init__(
        self,
        column: Column,
        budget: IndexingBudget | None = None,
        constants: CostConstants | None = None,
        adaptive_kernels: bool = True,
        rng=None,
        fanout: int = DEFAULT_FANOUT,
        sort_threshold: int = DEFAULT_SORT_THRESHOLD,
    ) -> None:
        super().__init__(
            column,
            budget=budget,
            constants=constants,
            adaptive_kernels=adaptive_kernels,
            rng=rng,
        )
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout}")
        self.fanout = int(fanout)
        self.sort_threshold = int(sort_threshold)
        self._sorted_pieces: set = set()

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def _family_state(self) -> dict:
        state = super()._family_state()
        state["sorted_pieces"] = [[int(s), int(e)] for s, e in sorted(self._sorted_pieces)]
        return state

    def _load_family_state(self, state: dict) -> None:
        super()._load_family_state(state)
        self._sorted_pieces = {(int(s), int(e)) for s, e in state.get("sorted_pieces", [])}

    # ------------------------------------------------------------------
    # First query: out-of-place radix partition of the entire column
    # ------------------------------------------------------------------
    def _on_first_query(self) -> None:
        values = self._cracker.values
        whole = Piece(
            start=0,
            end=values.size,
            value_low=float(self._column.min()),
            value_high=float(upper_exclusive(self._column.max(), values.dtype)),
        )
        self._radix_split(whole)

    def _radix_split(self, piece: Piece) -> None:
        """Partition ``piece`` into ``fanout`` equal-width value ranges."""
        span = piece.value_high - piece.value_low
        if span <= 0 or piece.size <= 1:
            return
        segment = self._cracker.values[piece.start : piece.end]
        width = span / self.fanout
        # Using searchsorted against the very values that become the piece
        # boundaries keeps the cracker-index invariant (elements before a
        # boundary are strictly smaller than its key) exact even under
        # floating-point rounding of the bucket width.
        boundary_values = piece.value_low + width * np.arange(1, self.fanout)
        bucket_ids = np.searchsorted(boundary_values, segment, side="right")
        order = np.argsort(bucket_ids, kind="stable")
        self._cracker.values[piece.start : piece.end] = segment[order]
        counts = np.bincount(bucket_ids, minlength=self.fanout)
        positions = piece.start + np.cumsum(counts)[:-1]
        for bucket, position in enumerate(positions, start=1):
            self._cracker.index.add(float(boundary_values[bucket - 1]), int(position))
        self._cracker.swaps_performed += piece.size

    # ------------------------------------------------------------------
    # Subsequent queries: refine the touched pieces with the same fan-out
    # ------------------------------------------------------------------
    def _refine_towards(self, bound) -> None:
        piece = self._cracker.piece_for(bound)
        refinement_rounds = 0
        while piece.size > self.sort_threshold and refinement_rounds < 8:
            self._radix_split(piece)
            new_piece = self._cracker.piece_for(bound)
            if new_piece.size >= piece.size:
                break
            piece = new_piece
            refinement_rounds += 1
        if piece.size <= self.sort_threshold and piece.size > 1:
            self._sort_piece(piece)
        self._cracker.crack(bound)

    def _sort_piece(self, piece: Piece) -> None:
        key = (piece.start, piece.end)
        if key in self._sorted_pieces:
            return
        self._cracker.values[piece.start : piece.end].sort()
        self._cracker.swaps_performed += piece.size
        self._sorted_pieces.add(key)

    def _crack_and_answer(self, predicate: Predicate) -> QueryResult:
        high_bound = upper_exclusive(predicate.high, self._cracker.values.dtype)
        self._refine_towards(predicate.low)
        self._refine_towards(high_bound)
        position_low = self._cracker.index.position_of(predicate.low)
        position_high = self._cracker.index.position_of(high_bound)
        if position_high is None or position_low is None or position_high <= position_low:
            return QueryResult.empty()
        segment = self._cracker.values[position_low:position_high]
        return QueryResult(segment.sum(), int(segment.size))
