"""Coarse-granular index (Schuhknecht et al., PVLDB 2013).

Coarse-granular indexing improves the robustness of cracking by paying a
larger first-query cost: when the column is first queried it is immediately
split into a configurable number of equally sized (equi-depth) partitions, so
no later query can ever run into one huge unrefined piece.  After that first
query the algorithm behaves like standard cracking within the pre-built
partitions.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import IndexingBudget
from repro.core.calibration import CostConstants
from repro.core.query import Predicate, QueryResult
from repro.cracking.base import CrackingIndexBase
from repro.storage.column import Column

#: Default number of equal-sized partitions created by the first query.
DEFAULT_INITIAL_PARTITIONS = 64


class CoarseGranularIndex(CrackingIndexBase):
    """Equal-sized partitions on the first query, standard cracking after.

    Parameters
    ----------
    column, budget, constants, adaptive_kernels, rng:
        See :class:`~repro.cracking.base.CrackingIndexBase`.
    initial_partitions:
        Number of equal-sized partitions created by the first query.  The
        paper notes this is a DBA knob trading first-query cost against
        robustness.
    """

    name = "CGI"
    description = "Coarse-granular index"

    def __init__(
        self,
        column: Column,
        budget: IndexingBudget | None = None,
        constants: CostConstants | None = None,
        adaptive_kernels: bool = True,
        rng=None,
        initial_partitions: int = DEFAULT_INITIAL_PARTITIONS,
    ) -> None:
        super().__init__(
            column,
            budget=budget,
            constants=constants,
            adaptive_kernels=adaptive_kernels,
            rng=rng,
        )
        if initial_partitions < 2:
            raise ValueError(
                f"initial_partitions must be at least 2, got {initial_partitions}"
            )
        self.initial_partitions = int(initial_partitions)

    # ------------------------------------------------------------------
    def _on_first_query(self) -> None:
        """Split the freshly copied column into equal-sized partitions.

        The partition boundaries are the equi-depth quantiles of the data;
        cracking on each quantile value produces pieces of (approximately)
        ``N / initial_partitions`` elements regardless of skew.
        """
        quantiles = np.linspace(0.0, 1.0, self.initial_partitions + 1)[1:-1]
        boundaries = np.quantile(self._cracker.values, quantiles)
        for boundary in np.unique(boundaries):
            self._cracker.crack(float(boundary))

    def _crack_and_answer(self, predicate: Predicate) -> QueryResult:
        return self._cracker.range_query(predicate.low, predicate.high)
