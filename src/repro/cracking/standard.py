"""Standard database cracking (Idreos et al., CIDR 2007).

Each query cracks the column on its two predicate bounds: the piece currently
containing each bound is partitioned around that bound, and the answer is the
contiguous run of elements between the two resulting boundaries.  Because the
pivots are the query predicates themselves, the physical organisation mirrors
the workload — which is precisely why standard cracking degrades on
sequential workload patterns (large unindexed pieces keep being re-cracked).
"""

from __future__ import annotations

from repro.core.query import Predicate, QueryResult
from repro.cracking.base import CrackingIndexBase


class StandardCracking(CrackingIndexBase):
    """Crack on the query predicates (the original adaptive index)."""

    name = "STD"
    description = "Standard database cracking"

    def _crack_and_answer(self, predicate: Predicate) -> QueryResult:
        return self._cracker.range_query(predicate.low, predicate.high)
