"""Stochastic cracking (Halim et al., PVLDB 2012).

Standard cracking's pivots follow the query predicates, which makes its
performance collapse under sequential workloads.  Stochastic cracking instead
partitions the piece containing each query bound around *random* pivots until
the piece is small, and only then cracks on the bound itself.  The random
pivots decouple the physical reorganisation from the workload, trading a
little extra work per query for robustness (the DDC/DDR family of the
original paper).
"""

from __future__ import annotations

from repro.core.budget import IndexingBudget
from repro.core.calibration import CostConstants
from repro.core.query import Predicate, QueryResult
from repro.cracking.base import CrackingIndexBase
from repro.cracking.cracker_column import upper_exclusive
from repro.storage.column import Column

#: Pieces of at most this many elements are cracked directly on the query
#: bound (the analogue of the original "fits in the L2 cache" rule).
DEFAULT_MINIMUM_PIECE = 16384


class StochasticCracking(CrackingIndexBase):
    """Crack large pieces around random pivots, small pieces on the bound.

    Parameters
    ----------
    column, budget, constants, adaptive_kernels, rng:
        See :class:`~repro.cracking.base.CrackingIndexBase`.
    minimum_piece:
        Piece size below which the query bound itself is used as the pivot.
    """

    name = "STC"
    description = "Stochastic cracking (random pivots)"

    def __init__(
        self,
        column: Column,
        budget: IndexingBudget | None = None,
        constants: CostConstants | None = None,
        adaptive_kernels: bool = True,
        rng=None,
        minimum_piece: int = DEFAULT_MINIMUM_PIECE,
    ) -> None:
        super().__init__(
            column,
            budget=budget,
            constants=constants,
            adaptive_kernels=adaptive_kernels,
            rng=rng,
        )
        self.minimum_piece = int(minimum_piece)

    # ------------------------------------------------------------------
    def _crack_towards(self, bound) -> None:
        """Randomly crack the piece containing ``bound`` until it is small."""
        piece = self._cracker.piece_for(bound)
        while piece.size > self.minimum_piece:
            pivot = self._random_pivot(piece.value_low, piece.value_high)
            if pivot is None:
                break
            self._cracker.crack_piece_at(piece, pivot)
            piece = self._cracker.piece_for(bound)
        self._cracker.crack(bound)

    def _crack_and_answer(self, predicate: Predicate) -> QueryResult:
        high_bound = upper_exclusive(predicate.high, self._cracker.values.dtype)
        self._crack_towards(predicate.low)
        self._crack_towards(high_bound)
        position_low = self._cracker.index.position_of(predicate.low)
        position_high = self._cracker.index.position_of(high_bound)
        if position_high <= position_low:
            return QueryResult.empty()
        segment = self._cracker.values[position_low:position_high]
        return QueryResult(segment.sum(), int(segment.size))
