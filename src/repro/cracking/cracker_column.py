"""The cracker column: a physically reorganised copy of the base column.

Database cracking copies the column on the first query and thereafter
reorganises (cracks) it piece by piece as a side effect of query processing.
:class:`CrackerColumn` bundles the writable copy with its
:class:`~repro.cracking.cracker_index.CrackerIndex` and provides the
operations every cracking variant is expressed in:

* :meth:`crack` — partition the piece containing a pivot value so that the
  pivot becomes a piece boundary;
* :meth:`crack_piece_at` — crack an explicit piece around an arbitrary pivot
  (used by the stochastic variants, which pick random pivots);
* :meth:`range_query` — crack on both query bounds and aggregate the
  contiguous run of qualifying elements;
* :meth:`range_query_without_cracking` — aggregate without reorganising,
  scanning the (at most two) boundary pieces (used when a swap budget has
  been exhausted).
"""

from __future__ import annotations

import numpy as np

from repro.core.query import QueryResult
from repro.cracking.cracker_index import CrackerIndex, Piece
from repro.cracking.kernels import choose_kernel, partition_predicated, partition_streamed
from repro.storage.column import Column
from repro.storage.membudget import budget_of


def upper_exclusive(value, dtype: np.dtype):
    """Smallest representable value strictly greater than ``value``.

    Cracking partitions with a "strictly less than" convention, so an
    inclusive upper bound ``high`` is handled by cracking at the next
    representable value.
    """
    if np.issubdtype(dtype, np.integer):
        return int(value) + 1
    return float(np.nextafter(value, np.inf))


class CrackerColumn:
    """A writable copy of a column plus its cracker index.

    Parameters
    ----------
    column:
        The base column; its data is copied (this copy is the dominant cost
        of the first query of every cracking algorithm).
    adaptive_kernels:
        When true (the default), the partition kernel is chosen per crack
        with the Haffner-style decision tree of
        :func:`~repro.cracking.kernels.choose_kernel`; otherwise the
        predicated kernel is always used.
    """

    def __init__(self, column: Column, adaptive_kernels: bool = True) -> None:
        self._column = column
        self.values = column.copy_data()
        value_low = float(column.min())
        value_high = upper_exclusive(column.max(), column.dtype)
        self.index = CrackerIndex(len(column), value_low, value_high)
        self.adaptive_kernels = bool(adaptive_kernels)
        self.swaps_performed = 0
        # Out-of-core: under a memory budget large cracks stream through a
        # spillable scratch buffer instead of allocating O(piece) masks.
        budget = budget_of(column)
        self._scratch = budget.scratch if budget is not None else None
        self._chunk_rows = (
            budget.chunk_rows(self.values.dtype) if budget is not None else None
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def n_pieces(self) -> int:
        """Number of pieces the column is currently divided into."""
        return self.index.n_pieces

    def memory_footprint(self) -> int:
        """Bytes held by the cracker column copy."""
        return int(self.values.nbytes)

    def piece_for(self, value) -> Piece:
        """The piece currently containing ``value``."""
        return self.index.piece_for(value)

    # ------------------------------------------------------------------
    # Cracking primitives
    # ------------------------------------------------------------------
    def crack_piece_at(self, piece: Piece, pivot) -> int:
        """Partition ``piece`` around ``pivot`` and record the new boundary.

        Returns the boundary position.  The pivot may be any value inside the
        piece's value bounds; it does not have to occur in the data.
        """
        segment = self.values[piece.start : piece.end]
        if self._chunk_rows is not None and piece.size > self._chunk_rows:
            # Budgeted + larger than one streamed chunk: the radix-pass
            # kernel keeps anonymous temporaries chunk-sized.
            boundary_offset = partition_streamed(
                segment, pivot, self._chunk_rows, self._scratch
            )
        else:
            if self.adaptive_kernels:
                selectivity = 0.5
                span = piece.value_high - piece.value_low
                if span > 0:
                    selectivity = min(1.0, max(0.0, (pivot - piece.value_low) / span))
                kernel = choose_kernel(piece.size, selectivity)
            else:
                kernel = partition_predicated
            boundary_offset = kernel(segment, pivot)
        position = piece.start + boundary_offset
        self.index.add(pivot, position)
        self.swaps_performed += piece.size
        return position

    def crack(self, value) -> int:
        """Crack at ``value`` (no-op if ``value`` is already a boundary).

        Returns the boundary position of ``value``: all elements before it
        are ``< value``, all elements at or after it are ``>= value``.
        """
        existing = self.index.position_of(value)
        if existing is not None:
            return int(existing)
        piece = self.index.piece_for(value)
        if piece.size == 0:
            self.index.add(value, piece.start)
            return piece.start
        return self.crack_piece_at(piece, value)

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def range_query(self, low, high) -> QueryResult:
        """Crack on both bounds of ``[low, high]`` and aggregate the run."""
        high_bound = upper_exclusive(high, self.values.dtype)
        position_low = self.crack(low)
        position_high = self.crack(high_bound)
        if position_high <= position_low:
            return QueryResult.empty()
        segment = self.values[position_low:position_high]
        return QueryResult(segment.sum(), int(segment.size))

    def range_query_without_cracking(self, low, high) -> QueryResult:
        """Aggregate ``[low, high]`` without any reorganisation.

        The pieces containing the bounds are scanned with a predicate mask;
        the fully covered pieces in between are aggregated without filtering.
        """
        high_bound = upper_exclusive(high, self.values.dtype)
        low_piece = self.index.piece_for(low)
        high_piece = self.index.piece_for(high_bound)

        low_position = self.index.position_of(low)
        high_position = self.index.position_of(high_bound)

        result = QueryResult.empty()
        if low_piece.start == high_piece.start:
            # Both bounds fall into the same piece: a single masked scan.
            segment = self.values[low_piece.start : low_piece.end]
            mask = (segment >= low) & (segment <= high)
            return QueryResult.from_masked(segment, mask)

        # Piece containing the lower bound.
        middle_start = low_piece.end
        if low_position is not None:
            middle_start = int(low_position)
        else:
            segment = self.values[low_piece.start : low_piece.end]
            mask = segment >= low
            result += QueryResult.from_masked(segment, mask)

        # Piece containing the upper bound.
        middle_end = high_piece.start
        if high_position is not None:
            middle_end = int(high_position)
        else:
            segment = self.values[high_piece.start : high_piece.end]
            mask = segment <= high
            result += QueryResult.from_masked(segment, mask)

        if middle_end > middle_start:
            segment = self.values[middle_start:middle_end]
            result += QueryResult(segment.sum(), int(segment.size))
        return result

    def search_many(self, lows, highs) -> tuple:
        """Answer a batch of range queries, cracking on every bound at once.

        Sequentially, every query cracks the piece containing each of its
        bounds.  A batch carries all its bounds up front, so pieces dense
        with bounds — at least ``log2(piece size)`` of them, the point where
        recursive cracking would have done a sort's worth of passes anyway —
        are **sorted once** and all their bounds registered at binary-search
        positions (adaptive-merging-style amortization); sparse pieces keep
        the conventional incremental crack per bound, preserving cracking's
        piece-at-a-time behavior for small batches.  Afterwards every
        query's answer is a contiguous run of the cracker column, and all
        runs are aggregated together from one prefix-sum pass — two
        vectorized position lookups instead of per-query Python dispatch.

        Returns ``(sums, counts)`` arrays aligned with the input bounds.
        """
        lows = np.asarray(lows)
        highs = np.asarray(highs)
        if lows.size == 0:
            return np.zeros(0, dtype=self.values.dtype), np.zeros(0, dtype=np.int64)
        high_bounds = np.array(
            [upper_exclusive(high, self.values.dtype) for high in highs.tolist()]
        )
        bounds = np.unique(np.concatenate([lows, high_bounds]))
        positions = np.empty(bounds.size, dtype=np.int64)

        # Group the new bounds by the piece currently containing them.  A
        # sort never moves values across piece boundaries, so the grouping
        # stays valid while pieces are processed.
        piece_groups: dict = {}
        for bound_number, bound in enumerate(bounds.tolist()):
            existing = self.index.position_of(bound)
            if existing is not None:
                positions[bound_number] = int(existing)
                continue
            piece = self.index.piece_for(bound)
            piece_groups.setdefault((piece.start, piece.end), []).append(bound_number)

        for (start, end), bound_numbers in piece_groups.items():
            size = end - start
            if len(bound_numbers) < max(2, int(np.log2(max(size, 2)))):
                # Sparse piece: conventional incremental cracks, exactly as
                # a sequential run of these queries would perform.
                for bound_number in bound_numbers:
                    positions[bound_number] = self.crack(bounds[bound_number])
                continue
            segment = self.values[start:end]
            segment.sort()
            self.swaps_performed += segment.size
            piece_bounds = bounds[bound_numbers]
            piece_positions = start + np.searchsorted(segment, piece_bounds, side="left")
            for bound, position in zip(piece_bounds.tolist(), piece_positions.tolist()):
                self.index.add(bound, int(position))
            positions[bound_numbers] = piece_positions

        if self._scratch is not None:
            prefix = self._scratch.allocate(self.values.size + 1, self.values.dtype)
        else:
            prefix = np.empty(self.values.size + 1, dtype=self.values.dtype)
        prefix[0] = 0
        np.cumsum(self.values, out=prefix[1:])
        position_low = positions[np.searchsorted(bounds, lows)]
        position_high = positions[np.searchsorted(bounds, high_bounds)]
        position_high = np.maximum(position_low, position_high)
        sums = prefix[position_high] - prefix[position_low]
        counts = (position_high - position_low).astype(np.int64)
        return sums, counts

    def is_fully_sorted(self) -> bool:
        """Whether the cracker column has (incidentally) become fully sorted."""
        return bool(np.all(self.values[:-1] <= self.values[1:]))
