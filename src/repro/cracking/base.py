"""Shared machinery of all database-cracking indexes.

Every cracking variant follows the same outer structure: the first query pays
for copying the column into a :class:`~repro.cracking.cracker_column.CrackerColumn`,
every query physically reorganises some pieces of that copy, and the answer is
aggregated from the (partially) reorganised data.  The variants only differ in
*where* they crack, which is the single method subclasses implement.

Mutable columns are handled by the shared
:class:`~repro.core.overlay.DeltaOverlay` mixin (inherited through
:class:`~repro.core.index.BaseIndex`): the cracker column is materialised
from the snapshot pinned at index creation, and every answer is corrected
with the delta-store writes that arrived afterwards.  Cracking never
converges — it refines forever — so it never folds the delta into its
pieces either: absorbed writes stay in the overlay's sorted side buffers,
answered with binary searches, which matches cracking's
pay-only-for-what-you-touch philosophy (no bulk reorganisation, ever).
"""

from __future__ import annotations

import abc
import json

import numpy as np

from repro.core.calibration import CostConstants
from repro.core.index import BaseIndex
from repro.core.phase import IndexPhase
from repro.core.policy import BudgetPolicy
from repro.core.query import Predicate, QueryResult
from repro.cracking.cracker_column import CrackerColumn
from repro.cracking.cracker_index import CrackerIndex
from repro.storage.column import Column
from repro.storage.membudget import budget_of


class CrackingIndexBase(BaseIndex):
    """Base class of the adaptive-indexing (cracking) algorithms.

    Parameters
    ----------
    column:
        Column to index.
    budget:
        Accepted for interface compatibility; cracking algorithms do not use
        an indexing budget (their per-query work is dictated by the
        algorithm, which is exactly the robustness problem the paper's
        progressive indexes address).
    constants:
        Cost-model constants (used only for reporting).
    adaptive_kernels:
        Select the partition kernel per crack with the Haffner-style decision
        tree (the default, matching the paper's adaptive cracking-kernel
        setup) instead of always using the predicated kernel.
    rng:
        Random generator used by the stochastic variants.
    """

    def __init__(
        self,
        column: Column,
        budget: BudgetPolicy | None = None,
        constants: CostConstants | None = None,
        adaptive_kernels: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(column, budget=budget, constants=constants)
        self.adaptive_kernels = bool(adaptive_kernels)
        self._rng = rng or np.random.default_rng(7)
        self._cracker: CrackerColumn | None = None

    # ------------------------------------------------------------------
    @property
    def cracker(self) -> CrackerColumn | None:
        """The cracker column (``None`` before the first query)."""
        return self._cracker

    #: Cracking performs no budgeted progressive refinement, so the batch
    #: executor should hand the whole batch to :meth:`search_many` at once.
    eager_batch = True

    def memory_footprint(self) -> int:
        return self._cracker.memory_footprint() if self._cracker is not None else 0

    def _search_many(self, lows, highs):
        """Batched answering via one crack per distinct bound of the batch.

        Materialises the cracker column if this is the first operation (the
        same first-query copy a sequential run pays), cracks every distinct
        bound once, and aggregates all queries from a single prefix-sum pass.
        Variant-specific per-query policies (random pivots, swap caps) are
        side effects of sequential execution that do not change answers, so
        the batch path shares one implementation across all variants.
        """
        if self._cracker is None:
            self._materialize()
        return self._cracker.search_many(lows, highs)

    # ------------------------------------------------------------------
    # Persistence (checkpointing; shared by all five variants)
    # ------------------------------------------------------------------
    def _family_state(self) -> dict:
        state = {"materialized": self._cracker is not None}
        try:
            state["rng_state"] = json.dumps(self._rng.bit_generator.state)
        except TypeError:  # pragma: no cover - exotic bit generators
            state["rng_state"] = None
        if self._cracker is not None:
            state["values"] = np.array(self._cracker.values)
            state["swaps"] = int(self._cracker.swaps_performed)
            state["adaptive_kernels"] = bool(self._cracker.adaptive_kernels)
            state["cracker_index"] = self._cracker.index.state_dict()
        return state

    def _load_family_state(self, state: dict) -> None:
        rng_state = state.get("rng_state")
        if rng_state:
            self._rng.bit_generator.state = json.loads(rng_state)
        if not state.get("materialized"):
            return
        cracker = CrackerColumn.__new__(CrackerColumn)
        cracker._column = self._column
        cracker.values = np.asarray(state["values"])
        cracker.index = CrackerIndex.from_state(state["cracker_index"])
        cracker.adaptive_kernels = bool(state.get("adaptive_kernels", True))
        cracker.swaps_performed = int(state.get("swaps", 0))
        budget = budget_of(self._column)
        cracker._scratch = budget.scratch if budget is not None else None
        cracker._chunk_rows = (
            budget.chunk_rows(cracker.values.dtype) if budget is not None else None
        )
        self._cracker = cracker

    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        """First-touch copy of the column into the cracker.

        Cracking then refines forever; it offers no deterministic
        convergence, which Table 2 of the paper records as "x" — the
        lifecycle enters ``REFINEMENT`` and never leaves it.
        """
        self._cracker = CrackerColumn(self._column, adaptive_kernels=self.adaptive_kernels)
        self._advance_phase(IndexPhase.REFINEMENT)
        self._on_first_query()

    def _execute(self, predicate: Predicate) -> QueryResult:
        if self._cracker is None:
            self._materialize()
            self.last_stats.elements_indexed = len(self._column)
        swaps_before = self._cracker.swaps_performed
        result = self._crack_and_answer(predicate)
        self.last_stats.notes["swaps"] = self._cracker.swaps_performed - swaps_before
        self.last_stats.notes["pieces"] = self._cracker.n_pieces
        return result

    def _on_first_query(self) -> None:
        """Hook for variants that do extra work on the first query."""

    @abc.abstractmethod
    def _crack_and_answer(self, predicate: Predicate) -> QueryResult:
        """Crack according to the variant's policy and answer the predicate."""

    # ------------------------------------------------------------------
    # Helpers shared by the stochastic variants
    # ------------------------------------------------------------------
    def _random_pivot(self, value_low: float, value_high: float) -> float | None:
        """A uniformly random pivot strictly inside ``(value_low, value_high)``."""
        if not value_high > value_low:
            return None
        pivot = float(self._rng.uniform(value_low, value_high))
        if pivot <= value_low or pivot >= value_high:
            return None
        return pivot
