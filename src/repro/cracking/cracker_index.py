"""The cracker index: pivot values mapped to piece boundaries.

Database cracking maintains, next to the physically reorganised cracker
column, a *cracker index* that records where the column has already been
partitioned.  An entry ``key -> position`` states the invariant::

    column[0:position]  <  key
    column[position:N] >=  key

The pieces of the cracker column are therefore the gaps between consecutive
boundary positions.  :class:`CrackerIndex` stores the entries in an AVL tree
(:mod:`repro.cracking.avl`) and answers the piece-lookup queries the cracking
algorithms need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.cracking.avl import AVLTree


@dataclass(frozen=True)
class Piece:
    """A contiguous, not-yet-fully-cracked piece of the cracker column.

    Attributes
    ----------
    start, end:
        Half-open position range of the piece.
    value_low, value_high:
        Known value bounds of the piece: every element ``e`` in the piece
        satisfies ``value_low <= e < value_high`` (bounds come from the
        neighbouring cracker-index entries, or the column domain at the
        edges).
    """

    start: int
    end: int
    value_low: float
    value_high: float

    @property
    def size(self) -> int:
        """Number of elements in the piece."""
        return self.end - self.start


class CrackerIndex:
    """Ordered map from pivot value to piece boundary position.

    Parameters
    ----------
    n_elements:
        Size of the cracker column.
    value_low, value_high:
        Domain bounds of the column (used for the edge pieces).
    """

    def __init__(self, n_elements: int, value_low: float, value_high: float) -> None:
        self._tree = AVLTree()
        self._n = int(n_elements)
        self._value_low = value_low
        self._value_high = value_high

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tree)

    @property
    def height(self) -> int:
        """Height of the underlying AVL tree."""
        return self._tree.height

    @property
    def n_pieces(self) -> int:
        """Number of pieces the column is currently divided into."""
        return len(self._tree) + 1

    def boundaries(self) -> Iterator[Tuple[float, int]]:
        """Iterate over ``(pivot value, position)`` entries in value order."""
        return self._tree.items()

    # ------------------------------------------------------------------
    def add(self, key: float, position: int) -> None:
        """Record that the column has been cracked at ``key`` / ``position``."""
        self._tree.insert(key, int(position))

    def position_of(self, key: float):
        """Boundary position of ``key`` if it has been cracked on, else ``None``."""
        return self._tree.get(key)

    def piece_for(self, value: float) -> Piece:
        """The piece that currently contains ``value``.

        The piece spans from the boundary of the largest cracked key
        ``<= value`` to the boundary of the smallest cracked key ``> value``
        (column edges when no such keys exist).
        """
        floor = self._tree.floor_item(value)
        higher = self._tree.higher_item(value)
        start = floor[1] if floor is not None else 0
        value_low = floor[0] if floor is not None else self._value_low
        end = higher[1] if higher is not None else self._n
        value_high = higher[0] if higher is not None else self._value_high
        return Piece(start=int(start), end=int(end), value_low=value_low, value_high=value_high)

    def largest_piece(self) -> Piece:
        """The largest current piece (useful for idle refinement policies)."""
        previous_pos = 0
        previous_key = self._value_low
        best = Piece(0, self._n, self._value_low, self._value_high)
        best_size = -1
        entries = list(self._tree.items()) + [(self._value_high, self._n)]
        for key, position in entries:
            size = position - previous_pos
            if size > best_size:
                best = Piece(previous_pos, position, previous_key, key)
                best_size = size
            previous_pos = position
            previous_key = key
        return best

    def piece_sizes(self) -> list:
        """Sizes of all pieces in column order."""
        sizes = []
        previous = 0
        for _, position in self._tree.items():
            sizes.append(position - previous)
            previous = position
        sizes.append(self._n - previous)
        return sizes
