"""The cracker index: pivot values mapped to piece boundaries.

Database cracking maintains, next to the physically reorganised cracker
column, a *cracker index* that records where the column has already been
partitioned.  An entry ``key -> position`` states the invariant::

    column[0:position]  <  key
    column[position:N] >=  key

The pieces of the cracker column are therefore the gaps between consecutive
boundary positions.

:class:`CrackerIndex` stores the entries in a pair of flat, sorted NumPy
arrays: lookups are single C-level binary searches (``np.searchsorted``) and
inserts are one ``memmove``-style shift inside a capacity-doubling buffer.
For the entry counts cracking produces (one or two new boundaries per query)
this is far faster than pointer-chasing a Python tree — the AVL-backed
implementation the seed used is preserved as :class:`AVLCrackerIndex`, a
behavioural reference that the flat index is differentially tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.cracking.avl import AVLTree

#: Initial entry capacity of the flat arrays.
_INITIAL_CAPACITY = 64


@dataclass(frozen=True)
class Piece:
    """A contiguous, not-yet-fully-cracked piece of the cracker column.

    Attributes
    ----------
    start, end:
        Half-open position range of the piece.
    value_low, value_high:
        Known value bounds of the piece: every element ``e`` in the piece
        satisfies ``value_low <= e < value_high`` (bounds come from the
        neighbouring cracker-index entries, or the column domain at the
        edges).
    """

    start: int
    end: int
    value_low: float
    value_high: float

    @property
    def size(self) -> int:
        """Number of elements in the piece."""
        return self.end - self.start


class CrackerIndex:
    """Ordered map from pivot value to piece boundary position.

    Parameters
    ----------
    n_elements:
        Size of the cracker column.
    value_low, value_high:
        Domain bounds of the column (used for the edge pieces).
    """

    def __init__(self, n_elements: int, value_low: float, value_high: float) -> None:
        self._keys = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._positions = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._count = 0
        self._n = int(n_elements)
        self._value_low = value_low
        self._value_high = value_high

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Depth of a boundary lookup (binary-search steps over the entries)."""
        return int(np.ceil(np.log2(self._count + 1)))

    @property
    def n_pieces(self) -> int:
        """Number of pieces the column is currently divided into."""
        return self._count + 1

    def boundaries(self) -> Iterator[Tuple[float, int]]:
        """Iterate over ``(pivot value, position)`` entries in value order."""
        for entry in range(self._count):
            yield float(self._keys[entry]), int(self._positions[entry])

    # ------------------------------------------------------------------
    def add(self, key: float, position: int) -> None:
        """Record that the column has been cracked at ``key`` / ``position``."""
        slot = int(np.searchsorted(self._keys[: self._count], key))
        if slot < self._count and self._keys[slot] == key:
            self._positions[slot] = int(position)
            return
        if self._count == self._keys.size:
            grown_keys = np.empty(self._keys.size * 2, dtype=np.float64)
            grown_positions = np.empty(self._positions.size * 2, dtype=np.int64)
            grown_keys[: self._count] = self._keys[: self._count]
            grown_positions[: self._count] = self._positions[: self._count]
            self._keys = grown_keys
            self._positions = grown_positions
        self._keys[slot + 1 : self._count + 1] = self._keys[slot : self._count]
        self._positions[slot + 1 : self._count + 1] = self._positions[slot : self._count]
        self._keys[slot] = key
        self._positions[slot] = int(position)
        self._count += 1

    def position_of(self, key: float):
        """Boundary position of ``key`` if it has been cracked on, else ``None``."""
        slot = int(np.searchsorted(self._keys[: self._count], key))
        if slot < self._count and self._keys[slot] == key:
            return int(self._positions[slot])
        return None

    def piece_for(self, value: float) -> Piece:
        """The piece that currently contains ``value``.

        The piece spans from the boundary of the largest cracked key
        ``<= value`` to the boundary of the smallest cracked key ``> value``
        (column edges when no such keys exist).
        """
        after = int(np.searchsorted(self._keys[: self._count], value, side="right"))
        if after > 0:
            start = int(self._positions[after - 1])
            value_low = float(self._keys[after - 1])
        else:
            start = 0
            value_low = self._value_low
        if after < self._count:
            end = int(self._positions[after])
            value_high = float(self._keys[after])
        else:
            end = self._n
            value_high = self._value_high
        return Piece(start=start, end=end, value_low=value_low, value_high=value_high)

    def largest_piece(self) -> Piece:
        """The largest current piece (useful for idle refinement policies)."""
        previous_pos = 0
        previous_key = self._value_low
        best = Piece(0, self._n, self._value_low, self._value_high)
        best_size = -1
        entries = list(self.boundaries()) + [(self._value_high, self._n)]
        for key, position in entries:
            size = position - previous_pos
            if size > best_size:
                best = Piece(previous_pos, position, previous_key, key)
                best_size = size
            previous_pos = position
            previous_key = key
        return best

    def piece_sizes(self) -> list:
        """Sizes of all pieces in column order."""
        positions = self._positions[: self._count]
        sizes = np.diff(positions, prepend=0, append=self._n)
        return [int(size) for size in sizes]

    # ------------------------------------------------------------------
    # Persistence (checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the boundary entries and domain bounds."""
        return {
            "n": int(self._n),
            "value_low": float(self._value_low),
            "value_high": float(self._value_high),
            "keys": np.array(self._keys[: self._count]),
            "positions": np.array(self._positions[: self._count]),
        }

    @classmethod
    def from_state(cls, state: dict) -> "CrackerIndex":
        """Rebuild a cracker index from :meth:`state_dict` output."""
        index = cls(int(state["n"]), float(state["value_low"]), float(state["value_high"]))
        keys = np.asarray(state["keys"], dtype=np.float64)
        positions = np.asarray(state["positions"], dtype=np.int64)
        if keys.size:
            capacity = max(_INITIAL_CAPACITY, int(keys.size))
            index._keys = np.empty(capacity, dtype=np.float64)
            index._positions = np.empty(capacity, dtype=np.int64)
            index._keys[: keys.size] = keys
            index._positions[: keys.size] = positions
            index._count = int(keys.size)
        return index


class AVLCrackerIndex:
    """The seed's AVL-tree-backed cracker index, kept as a tested reference.

    Behaviourally identical to :class:`CrackerIndex` (the flat-array
    implementation is differentially tested against this class); only the
    storage differs — an :class:`~repro.cracking.avl.AVLTree` of
    ``key -> position`` entries.
    """

    def __init__(self, n_elements: int, value_low: float, value_high: float) -> None:
        self._tree = AVLTree()
        self._n = int(n_elements)
        self._value_low = value_low
        self._value_high = value_high

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tree)

    @property
    def height(self) -> int:
        """Height of the underlying AVL tree."""
        return self._tree.height

    @property
    def n_pieces(self) -> int:
        """Number of pieces the column is currently divided into."""
        return len(self._tree) + 1

    def boundaries(self) -> Iterator[Tuple[float, int]]:
        """Iterate over ``(pivot value, position)`` entries in value order."""
        return self._tree.items()

    # ------------------------------------------------------------------
    def add(self, key: float, position: int) -> None:
        """Record that the column has been cracked at ``key`` / ``position``."""
        self._tree.insert(key, int(position))

    def position_of(self, key: float):
        """Boundary position of ``key`` if it has been cracked on, else ``None``."""
        return self._tree.get(key)

    def piece_for(self, value: float) -> Piece:
        """The piece that currently contains ``value``."""
        floor = self._tree.floor_item(value)
        higher = self._tree.higher_item(value)
        start = floor[1] if floor is not None else 0
        value_low = floor[0] if floor is not None else self._value_low
        end = higher[1] if higher is not None else self._n
        value_high = higher[0] if higher is not None else self._value_high
        return Piece(start=int(start), end=int(end), value_low=value_low, value_high=value_high)

    def largest_piece(self) -> Piece:
        """The largest current piece."""
        previous_pos = 0
        previous_key = self._value_low
        best = Piece(0, self._n, self._value_low, self._value_high)
        best_size = -1
        entries = list(self._tree.items()) + [(self._value_high, self._n)]
        for key, position in entries:
            size = position - previous_pos
            if size > best_size:
                best = Piece(previous_pos, position, previous_key, key)
                best_size = size
            previous_pos = position
            previous_key = key
        return best

    def piece_sizes(self) -> list:
        """Sizes of all pieces in column order."""
        sizes = []
        previous = 0
        for _, position in self._tree.items():
            sizes.append(position - previous)
            previous = position
        sizes.append(self._n - previous)
        return sizes
