"""Progressive stochastic cracking (Halim et al., PVLDB 2012).

Stochastic cracking with a cap on the amount of data movement per query: at
most ``allowed_swaps`` (a fraction of the column size) elements may be
reorganised while processing pieces larger than the cache threshold.  Pieces
that already fit the threshold are always cracked completely.  When the
budget runs out before the query bounds have become piece boundaries, the
answer is computed by scanning the boundary pieces without reorganising them.

The paper runs this comparator with the allowed swaps set to 10% of the base
column, which is the default here.

Substitution note (DESIGN.md): the original implementation can suspend a
crack in the middle of a piece.  Here a crack always completes the piece it
started, so the per-query data movement is bounded by the allowance plus at
most one piece-sized overshoot per query bound; once the pieces have shrunk
below the allowance (after the first handful of queries) the cap is fully
effective.
"""

from __future__ import annotations

from repro.core.budget import IndexingBudget
from repro.core.calibration import CostConstants
from repro.core.query import Predicate, QueryResult
from repro.cracking.base import CrackingIndexBase
from repro.cracking.cracker_column import upper_exclusive
from repro.cracking.stochastic import DEFAULT_MINIMUM_PIECE
from repro.storage.column import Column

#: Default per-query swap allowance as a fraction of the column size.
DEFAULT_ALLOWED_SWAPS = 0.1


class ProgressiveStochasticCracking(CrackingIndexBase):
    """Stochastic cracking with a per-query swap budget.

    Parameters
    ----------
    column, budget, constants, adaptive_kernels, rng:
        See :class:`~repro.cracking.base.CrackingIndexBase`.
    allowed_swaps:
        Maximum fraction of the column that may be reorganised per query
        while working on pieces larger than ``minimum_piece``.
    minimum_piece:
        Piece size below which a complete crack is always performed.
    """

    name = "PSTC"
    description = "Progressive stochastic cracking (10% swaps)"

    def __init__(
        self,
        column: Column,
        budget: IndexingBudget | None = None,
        constants: CostConstants | None = None,
        adaptive_kernels: bool = True,
        rng=None,
        allowed_swaps: float = DEFAULT_ALLOWED_SWAPS,
        minimum_piece: int = DEFAULT_MINIMUM_PIECE,
    ) -> None:
        super().__init__(
            column,
            budget=budget,
            constants=constants,
            adaptive_kernels=adaptive_kernels,
            rng=rng,
        )
        if allowed_swaps <= 0:
            raise ValueError(f"allowed_swaps must be positive, got {allowed_swaps}")
        self.allowed_swaps = float(allowed_swaps)
        self.minimum_piece = int(minimum_piece)

    # ------------------------------------------------------------------
    def _crack_towards(self, bound, swap_budget: int) -> int:
        """Crack towards ``bound`` spending at most ``swap_budget`` swaps."""
        piece = self._cracker.piece_for(bound)
        while piece.size > self.minimum_piece and swap_budget > 0:
            pivot = self._random_pivot(piece.value_low, piece.value_high)
            if pivot is None:
                break
            swap_budget -= piece.size
            self._cracker.crack_piece_at(piece, pivot)
            piece = self._cracker.piece_for(bound)
        if piece.size <= self.minimum_piece:
            # Cache-resident pieces are always cracked completely.
            self._cracker.crack(bound)
        return swap_budget

    def _crack_and_answer(self, predicate: Predicate) -> QueryResult:
        swap_budget = int(self.allowed_swaps * len(self._column))
        high_bound = upper_exclusive(predicate.high, self._cracker.values.dtype)
        swap_budget = self._crack_towards(predicate.low, swap_budget)
        self._crack_towards(high_bound, swap_budget)
        return self._cracker.range_query_without_cracking(predicate.low, predicate.high)
