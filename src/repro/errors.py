"""Exception hierarchy for the progressive indexing library.

All exceptions raised by the library derive from :class:`ProgressiveIndexError`
so callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ProgressiveIndexError(Exception):
    """Base class for every error raised by this library."""


class InvalidColumnError(ProgressiveIndexError):
    """Raised when a column is constructed from unsuitable data.

    Examples include empty input, non one-dimensional arrays, or data types
    that cannot be indexed (e.g. object arrays).
    """


class UnknownColumnError(InvalidColumnError):
    """Raised when an operation references a column the table does not have.

    Subclasses :class:`InvalidColumnError` so existing callers that catch the
    broader error keep working; write paths (``insert``/``delete``/``update``)
    raise this instead of a bare ``KeyError`` when the column name is unknown.
    """


class DroppedColumnError(InvalidColumnError):
    """Raised when a write or read targets a column that has been dropped.

    A stale handle to a dropped column must fail loudly rather than silently
    accepting writes that no query will ever see.
    """


class PendingDeltaError(ProgressiveIndexError):
    """Raised by ``create_index`` on a column with foreign uncommitted deltas.

    When another session (write handle) has pending delta-store writes on the
    column, building an index would silently snapshot data the other handle
    has not committed yet.  The writing session commits its deltas with
    ``commit_writes()`` before another handle may index the column.
    """


class InvalidPredicateError(ProgressiveIndexError):
    """Raised when a query predicate is malformed (e.g. ``low > high``)."""


class InvalidBudgetError(ProgressiveIndexError):
    """Raised when an indexing budget is configured with invalid parameters.

    The budget fraction ``delta`` must lie in ``[0, 1]`` and time budgets must
    be non-negative.
    """


class IndexStateError(ProgressiveIndexError):
    """Raised when an index is driven through an illegal state transition.

    For example, asking a consolidated index to perform further refinement
    work, or querying an index after its backing column has been released.
    """


class PersistenceError(ProgressiveIndexError):
    """Raised when the durability layer meets a malformed on-disk artifact.

    Covers bad magic prefixes, truncated headers, CRC mismatches past the
    tolerated torn tail of the WAL, and checkpoint payloads that do not match
    the catalog.  Recovery never guesses: a file it cannot prove consistent
    is reported, not silently skipped.
    """


class RecoveryError(PersistenceError):
    """Raised when WAL replay or checkpoint restore cannot reach a consistent state."""


class ConcurrencyError(ProgressiveIndexError):
    """Raised when the concurrent serving layer detects a coordination bug.

    Covers a second writer trying to attach to a single-writer engine and —
    the load-bearing case — the scheduler's mutation guard observing an
    index life-cycle mutation from a thread that does not hold the index's
    exclusive work lane.  The guard turns silent state corruption under
    races into a hard, attributable failure.
    """


class ProtocolError(ProgressiveIndexError):
    """Raised when a serve-layer message violates the JSON-line protocol.

    Covers unparseable frames, oversized lines, unknown operations, and
    operations illegal for the connection's role (e.g. a reader issuing
    ``insert``).
    """


class CalibrationError(ProgressiveIndexError):
    """Raised when hardware-constant calibration produces unusable values."""


class WorkloadError(ProgressiveIndexError):
    """Raised when a workload generator is configured inconsistently."""


class ExperimentError(ProgressiveIndexError):
    """Raised when an experiment driver receives an invalid configuration."""
