"""Batch adapters: turn workloads into vectorized predicate batches.

The batch execution engine (:mod:`repro.engine.batch`) consumes
:class:`~repro.core.query.PredicateVector` objects — parallel NumPy arrays
of query bounds.  This module bridges the workload generators to that
representation:

* :func:`predicate_vector` — one workload, one vector;
* :func:`iter_batches` — split a long workload into fixed-size batches
  (e.g. to bound per-batch memory or to re-plan between batches);
* :func:`conjunctive_queries` — sample multi-column conjunctive predicates
  over a table, the input shape of ``session.where``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.query import PredicateVector
from repro.errors import WorkloadError
from repro.storage.table import Table
from repro.workloads.workload import Workload


def predicate_vector(workload: Workload) -> PredicateVector:
    """The workload's queries as one :class:`PredicateVector`."""
    lows = np.array([predicate.low for predicate in workload])
    highs = np.array([predicate.high for predicate in workload])
    return PredicateVector(lows, highs)


def iter_batches(workload: Workload, batch_size: int) -> Iterator[PredicateVector]:
    """Split ``workload`` into consecutive batches of ``batch_size`` queries.

    The final batch holds the remainder and may be smaller.
    """
    if batch_size <= 0:
        raise WorkloadError(f"batch_size must be positive, got {batch_size}")
    vector = predicate_vector(workload)
    for start in range(0, len(vector), batch_size):
        yield vector.slice(start, start + batch_size)


def conjunctive_queries(
    table: Table,
    column_names: Sequence[str],
    n_queries: int,
    selectivity: float = 0.1,
    rng: np.random.Generator | None = None,
) -> List[Dict[str, Tuple[float, float]]]:
    """Sample multi-column conjunctive range predicates over ``table``.

    Each query restricts every named column to a random range covering
    ``selectivity`` of that column's value domain — the input shape of
    :meth:`~repro.engine.session.IndexingSession.where`.
    """
    if n_queries <= 0:
        raise WorkloadError(f"n_queries must be positive, got {n_queries}")
    if not 0.0 < selectivity <= 1.0:
        raise WorkloadError(f"selectivity must be in (0, 1], got {selectivity}")
    if not column_names:
        raise WorkloadError("conjunctive_queries requires at least one column")
    rng = rng or np.random.default_rng(0)
    domains = []
    for name in column_names:
        column = table.column(name)
        low, high = float(column.min()), float(column.max())
        domains.append((name, low, max(high - low, 0.0)))
    queries: List[Dict[str, Tuple[float, float]]] = []
    for _ in range(n_queries):
        query = {}
        for name, low, span in domains:
            width = selectivity * span
            start = low + float(rng.uniform(0.0, max(span - width, 0.0)))
            query[name] = (start, start + width)
        queries.append(query)
    return queries
