"""The synthetic query patterns of Figure 6 (Halim et al. / the paper).

Every generator produces a :class:`~repro.workloads.workload.Workload` of
range queries over the domain ``[domain_low, domain_high]``.  Unless the
pattern dictates otherwise (ZoomIn and SeqZoomIn shrink their ranges by
construction), the query width is ``selectivity * domain`` — the paper uses
``selectivity = 0.1`` for the synthetic experiments.

The patterns:

``Random``
    Query positions drawn uniformly at random.
``SeqOver``
    The query range sweeps the domain from left to right in equal steps,
    wrapping around when it reaches the end (the pattern standard cracking
    struggles with).
``Skew``
    Query positions concentrated on a small hot region of the domain.
``Periodic``
    The query position advances by a large fixed stride, revisiting the same
    few regions periodically.
``ZoomIn``
    The first query covers (almost) the whole domain; every subsequent query
    shrinks both bounds towards the centre.
``ZoomInAlt``
    Alternates between zooming into the first and the second half of the
    domain.
``ZoomOutAlt``
    Starts from two narrow ranges near the centre of each half and widens
    them alternately.
``SeqZoomIn``
    Splits the domain into consecutive sections and performs a short zoom-in
    inside each section before moving to the next.
``MixedReadWrite``
    The mutable-substrate pattern: a base read pattern (default ``Random``)
    interleaved with inserts, value-range deletes and value-range updates at
    a configurable write ratio — the update-heavy workload the delta-store
    write path is benchmarked against.

Point-query variants replace each range with its centre value.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.workload import Workload, WriteOp

#: Default selectivity of the synthetic range queries (paper: 0.1).
DEFAULT_SELECTIVITY = 0.1

#: Fraction of the domain covered by the hot region of the Skew pattern.
SKEW_HOT_REGION = 0.2

#: Fraction of queries that fall into the hot region of the Skew pattern.
SKEW_HOT_PROBABILITY = 0.9


def _validate(domain_low: float, domain_high: float, n_queries: int, selectivity: float) -> None:
    if domain_high <= domain_low:
        raise WorkloadError(
            f"domain_high ({domain_high}) must exceed domain_low ({domain_low})"
        )
    if n_queries <= 0:
        raise WorkloadError(f"n_queries must be positive, got {n_queries}")
    if not 0.0 < selectivity <= 1.0:
        raise WorkloadError(f"selectivity must be in (0, 1], got {selectivity}")


def _clamp_ranges(
    lows: np.ndarray, width: float, domain_low: float, domain_high: float
) -> Tuple[np.ndarray, np.ndarray]:
    lows = np.clip(lows, domain_low, domain_high - width)
    return lows, lows + width


def _workload(
    name: str,
    lows: np.ndarray,
    highs: np.ndarray,
    domain_low: float,
    domain_high: float,
    **metadata,
) -> Workload:
    return Workload.from_bounds(
        name, lows, highs, domain_low, domain_high, metadata=metadata
    )


# ----------------------------------------------------------------------
# Individual patterns
# ----------------------------------------------------------------------
def random_workload(
    domain_low: float,
    domain_high: float,
    n_queries: int,
    selectivity: float = DEFAULT_SELECTIVITY,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Uniformly random query positions (pattern ``Random``)."""
    _validate(domain_low, domain_high, n_queries, selectivity)
    rng = rng or np.random.default_rng(0)
    domain = domain_high - domain_low
    width = selectivity * domain
    lows = domain_low + rng.uniform(0.0, domain - width, size=n_queries)
    lows, highs = _clamp_ranges(lows, width, domain_low, domain_high)
    return _workload("Random", lows, highs, domain_low, domain_high)


def seq_over_workload(
    domain_low: float,
    domain_high: float,
    n_queries: int,
    selectivity: float = DEFAULT_SELECTIVITY,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Left-to-right sweep over the domain (pattern ``SeqOver``)."""
    _validate(domain_low, domain_high, n_queries, selectivity)
    domain = domain_high - domain_low
    width = selectivity * domain
    span = max(domain - width, 1e-12)
    # Advance by half a query width per query so consecutive queries overlap,
    # wrapping around once the end of the domain is reached.
    step = width / 2.0 if width > 0 else span / n_queries
    positions = (np.arange(n_queries) * step) % span
    lows, highs = _clamp_ranges(domain_low + positions, width, domain_low, domain_high)
    return _workload("SeqOver", lows, highs, domain_low, domain_high)


def skew_workload(
    domain_low: float,
    domain_high: float,
    n_queries: int,
    selectivity: float = DEFAULT_SELECTIVITY,
    rng: np.random.Generator | None = None,
    hot_region: float = SKEW_HOT_REGION,
    hot_probability: float = SKEW_HOT_PROBABILITY,
) -> Workload:
    """Queries concentrated on a hot region of the domain (pattern ``Skew``)."""
    _validate(domain_low, domain_high, n_queries, selectivity)
    rng = rng or np.random.default_rng(0)
    domain = domain_high - domain_low
    width = selectivity * domain
    hot_width = hot_region * domain
    hot_start = domain_low + (domain - hot_width) / 2.0
    in_hot = rng.random(n_queries) < hot_probability
    hot_positions = hot_start + rng.uniform(0.0, max(hot_width - width, 1e-12), size=n_queries)
    cold_positions = domain_low + rng.uniform(0.0, max(domain - width, 1e-12), size=n_queries)
    lows = np.where(in_hot, hot_positions, cold_positions)
    lows, highs = _clamp_ranges(lows, width, domain_low, domain_high)
    return _workload(
        "Skew", lows, highs, domain_low, domain_high, hot_region=hot_region
    )


def periodic_workload(
    domain_low: float,
    domain_high: float,
    n_queries: int,
    selectivity: float = DEFAULT_SELECTIVITY,
    rng: np.random.Generator | None = None,
    period: int = 10,
) -> Workload:
    """Query position advances by ``domain / period`` each query (``Periodic``)."""
    _validate(domain_low, domain_high, n_queries, selectivity)
    domain = domain_high - domain_low
    width = selectivity * domain
    span = max(domain - width, 1e-12)
    stride = span / period
    positions = (np.arange(n_queries) * stride) % span
    lows, highs = _clamp_ranges(domain_low + positions, width, domain_low, domain_high)
    return _workload("Periodic", lows, highs, domain_low, domain_high, period=period)


def zoom_in_workload(
    domain_low: float,
    domain_high: float,
    n_queries: int,
    selectivity: float = DEFAULT_SELECTIVITY,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Progressively narrowing queries towards the domain centre (``ZoomIn``)."""
    _validate(domain_low, domain_high, n_queries, selectivity)
    domain = domain_high - domain_low
    centre = domain_low + domain / 2.0
    # Shrink the half-width geometrically from the full domain down to the
    # target selectivity width.
    start_half = domain / 2.0
    end_half = max(selectivity * domain / 2.0, domain * 1e-6)
    factors = np.linspace(0.0, 1.0, n_queries)
    half_widths = start_half * (end_half / start_half) ** factors
    lows = centre - half_widths
    highs = centre + half_widths
    return _workload("ZoomIn", lows, highs, domain_low, domain_high)


def zoom_in_alternate_workload(
    domain_low: float,
    domain_high: float,
    n_queries: int,
    selectivity: float = DEFAULT_SELECTIVITY,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Alternate zooming into the two halves of the domain (``ZoomInAlt``)."""
    _validate(domain_low, domain_high, n_queries, selectivity)
    domain = domain_high - domain_low
    width = selectivity * domain
    centres = (
        domain_low + domain * 0.25,
        domain_low + domain * 0.75,
    )
    lows: List[float] = []
    highs: List[float] = []
    n_steps = (n_queries + 1) // 2
    start_half = domain / 4.0
    end_half = max(width / 2.0, domain * 1e-6)
    factors = np.linspace(0.0, 1.0, max(n_steps, 2))
    half_widths = start_half * (end_half / start_half) ** factors
    for step in range(n_queries):
        centre = centres[step % 2]
        half = half_widths[min(step // 2, len(half_widths) - 1)]
        lows.append(max(domain_low, centre - half))
        highs.append(min(domain_high, centre + half))
    return _workload("ZoomInAlt", np.array(lows), np.array(highs), domain_low, domain_high)


def zoom_out_alternate_workload(
    domain_low: float,
    domain_high: float,
    n_queries: int,
    selectivity: float = DEFAULT_SELECTIVITY,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Alternate widening queries in the two halves of the domain (``ZoomOutAlt``)."""
    _validate(domain_low, domain_high, n_queries, selectivity)
    domain = domain_high - domain_low
    width = selectivity * domain
    centres = (
        domain_low + domain * 0.25,
        domain_low + domain * 0.75,
    )
    lows: List[float] = []
    highs: List[float] = []
    n_steps = (n_queries + 1) // 2
    start_half = max(width / 2.0, domain * 1e-6)
    end_half = domain / 4.0
    factors = np.linspace(0.0, 1.0, max(n_steps, 2))
    half_widths = start_half * (end_half / start_half) ** factors
    for step in range(n_queries):
        centre = centres[step % 2]
        half = half_widths[min(step // 2, len(half_widths) - 1)]
        lows.append(max(domain_low, centre - half))
        highs.append(min(domain_high, centre + half))
    return _workload("ZoomOutAlt", np.array(lows), np.array(highs), domain_low, domain_high)


def seq_zoom_in_workload(
    domain_low: float,
    domain_high: float,
    n_queries: int,
    selectivity: float = DEFAULT_SELECTIVITY,
    rng: np.random.Generator | None = None,
    n_sections: int = 10,
) -> Workload:
    """Short zoom-ins performed section by section (``SeqZoomIn``)."""
    _validate(domain_low, domain_high, n_queries, selectivity)
    domain = domain_high - domain_low
    width = selectivity * domain
    section_width = domain / n_sections
    queries_per_section = max(1, n_queries // n_sections)
    lows: List[float] = []
    highs: List[float] = []
    for query_number in range(n_queries):
        section = (query_number // queries_per_section) % n_sections
        step = query_number % queries_per_section
        section_low = domain_low + section * section_width
        centre = section_low + section_width / 2.0
        start_half = section_width / 2.0
        end_half = max(width / 2.0, domain * 1e-6)
        if queries_per_section > 1:
            factor = step / (queries_per_section - 1)
        else:
            factor = 1.0
        half = start_half * (end_half / start_half) ** factor if end_half < start_half else start_half
        lows.append(max(domain_low, centre - half))
        highs.append(min(domain_high, centre + half))
    return _workload(
        "SeqZoomIn", np.array(lows), np.array(highs), domain_low, domain_high,
        n_sections=n_sections,
    )


def mixed_read_write_workload(
    domain_low: float,
    domain_high: float,
    n_queries: int,
    selectivity: float = DEFAULT_SELECTIVITY,
    rng: np.random.Generator | None = None,
    write_ratio: float = 0.1,
    base_pattern: str = "Random",
    insert_batch: int = 8,
    write_selectivity: float = 0.001,
) -> Workload:
    """Reads from ``base_pattern`` interleaved with writes (``MixedReadWrite``).

    ``n_queries`` is the number of *reads*; on top of them,
    ``write_ratio / (1 - write_ratio)`` writes per read are shuffled into
    the operation stream so the overall mix has the requested write
    fraction.  Writes rotate through the three kinds:

    * **insert** — ``insert_batch`` fresh values drawn uniformly from the
      domain;
    * **delete** — a value range of ``write_selectivity`` of the domain;
    * **update** — the same narrow range rewritten to a random domain value.

    The resulting :class:`~repro.workloads.workload.Workload` carries the
    full interleaving in ``operations`` while ``predicates`` stays the
    read-only view every existing consumer expects.
    """
    _validate(domain_low, domain_high, n_queries, selectivity)
    if not 0.0 <= write_ratio < 1.0:
        raise WorkloadError(f"write_ratio must be in [0, 1), got {write_ratio}")
    rng = rng or np.random.default_rng(0)
    reads = SYNTHETIC_PATTERNS[base_pattern](
        domain_low, domain_high, n_queries, selectivity, rng
    )
    n_writes = int(round(n_queries * write_ratio / (1.0 - write_ratio)))
    domain = domain_high - domain_low
    write_width = max(write_selectivity * domain, 1e-9)
    writes: List[WriteOp] = []
    for write_number in range(n_writes):
        kind = write_number % 3
        if kind == 0:
            # Integral values keep the inserts valid for int64 columns
            # (non-integral floats are rejected by the safe-cast guard)
            # while remaining exact on float columns.
            values = np.floor(domain_low + rng.uniform(0.0, domain, size=insert_batch))
            writes.append(WriteOp("insert", values=tuple(values.tolist())))
        else:
            start = domain_low + rng.uniform(0.0, max(domain - write_width, 1e-9))
            if kind == 1:
                writes.append(WriteOp("delete", low=start, high=start + write_width))
            else:
                target = float(np.floor(domain_low + rng.uniform(0.0, domain)))
                writes.append(
                    WriteOp(
                        "update", low=start, high=start + write_width, value=target
                    )
                )
    operations: List[object] = list(reads.predicates) + list(writes)
    order = rng.permutation(len(operations))
    operations = [operations[position] for position in order]
    predicates = [op for op in operations if not isinstance(op, WriteOp)]
    return Workload(
        name="MixedReadWrite",
        predicates=predicates,
        domain_low=domain_low,
        domain_high=domain_high,
        metadata={
            "write_ratio": write_ratio,
            "base_pattern": base_pattern,
            "n_writes": n_writes,
        },
        operations=operations,
    )


# ----------------------------------------------------------------------
# Registry and helpers
# ----------------------------------------------------------------------
PatternGenerator = Callable[..., Workload]

#: All synthetic range-query patterns by name, in the order used by the
#: paper's result tables.
SYNTHETIC_PATTERNS: Dict[str, PatternGenerator] = {
    "SeqOver": seq_over_workload,
    "ZoomOutAlt": zoom_out_alternate_workload,
    "Skew": skew_workload,
    "Random": random_workload,
    "SeqZoomIn": seq_zoom_in_workload,
    "Periodic": periodic_workload,
    "ZoomInAlt": zoom_in_alternate_workload,
    "ZoomIn": zoom_in_workload,
}

#: Read/write patterns of the mutable substrate, kept out of
#: :data:`SYNTHETIC_PATTERNS` so the paper's read-only Figure 6 sweeps are
#: untouched; :func:`generate_pattern` resolves both registries.
MIXED_PATTERNS: Dict[str, PatternGenerator] = {
    "MixedReadWrite": mixed_read_write_workload,
}

#: Patterns used for the point-query experiments (the paper omits the
#: zoom-in patterns whose ranges shrink by construction).
POINT_QUERY_PATTERNS = (
    "SeqOver",
    "ZoomOutAlt",
    "Skew",
    "Random",
    "Periodic",
    "ZoomInAlt",
)


def generate_pattern(
    name: str,
    domain_low: float,
    domain_high: float,
    n_queries: int,
    selectivity: float = DEFAULT_SELECTIVITY,
    rng: np.random.Generator | None = None,
    point_queries: bool = False,
) -> Workload:
    """Generate a named pattern, optionally converted to point queries."""
    generator = SYNTHETIC_PATTERNS.get(name) or MIXED_PATTERNS.get(name)
    if generator is None:
        available = sorted(SYNTHETIC_PATTERNS) + sorted(MIXED_PATTERNS)
        raise WorkloadError(
            f"unknown workload pattern {name!r}; available: {available}"
        ) from None
    workload = generator(domain_low, domain_high, n_queries, selectivity, rng)
    if point_queries:
        if workload.is_mixed:
            raise WorkloadError(
                f"pattern {name!r} interleaves writes and cannot be converted "
                "to point queries"
            )
        workload = to_point_queries(workload)
    return workload


def to_point_queries(workload: Workload) -> Workload:
    """Replace every range with a point query at its centre."""
    centres = [
        round((predicate.low + predicate.high) / 2.0) for predicate in workload.predicates
    ]
    return Workload.from_bounds(
        workload.name,
        centres,
        centres,
        workload.domain_low,
        workload.domain_high,
        point_queries=True,
        metadata=dict(workload.metadata),
    )
