"""Synthetic data distributions (Section 4.1 of the paper).

Two distributions are used by the synthetic evaluation:

* a uniform distribution of **unique** integers covering the domain
  ``[0, n)``;
* a skewed distribution of non-unique integers where 90% of the data is
  concentrated in the middle of the ``[0, n)`` domain.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

#: Fraction of the skewed data set concentrated in the hot middle region.
SKEW_HOT_FRACTION = 0.9

#: Width of the hot middle region as a fraction of the domain.
SKEW_HOT_WIDTH = 0.1


def uniform_data(
    n_elements: int,
    domain: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Uniformly distributed integers over ``[0, domain)``.

    When ``domain`` equals ``n_elements`` (the paper's setting) the values
    are a random permutation of ``0 .. n-1`` — unique, uniformly distributed
    integers.  With a larger domain the values are sampled with replacement.
    """
    if n_elements <= 0:
        raise WorkloadError(f"n_elements must be positive, got {n_elements}")
    rng = rng or np.random.default_rng(0)
    domain = n_elements if domain is None else int(domain)
    if domain <= 0:
        raise WorkloadError(f"domain must be positive, got {domain}")
    if domain == n_elements:
        return rng.permutation(n_elements).astype(np.int64)
    return rng.integers(0, domain, size=n_elements, dtype=np.int64)


def skewed_data(
    n_elements: int,
    domain: int | None = None,
    rng: np.random.Generator | None = None,
    hot_fraction: float = SKEW_HOT_FRACTION,
    hot_width: float = SKEW_HOT_WIDTH,
) -> np.ndarray:
    """Skewed integers: ``hot_fraction`` of the data in the middle of the domain.

    Reproduces the paper's skewed data set, where 90% of the (non-unique)
    values are concentrated in the middle of ``[0, domain)`` and the
    remaining 10% are uniform over the whole domain.
    """
    if n_elements <= 0:
        raise WorkloadError(f"n_elements must be positive, got {n_elements}")
    if not 0.0 < hot_fraction <= 1.0:
        raise WorkloadError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    if not 0.0 < hot_width <= 1.0:
        raise WorkloadError(f"hot_width must be in (0, 1], got {hot_width}")
    rng = rng or np.random.default_rng(0)
    domain = n_elements if domain is None else int(domain)
    n_hot = int(round(n_elements * hot_fraction))
    n_cold = n_elements - n_hot
    hot_low = int(domain * (0.5 - hot_width / 2.0))
    hot_high = max(hot_low + 1, int(domain * (0.5 + hot_width / 2.0)))
    hot = rng.integers(hot_low, hot_high, size=n_hot, dtype=np.int64)
    cold = rng.integers(0, domain, size=n_cold, dtype=np.int64)
    data = np.concatenate([hot, cold])
    rng.shuffle(data)
    return data
