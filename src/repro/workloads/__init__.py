"""Workload and data-set generators used by the paper's evaluation.

* :mod:`repro.workloads.distributions` — the synthetic data distributions
  (uniform random unique integers, and the skewed distribution with 90% of
  the data concentrated in the middle of the domain).
* :mod:`repro.workloads.patterns` — the eight synthetic query patterns of
  Figure 6 (taken from Halim et al.) plus their point-query variants, and
  the ``MixedReadWrite`` pattern interleaving delta-store writes at a
  configurable write ratio.
* :mod:`repro.workloads.skyserver` — a SkyServer-like data set and query log
  reproducing the *shape* of Figure 5 (multi-modal value distribution,
  spatially clustered and drifting query ranges).
* :mod:`repro.workloads.workload` — the :class:`Workload` container shared by
  the execution engine and the benchmarks.
* :mod:`repro.workloads.batch` — adapters turning workloads into the
  vectorized predicate batches the batch execution engine consumes.
"""

from repro.workloads.batch import conjunctive_queries, iter_batches, predicate_vector
from repro.workloads.distributions import skewed_data, uniform_data
from repro.workloads.patterns import (
    MIXED_PATTERNS,
    SYNTHETIC_PATTERNS,
    generate_pattern,
    mixed_read_write_workload,
    periodic_workload,
    random_workload,
    seq_over_workload,
    seq_zoom_in_workload,
    skew_workload,
    zoom_in_alternate_workload,
    zoom_in_workload,
    zoom_out_alternate_workload,
)
from repro.workloads.skyserver import skyserver_data, skyserver_workload
from repro.workloads.workload import Workload, WriteOp

__all__ = [
    "MIXED_PATTERNS",
    "SYNTHETIC_PATTERNS",
    "Workload",
    "WriteOp",
    "conjunctive_queries",
    "generate_pattern",
    "iter_batches",
    "mixed_read_write_workload",
    "predicate_vector",
    "periodic_workload",
    "random_workload",
    "seq_over_workload",
    "seq_zoom_in_workload",
    "skew_workload",
    "skewed_data",
    "skyserver_data",
    "skyserver_workload",
    "uniform_data",
    "zoom_in_alternate_workload",
    "zoom_in_workload",
    "zoom_out_alternate_workload",
]
