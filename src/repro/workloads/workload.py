"""The :class:`Workload` container: an ordered sequence of predicates.

A workload couples the query sequence with the metadata the experiment
drivers need (its name, the domain it was generated for, and whether it
consists of point queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

import numpy as np

from repro.core.query import Predicate
from repro.errors import WorkloadError


@dataclass
class Workload:
    """An ordered sequence of query predicates.

    Attributes
    ----------
    name:
        Pattern name (e.g. ``"SeqOver"``, ``"SkyServer"``).
    predicates:
        The queries, in execution order.
    domain_low, domain_high:
        Value domain the workload was generated against.
    point_queries:
        Whether every predicate is a point query.
    """

    name: str
    predicates: List[Predicate]
    domain_low: float = 0.0
    domain_high: float = 1.0
    point_queries: bool = False
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.predicates:
            raise WorkloadError(f"workload {self.name!r} has no queries")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self.predicates)

    def __getitem__(self, index: int) -> Predicate:
        return self.predicates[index]

    # ------------------------------------------------------------------
    def selectivities(self) -> np.ndarray:
        """Per-query selectivity estimates against the workload domain."""
        return np.array(
            [p.selectivity(self.domain_low, self.domain_high) for p in self.predicates]
        )

    def mean_selectivity(self) -> float:
        """Average selectivity of the workload."""
        return float(self.selectivities().mean())

    def head(self, n_queries: int) -> "Workload":
        """A new workload containing only the first ``n_queries`` queries."""
        return Workload(
            name=self.name,
            predicates=list(self.predicates[:n_queries]),
            domain_low=self.domain_low,
            domain_high=self.domain_high,
            point_queries=self.point_queries,
            metadata=dict(self.metadata),
        )

    @classmethod
    def from_bounds(
        cls,
        name: str,
        lows: Sequence[float],
        highs: Sequence[float],
        domain_low: float,
        domain_high: float,
        point_queries: bool = False,
        metadata: dict | None = None,
    ) -> "Workload":
        """Build a workload from parallel sequences of bounds."""
        if len(lows) != len(highs):
            raise WorkloadError("lows and highs must have the same length")
        predicates = [Predicate(float(lo), float(hi)) for lo, hi in zip(lows, highs)]
        return cls(
            name=name,
            predicates=predicates,
            domain_low=domain_low,
            domain_high=domain_high,
            point_queries=point_queries,
            metadata=metadata or {},
        )
