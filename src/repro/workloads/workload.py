"""The :class:`Workload` container: an ordered sequence of operations.

A workload couples the query sequence with the metadata the experiment
drivers need (its name, the domain it was generated for, and whether it
consists of point queries).

Since the mutable column substrate, a workload may also interleave
**writes**: a :class:`WriteOp` describes an insert, a value-range delete,
or a value-range update, and :attr:`Workload.operations` is the full
ordered mix of predicates and writes.  Read-only consumers are untouched —
iteration and ``predicates`` still expose only the queries — while
update-aware drivers (``session.execute_operations``, the update-throughput
benchmark, the mutation oracle) replay :attr:`Workload.operations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.query import Predicate
from repro.errors import WorkloadError


@dataclass(frozen=True)
class WriteOp:
    """One write of a mixed read/write workload.

    Attributes
    ----------
    kind:
        ``"insert"``, ``"delete"`` or ``"update"``.
    values:
        The values to insert (``insert`` only).
    low, high:
        Inclusive value range selecting the victim rows (``delete`` and
        ``update``).
    value:
        The replacement value (``update`` only).
    """

    kind: str
    values: tuple = ()
    low: float = 0.0
    high: float = 0.0
    value: float = 0.0

    _KINDS = ("insert", "delete", "update")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise WorkloadError(
                f"unknown write kind {self.kind!r}; expected one of {self._KINDS}"
            )

    def apply(self, session, column_name: str) -> None:
        """Apply this write to ``session``'s table."""
        if self.kind == "insert":
            session.insert(list(self.values), column_name=column_name)
        elif self.kind == "delete":
            session.delete(column_name, self.low, self.high)
        else:
            session.update(column_name, self.low, self.high, self.value)


@dataclass
class Workload:
    """An ordered sequence of query predicates.

    Attributes
    ----------
    name:
        Pattern name (e.g. ``"SeqOver"``, ``"SkyServer"``).
    predicates:
        The queries, in execution order.
    domain_low, domain_high:
        Value domain the workload was generated against.
    point_queries:
        Whether every predicate is a point query.
    """

    name: str
    predicates: List[Predicate]
    domain_low: float = 0.0
    domain_high: float = 1.0
    point_queries: bool = False
    metadata: dict = field(default_factory=dict)
    #: Full ordered mix of :class:`Predicate` and :class:`WriteOp` entries
    #: for read/write workloads; ``None`` for read-only workloads.
    operations: Optional[List[object]] = None

    def __post_init__(self) -> None:
        if not self.predicates:
            raise WorkloadError(f"workload {self.name!r} has no queries")
        if self.operations is not None:
            reads = [op for op in self.operations if isinstance(op, Predicate)]
            if reads != self.predicates:
                raise WorkloadError(
                    f"workload {self.name!r}: operations and predicates disagree "
                    "(the predicates must be exactly the reads of the operation mix, "
                    "in order)"
                )

    # ------------------------------------------------------------------
    @property
    def is_mixed(self) -> bool:
        """Whether the workload interleaves writes with its queries."""
        return self.operations is not None and any(
            isinstance(op, WriteOp) for op in self.operations
        )

    @property
    def writes(self) -> List["WriteOp"]:
        """The write operations of the mix (empty for read-only workloads)."""
        if self.operations is None:
            return []
        return [op for op in self.operations if isinstance(op, WriteOp)]

    def write_ratio(self) -> float:
        """Fraction of operations that are writes."""
        if self.operations is None:
            return 0.0
        return len(self.writes) / len(self.operations)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self.predicates)

    def __getitem__(self, index: int) -> Predicate:
        return self.predicates[index]

    # ------------------------------------------------------------------
    def selectivities(self) -> np.ndarray:
        """Per-query selectivity estimates against the workload domain."""
        return np.array(
            [p.selectivity(self.domain_low, self.domain_high) for p in self.predicates]
        )

    def mean_selectivity(self) -> float:
        """Average selectivity of the workload."""
        return float(self.selectivities().mean())

    def head(self, n_queries: int) -> "Workload":
        """A new workload containing only the first ``n_queries`` queries.

        For a mixed read/write workload the operation mix is truncated at
        the ``n_queries``-th read, keeping every write interleaved before it
        — a truncated smoke run replays the same semantics, just shorter.
        """
        operations = None
        if self.operations is not None:
            operations = []
            reads = 0
            for operation in self.operations:
                if isinstance(operation, Predicate):
                    if reads >= n_queries:
                        break
                    reads += 1
                operations.append(operation)
        return Workload(
            name=self.name,
            predicates=list(self.predicates[:n_queries]),
            domain_low=self.domain_low,
            domain_high=self.domain_high,
            point_queries=self.point_queries,
            metadata=dict(self.metadata),
            operations=operations,
        )

    @classmethod
    def from_bounds(
        cls,
        name: str,
        lows: Sequence[float],
        highs: Sequence[float],
        domain_low: float,
        domain_high: float,
        point_queries: bool = False,
        metadata: dict | None = None,
    ) -> "Workload":
        """Build a workload from parallel sequences of bounds."""
        if len(lows) != len(highs):
            raise WorkloadError("lows and highs must have the same length")
        predicates = [Predicate(float(lo), float(hi)) for lo, hi in zip(lows, highs)]
        return cls(
            name=name,
            predicates=predicates,
            domain_low=domain_low,
            domain_high=domain_high,
            point_queries=point_queries,
            metadata=metadata or {},
        )
