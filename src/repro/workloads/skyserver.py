"""A SkyServer-like data set and query log (Figure 5 of the paper).

The paper's real-world experiment uses the Right Ascension column of the
Sloan Digital Sky Survey's ``PhotoObjAll`` table (~600 million tuples) and
~160,000 range queries from the public SkyServer query log.  Neither the data
nor the log can be shipped with this repository, so this module synthesises a
scaled-down stand-in that reproduces the two properties the experiment relies
on (documented as a substitution in DESIGN.md):

* **Data distribution** (Figure 5a): right ascension is not uniform — the
  survey footprint concentrates observations in a number of dense sky
  regions.  We generate a mixture of Gaussian clusters over the ``[0, 360)``
  degree domain (scaled to integers) plus a uniform background.
* **Workload drift** (Figure 5b): the query log focuses on one region of the
  sky for a stretch of consecutive queries, then jumps to a different
  region.  We generate segments of queries whose centres random-walk inside
  a region before jumping to the next region.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.workload import Workload

#: The right-ascension domain in degrees, scaled by this factor to integers.
DEGREE_SCALE = 1_000_000

#: Default number of dense sky regions in the synthetic data distribution.
DEFAULT_CLUSTERS = 12

#: Fraction of tuples belonging to the uniform background.
BACKGROUND_FRACTION = 0.15


def skyserver_data(
    n_elements: int,
    n_clusters: int = DEFAULT_CLUSTERS,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Synthesise a SkyServer-like right-ascension column.

    Returns integers in ``[0, 360 * DEGREE_SCALE)`` whose distribution is a
    mixture of dense clusters and a uniform background, mimicking Figure 5a.
    """
    if n_elements <= 0:
        raise WorkloadError(f"n_elements must be positive, got {n_elements}")
    if n_clusters <= 0:
        raise WorkloadError(f"n_clusters must be positive, got {n_clusters}")
    rng = rng or np.random.default_rng(0)
    domain = 360.0
    n_background = int(n_elements * BACKGROUND_FRACTION)
    n_clustered = n_elements - n_background

    centres = rng.uniform(0.0, domain, size=n_clusters)
    widths = rng.uniform(2.0, 15.0, size=n_clusters)
    weights = rng.dirichlet(np.ones(n_clusters) * 2.0)
    assignments = rng.choice(n_clusters, size=n_clustered, p=weights)
    clustered = rng.normal(centres[assignments], widths[assignments])
    background = rng.uniform(0.0, domain, size=n_background)

    degrees = np.concatenate([clustered, background])
    degrees = np.mod(degrees, domain)
    rng.shuffle(degrees)
    return (degrees * DEGREE_SCALE).astype(np.int64)


def skyserver_workload(
    n_queries: int,
    domain_low: float = 0.0,
    domain_high: float = 360.0 * DEGREE_SCALE,
    segment_length: int = 50,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Synthesise a SkyServer-like range-query log.

    The query centres stay inside one sky region for ``segment_length``
    consecutive queries (drifting with a small random walk), then jump to a
    new region — reproducing the "focus on specific sections of the domain
    before moving to different areas" behaviour of Figure 5b.  Query widths
    are log-normally distributed, so most queries are narrow with occasional
    wide sweeps.
    """
    if n_queries <= 0:
        raise WorkloadError(f"n_queries must be positive, got {n_queries}")
    if segment_length <= 0:
        raise WorkloadError(f"segment_length must be positive, got {segment_length}")
    if domain_high <= domain_low:
        raise WorkloadError("domain_high must exceed domain_low")
    rng = rng or np.random.default_rng(0)
    domain = domain_high - domain_low

    lows = np.empty(n_queries)
    highs = np.empty(n_queries)
    centre = domain_low + rng.uniform(0.1, 0.9) * domain
    for query_number in range(n_queries):
        if query_number % segment_length == 0:
            # Jump to a new region of the sky.
            centre = domain_low + rng.uniform(0.05, 0.95) * domain
            drift_scale = domain * 0.002
        # Small random walk within the current region.
        centre += rng.normal(0.0, drift_scale)
        centre = float(np.clip(centre, domain_low, domain_high))
        width = float(np.exp(rng.normal(np.log(domain * 0.01), 0.8)))
        width = float(np.clip(width, domain * 1e-5, domain * 0.3))
        low = max(domain_low, centre - width / 2.0)
        high = min(domain_high, centre + width / 2.0)
        if high <= low:
            high = min(domain_high, low + domain * 1e-6)
        lows[query_number] = low
        highs[query_number] = high
    return Workload.from_bounds(
        "SkyServer",
        lows,
        highs,
        domain_low,
        domain_high,
        metadata={"segment_length": segment_length},
    )


def skyserver_benchmark(
    n_elements: int,
    n_queries: int,
    rng: np.random.Generator | None = None,
) -> Tuple[np.ndarray, Workload]:
    """Convenience helper: matching SkyServer-like data and query log."""
    rng = rng or np.random.default_rng(0)
    data = skyserver_data(n_elements, rng=rng)
    workload = skyserver_workload(n_queries, rng=rng)
    return data, workload
