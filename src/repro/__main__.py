"""Operate a persisted progressive-indexing database from the shell.

::

    python -m repro inspect <dir>           # catalog, WAL size, index phases
    python -m repro demo [--dir DIR]        # write -> crashless restart -> warm resume
    python -m repro bench [--rows N] [--dir DIR]   # cold rebuild vs warm resume
    python -m repro top <endpoint>          # live telemetry from a running server

``inspect`` prints the durability status of an existing database directory:
the catalog, per-column base/visible rows, WAL size and pending operations,
the checkpoint watermark, and every index's life-cycle phase.  ``demo``
walks the full durability story in a scratch directory; ``bench`` runs the
restart-warmup measurement at a configurable scale (see
``benchmarks/bench_restart_warmup.py`` for the CI-gated version).  ``top``
attaches to a live :mod:`repro.serve` endpoint (Unix-socket path or
``host:port``) and periodically renders the server's metrics snapshot —
query rates, index phases, cache hit ratio, scheduler fairness — like a
tiny ``top(1)`` for the engine.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time

import numpy as np


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.persist.database import Database

    db = Database.open(args.directory)
    try:
        status = db.status()
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        print(f"database   {status['directory']}")
        print(f"table      {status['table']}  ({status['rows']} visible rows)")
        for name, column in status["columns"].items():
            mapped = "mmap" if column["mapped"] else "in-memory"
            print(
                f"column     {name}: {column['dtype']}, base={column['base_rows']}, "
                f"visible={column['visible_rows']}, writes@v{column['write_version']} ({mapped})"
            )
        wal = status["wal"]
        print(
            f"wal        {wal['size_bytes']} bytes, next op {wal['next_op_id']}, "
            f"{wal['pending_ops']} uncommitted op(s)"
        )
        checkpoint = status["checkpoint"]
        if checkpoint is None:
            print("checkpoint none")
        else:
            print(
                f"checkpoint op_id={checkpoint['op_id']}, "
                f"indexes: {', '.join(checkpoint['indexes']) or 'none'}"
            )
        for name, entry in status["indexes"].items():
            print(
                f"index      {name}: {entry['algorithm']} phase={entry['phase']} "
                f"queries={entry['queries_executed']} budget={entry['budget']}"
            )
        return 0
    finally:
        db.close(checkpoint=False)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.persist.database import Database

    directory = args.directory or tempfile.mkdtemp(prefix="repro-demo-")
    cleanup = args.directory is None
    print(f"demo database at {directory}")
    rng = np.random.default_rng(7)
    data = rng.integers(0, 1_000_000, size=args.rows)

    db = Database.create(directory, {"ra": data})
    db.create_index("ra", method="PQ", budget_fraction=0.2)
    for _ in range(8):
        low = int(rng.integers(0, 900_000))
        db.between("ra", low, low + 50_000)
    db.insert([1_234, 5_678])
    db.delete("ra", 0, 100)
    db.commit()
    phase = db.index_for("ra").phase.value
    print(f"wrote rows, ran 8 queries; index phase before restart: {phase}")
    db.close()  # checkpoint + WAL truncation

    db = Database.open(directory)
    index = db.index_for("ra")
    print(f"reopened: index resumed in phase {index.phase.value} (never raw)")
    result = db.between("ra", 0, 1_000_000)
    column = db.table.column("ra").data
    expected = int(((column >= 0) & (column <= 1_000_000)).sum())
    print(f"full-range count after recovery: {result.count} (oracle {expected})")
    db.close()
    if cleanup:
        shutil.rmtree(directory)
        print("scratch directory removed")
    return 0 if result.count == expected else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.persist.database import Database

    directory = args.directory or tempfile.mkdtemp(prefix="repro-bench-")
    cleanup = args.directory is None
    rng = np.random.default_rng(11)
    data = rng.integers(0, 10_000_000, size=args.rows)
    predicates = [
        (int(low), int(low) + 100_000) for low in rng.integers(0, 9_000_000, size=32)
    ]

    db = Database.create(directory, {"ra": data})
    db.create_index("ra", method=args.method, fixed_delta=1.0)
    db.between("ra", *predicates[0])
    db.close()

    started = time.perf_counter()
    warm = Database.open(directory)
    warm_result = warm.between("ra", *predicates[1])
    warm_seconds = time.perf_counter() - started
    warm_phase = warm.index_for("ra").phase.value
    warm.close(checkpoint=False)

    started = time.perf_counter()
    cold_data = np.array(data)
    cold = Database.create(directory + ".cold", {"ra": cold_data})
    cold.create_index("ra", method=args.method, fixed_delta=1.0)
    cold_result = cold.between("ra", *predicates[1])
    cold_seconds = time.perf_counter() - started
    cold.close(checkpoint=False)
    shutil.rmtree(directory + ".cold")

    report = {
        "rows": args.rows,
        "method": args.method,
        "warm_seconds": warm_seconds,
        "cold_seconds": cold_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "warm_phase": warm_phase,
        "answers_match": bool(warm_result.count == cold_result.count),
    }
    print(json.dumps(report, indent=2))
    if cleanup:
        shutil.rmtree(directory)
    return 0


def _parse_endpoint(endpoint: str):
    """``host:port`` -> tuple, anything else -> Unix-socket path."""
    if ":" in endpoint and not endpoint.startswith("/"):
        host, _, port = endpoint.rpartition(":")
        return (host or "127.0.0.1", int(port))
    return endpoint


def _sum_series(snapshot: dict, name: str, field: str = "value") -> float:
    total = 0.0
    for entry in snapshot.get("series", []):
        if entry["name"] == name:
            total += float(entry.get(field, 0.0))
    return total


def _render_top(status: dict, snapshot: dict, previous, interval: float) -> None:
    # Exact query counts come from the index.queries pull series; the
    # duration histogram samples converged reads and would undercount.
    queries = _sum_series(snapshot, "index.queries")
    rate = ""
    if previous is not None and interval > 0:
        prior = _sum_series(previous, "index.queries")
        rate = f"  ({max(0.0, queries - prior) / interval:,.0f} q/s)"
    print(f"queries    {queries:,.0f}{rate}")

    hits = _sum_series(snapshot, "cache.block.hits")
    misses = _sum_series(snapshot, "cache.block.misses")
    if hits + misses > 0:
        print(
            f"blockcache {hits:,.0f} hits / {misses:,.0f} misses "
            f"({hits / (hits + misses):.1%} hit rate), "
            f"{_sum_series(snapshot, 'cache.block.evictions'):,.0f} evictions"
        )
    spills = _sum_series(snapshot, "scratch.spill.count") + _sum_series(
        snapshot, "delta.spills"
    )
    if spills:
        print(
            f"spills     {spills:,.0f} "
            f"({_sum_series(snapshot, 'scratch.spill.bytes'):,.0f} scratch bytes)"
        )

    wal_bytes = _sum_series(snapshot, "wal.size.bytes")
    commits = _sum_series(snapshot, "wal.commits")
    if commits or wal_bytes:
        print(f"wal        {wal_bytes:,.0f} bytes, {commits:,.0f} commit(s)")

    for entry in sorted(
        snapshot.get("series", []), key=lambda e: str(e.get("labels"))
    ):
        if entry["name"] != "index.queries":
            continue
        labels = entry.get("labels", {})
        column = labels.get("column", "?")
        phase = (status.get("indexes", {}).get(column) or {}).get("phase", "?")
        print(
            f"index      {column}: {labels.get('algorithm', '?')} "
            f"phase={phase} queries={entry['value']:,.0f}"
        )

    admitted = {
        entry.get("labels", {}).get("cls"): entry["value"]
        for entry in snapshot.get("series", [])
        if entry["name"] == "scheduler.admitted"
    }
    scheduler = status.get("scheduler") or {}
    for cls_name, entry in sorted((scheduler.get("classes") or {}).items()):
        print(
            f"class      {cls_name}: tau={entry.get('tau')} "
            f"balance={entry.get('balance', 0.0):.4f} "
            f"admitted={admitted.get(cls_name, 0.0):,.0f}"
        )


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.client import ServiceClient

    address = _parse_endpoint(args.endpoint)
    iterations = 1 if args.once else args.iterations
    previous = None
    tick = 0
    with ServiceClient(address, role="reader", connection_class="admin") as client:
        while True:
            snapshot = client.metrics()
            status = client.status()
            if args.json:
                print(json.dumps({"status": status, "metrics": snapshot}))
            else:
                if tick:
                    print()
                print(f"--- repro top @ {snapshot.get('at', 0.0):.3f} ---")
                if not snapshot.get("enabled", True):
                    print("(metrics registry disabled on the server)")
                _render_top(status, snapshot, previous, args.interval)
            sys.stdout.flush()
            tick += 1
            previous = snapshot
            if iterations and tick >= iterations:
                return 0
            time.sleep(args.interval)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Operate a persisted progressive-indexing database.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    inspect = commands.add_parser("inspect", help="print a database's durability status")
    inspect.add_argument("directory", help="database directory")
    inspect.add_argument("--json", action="store_true", help="emit raw JSON")
    inspect.set_defaults(handler=_cmd_inspect)

    demo = commands.add_parser("demo", help="walk the durability story end to end")
    demo.add_argument("--dir", dest="directory", default=None, help="database directory")
    demo.add_argument("--rows", type=int, default=100_000, help="rows in the demo column")
    demo.set_defaults(handler=_cmd_demo)

    bench = commands.add_parser("bench", help="cold rebuild vs warm checkpoint resume")
    bench.add_argument("--dir", dest="directory", default=None, help="database directory")
    bench.add_argument("--rows", type=int, default=200_000, help="rows in the column")
    bench.add_argument("--method", default="PQ", help="index algorithm acronym")
    bench.set_defaults(handler=_cmd_bench)

    top = commands.add_parser("top", help="live telemetry from a running query server")
    top.add_argument(
        "endpoint", help="server endpoint: Unix-socket path or host:port"
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    top.add_argument(
        "--iterations", type=int, default=0, help="stop after N refreshes (0 = forever)"
    )
    top.add_argument("--once", action="store_true", help="print one snapshot and exit")
    top.add_argument("--json", action="store_true", help="emit raw JSON per refresh")
    top.set_defaults(handler=_cmd_top)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
