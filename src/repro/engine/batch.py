"""Batch query executor: answer a whole workload of predicates at once.

Sequential execution dispatches every predicate through Python
(:meth:`~repro.core.index.BaseIndex.query`), which dominates the cost of
short queries long before the hardware does.  :class:`BatchExecutor` instead
treats the workload as the unit of execution:

1. the per-query indexing budgets of the batch are pooled into one
   :class:`~repro.core.policy.BatchPool`, which is installed into the
   index's :class:`~repro.core.policy.BudgetController` for the duration of
   the batch and drained greedily — the first queries of the batch
   front-load the progressive construction the whole batch is entitled to;
2. queries are dispatched per-query only while the index still has budgeted
   progressive work to do — construction *or* pending delta merges: on a
   mutable column, an index sitting in the ``MERGE`` life-cycle stage keeps
   receiving per-query dispatch, and every such query's merge decision
   drains the same pooled reservoir, so the first queries of a batch
   front-load the delta folding exactly like they front-load construction;
   as soon as the index converges (or the pool is exhausted and the index
   can answer batches read-only), the **entire remainder of the batch** is
   answered by one vectorized ``search_many`` call — NumPy binary searches
   plus prefix-sum differences instead of Python-level dispatch, with the
   remaining unfolded delta corrected vectorized from the overlay's sorted
   buffers;
3. answers are exact at every point of the interleaving, so the batch
   returns results identical to issuing the same queries sequentially —
   including any delta-store writes that landed before the batch.

Multi-column batches (sequences of ``(column_name, predicate)`` pairs) are
grouped per column/index first, executed group by group, and reassembled in
the original submission order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policy import BatchPool
from repro.core.index import BaseIndex
from repro.core.query import PredicateVector, QueryResult, search_sorted_many
from repro.errors import ExperimentError
from repro.storage.column import Column


@dataclass
class BatchResult:
    """The outcome of executing one batch of predicates against one index.

    Attributes
    ----------
    index_name:
        Name of the index (or ``"scan"`` for unindexed columns).
    results:
        Per-query answers, aligned with the submitted batch.
    driven_queries:
        Queries dispatched per-query to drive progressive construction.
    vectorized_queries:
        Queries answered by the vectorized ``search_many`` tail.
    elapsed_seconds:
        Wall-clock time of the batch execution.
    """

    index_name: str
    results: List[QueryResult] = field(default_factory=list)
    driven_queries: int = 0
    vectorized_queries: int = 0
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def counts(self) -> np.ndarray:
        """Per-query match counts."""
        return np.array([result.count for result in self.results], dtype=np.int64)

    def sums(self) -> np.ndarray:
        """Per-query value sums."""
        return np.array([float(result.value_sum) for result in self.results])

    def throughput(self) -> float:
        """Queries answered per second (``inf`` for a zero-length timing)."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return len(self.results) / self.elapsed_seconds


def scan_many(column: Column, lows, highs) -> List[QueryResult]:
    """Batched predicated scans of an unindexed column.

    One shared sort of a scratch copy turns the whole batch into binary
    searches plus prefix-sum differences; answers are identical to per-query
    :meth:`~repro.storage.column.Column.scan_range` calls.  The sort only
    pays off when the batch amortizes its ``O(N log N)`` cost, so batches
    smaller than roughly ``log2(N)`` queries use plain predicated scans.
    """
    lows = np.asarray(lows)
    highs = np.asarray(highs)
    if lows.size < max(4, int(np.log2(max(len(column), 2)))):
        return [
            QueryResult(*column.scan_range(low, high))
            for low, high in zip(lows.tolist(), highs.tolist())
        ]
    scratch = column.copy_data()
    scratch.sort()
    sums, counts, _ = search_sorted_many(scratch, lows, highs)
    return [QueryResult(value_sum, int(count)) for value_sum, count in zip(sums, counts)]


class BatchExecutor:
    """Executes batches of range predicates against progressive indexes.

    Parameters
    ----------
    per_query_seconds, scan_fraction:
        Sizing of the pooled :class:`~repro.core.policy.BatchPool` (one
        query's worth of indexing budget).  When both are omitted the pool is
        derived from the index's own per-query budget policy via
        :meth:`BatchPool.for_index`, so batch execution spends the same
        total indexing time the sequential loop would have.
    verify:
        Cross-check every answer against a predicated scan of the base
        column (slow; intended for tests).
    """

    def __init__(
        self,
        per_query_seconds: Optional[float] = None,
        scan_fraction: Optional[float] = None,
        verify: bool = False,
    ) -> None:
        if per_query_seconds is not None and scan_fraction is not None:
            raise ExperimentError(
                "provide at most one of per_query_seconds or scan_fraction"
            )
        self.per_query_seconds = per_query_seconds
        self.scan_fraction = scan_fraction
        self.verify = bool(verify)

    # ------------------------------------------------------------------
    def _batch_budget(self, index: BaseIndex, n_queries: int) -> BatchPool:
        if self.per_query_seconds is not None:
            budget = BatchPool(n_queries, per_query_seconds=self.per_query_seconds)
        elif self.scan_fraction is not None:
            budget = BatchPool(n_queries, scan_fraction=self.scan_fraction)
        else:
            budget = BatchPool.for_index(index, n_queries)
        # Resolve fraction-based pools immediately: indexes only call
        # register_scan_time() on their very first query, which may long have
        # passed when a batch arrives mid-workload.
        budget.register_scan_time(index.cost_model.scan_time(len(index.column)))
        return budget

    def execute(self, index: BaseIndex, queries) -> BatchResult:
        """Execute ``queries`` (a workload, sequence, or vector) against ``index``.

        Returns a :class:`BatchResult` whose ``results`` are identical to the
        answers a sequential per-query loop would have produced.
        """
        vector = PredicateVector.coerce(queries)
        n_queries = len(vector)
        batch = BatchResult(index_name=index.name, results=[None] * n_queries)
        if n_queries == 0:
            return batch
        # Composite indexes (sharded execution) own their batch strategy:
        # they route each query, sub-batch per shard and run the standard
        # pooled machinery *inside* every shard, so the per-query policy
        # swap below would be meaningless (and unsupported) at this level.
        whole_batch = getattr(index, "execute_batch", None)
        if whole_batch is not None:
            started = time.perf_counter()
            batch.results = list(whole_batch(vector.lows, vector.highs))
            batch.vectorized_queries = n_queries
            batch.elapsed_seconds = time.perf_counter() - started
            if self.verify:
                self._verify(index, vector, batch.results)
            return batch
        pool = self._batch_budget(index, n_queries)
        # swap_budget routes through the index's budget controller, which
        # re-registers the known scan time against whichever policy comes
        # in — so a per-query policy restored after the batch (or a pool
        # installed mid-workload) is always resolved.
        previous_budget = index.swap_budget(pool)
        started = time.perf_counter()
        try:
            position = 0
            while position < n_queries:
                # Per-query dispatch continues while budgeted work remains:
                # construction (not yet converged) or pending delta merges
                # (converged, but a trigger-crossing write burst is waiting
                # — `has_pending_merge`).  Both drain the pooled reservoir,
                # front-loading convergence *and* folding before the
                # vectorized tail.
                done_indexing = index.converged and not index.has_pending_merge()
                if index.eager_batch or done_indexing or pool.exhausted:
                    answered = index.search_many(
                        vector.lows[position:], vector.highs[position:]
                    )
                    if answered is not None:
                        sums, counts = answered
                        for offset in range(n_queries - position):
                            batch.results[position + offset] = QueryResult(
                                sums[offset], int(counts[offset])
                            )
                        batch.vectorized_queries = n_queries - position
                        position = n_queries
                        break
                batch.results[position] = index.query(vector[position])
                batch.driven_queries += 1
                position += 1
        finally:
            index.swap_budget(previous_budget)
        batch.elapsed_seconds = time.perf_counter() - started
        if self.verify:
            self._verify(index, vector, batch.results)
        return batch

    def execute_grouped(
        self,
        indexes: Dict[str, Optional[BaseIndex]],
        queries: Sequence[Tuple[str, object]],
        columns: Dict[str, Column],
    ) -> List[QueryResult]:
        """Execute ``(column_name, predicate)`` pairs grouped per column.

        Queries are grouped by column (preserving submission order inside
        each group), each group runs through :meth:`execute` against the
        column's index — or a batched scan when the column is unindexed —
        and the answers are reassembled in the original order.
        """
        groups: Dict[str, List[int]] = {}
        for query_number, (column_name, _) in enumerate(queries):
            groups.setdefault(column_name, []).append(query_number)
        results: List[Optional[QueryResult]] = [None] * len(queries)
        for column_name, query_numbers in groups.items():
            predicates = [queries[number][1] for number in query_numbers]
            index = indexes.get(column_name)
            if index is not None:
                answers = self.execute(index, predicates).results
            else:
                vector = PredicateVector.from_predicates(predicates)
                answers = scan_many(columns[column_name], vector.lows, vector.highs)
            for number, answer in zip(query_numbers, answers):
                results[number] = answer
        return results

    # ------------------------------------------------------------------
    @staticmethod
    def _verify(index: BaseIndex, vector: PredicateVector, results: Sequence[QueryResult]) -> None:
        column = index.column
        for query_number, (predicate, answer) in enumerate(zip(vector, results), start=1):
            expected_sum, expected_count = column.scan_range(predicate.low, predicate.high)
            reference = QueryResult(expected_sum, expected_count)
            if not reference.approximately_equals(answer):
                raise ExperimentError(
                    f"{index.name} returned an incorrect batch answer for query "
                    f"{query_number}: got (sum={answer.value_sum}, count={answer.count}), "
                    f"expected (sum={reference.value_sum}, count={reference.count})"
                )
