"""Execution engine: run workloads against indexes and collect metrics.

* :mod:`repro.engine.registry` — name → index class registry used by the
  experiment drivers and the high-level session API.
* :mod:`repro.engine.executor` — executes a workload against an index,
  timing every query and recording the per-query statistics the experiments
  need.
* :mod:`repro.engine.batch` — the batch query executor: answers a whole
  vector of predicates at once, interleaving progressive refinement across
  the batch under a pooled budget and finishing with vectorized lookups.
* :mod:`repro.engine.metrics` — the paper's evaluation metrics (first-query
  cost, pay-off, convergence, robustness, cumulative time).
* :mod:`repro.engine.decision_tree` — the algorithm recommendation of
  Figure 11.
* :mod:`repro.engine.session` — a small user-facing API for indexing a table
  column and querying it progressively.
* :mod:`repro.engine.shared` — the concurrent split of the session: a
  :class:`~repro.engine.shared.SharedEngine` (write gate, committed
  versions, progressive-work scheduler) serving per-client
  :class:`~repro.engine.shared.ReaderView` MVCC snapshots and one
  :class:`~repro.engine.shared.WriterHandle`.
"""

from repro.engine.batch import BatchExecutor, BatchResult, scan_many
from repro.engine.decision_tree import Recommendation, recommend_index
from repro.engine.executor import ExecutionResult, QueryRecord, WorkloadExecutor
from repro.engine.metrics import (
    BatchMetrics,
    PhaseStats,
    WorkloadMetrics,
    compute_metrics,
    compute_phase_breakdown,
    throughput,
)
from repro.engine.registry import (
    ALGORITHMS,
    ADAPTIVE_ALGORITHMS,
    BASELINE_ALGORITHMS,
    PROGRESSIVE_ALGORITHMS,
    create_index,
    create_sharded_index,
)
from repro.engine.session import IndexingSession
from repro.engine.shared import (
    ReaderView,
    SharedEngine,
    WriterHandle,
    version_correction,
    version_correction_many,
)

__all__ = [
    "ADAPTIVE_ALGORITHMS",
    "ALGORITHMS",
    "BASELINE_ALGORITHMS",
    "BatchExecutor",
    "BatchMetrics",
    "BatchResult",
    "ExecutionResult",
    "IndexingSession",
    "PROGRESSIVE_ALGORITHMS",
    "PhaseStats",
    "QueryRecord",
    "ReaderView",
    "Recommendation",
    "SharedEngine",
    "WorkloadExecutor",
    "WriterHandle",
    "WorkloadMetrics",
    "compute_metrics",
    "compute_phase_breakdown",
    "create_index",
    "create_sharded_index",
    "recommend_index",
    "scan_many",
    "throughput",
    "version_correction",
    "version_correction_many",
]
