"""The algorithm-selection decision tree of Figure 11.

The paper concludes with a decision tree recommending which progressive
indexing technique to use for a given scenario, distilled from the
experimental evaluation:

* Workloads dominated by **point queries** benefit most from Progressive
  Radixsort (LSD), whose intermediate index accelerates point lookups from
  the very first queries (Table 4, point-query block).
* For **range queries on skewed data**, Progressive Bucketsort's equi-height
  partitions keep the pieces balanced and give the best cumulative times
  (Table 4, skewed block).
* For **range queries on roughly uniform (or unknown but integer) data**,
  Progressive Radixsort (MSD) converges fastest and has the best cumulative
  time (Table 4, uniform block).
* When the extra memory for bucket blocks is not available, Progressive
  Quicksort is the safe default: it allocates only the index array and is
  the least sensitive to the delta parameter (Figure 7a).

The paper's original tree also routed *floating-point* columns to
Progressive Quicksort because naive radix clustering truncates fractional
parts.  With the order-preserving key codecs of :mod:`repro.core.keys`
(IEEE-754 monotone bit-pattern keys), ``float64`` columns radix-cluster
exactly, so the data type no longer forces Quicksort — only genuine memory
pressure does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Type

from repro.core.index import BaseIndex
from repro.progressive.bucketsort import ProgressiveBucketsort
from repro.progressive.quicksort import ProgressiveQuicksort
from repro.progressive.radixsort_lsd import ProgressiveRadixsortLSD
from repro.progressive.radixsort_msd import ProgressiveRadixsortMSD


@dataclass(frozen=True)
class Recommendation:
    """The outcome of walking the decision tree."""

    index_class: Type[BaseIndex]
    acronym: str
    reason: str

    def create(self, column, budget=None, constants=None, **kwargs) -> BaseIndex:
        """Instantiate the recommended index for ``column``."""
        return self.index_class(column, budget=budget, constants=constants, **kwargs)


def recommend_index(
    point_query_workload: bool = False,
    skewed_data: bool = False,
    memory_constrained: bool = False,
    integer_domain: bool = True,
) -> Recommendation:
    """Walk the Figure 11 decision tree.

    Parameters
    ----------
    point_query_workload:
        Whether the workload consists (mostly) of point queries.
    skewed_data:
        Whether the data distribution is known to be heavily skewed.
    memory_constrained:
        Whether the extra memory for bucket block lists is unavailable
        (the bucket-based algorithms temporarily hold the data twice).
        This is the only scenario that still routes to Progressive
        Quicksort for range workloads.
    integer_domain:
        Whether the column has an integer domain.  Kept for API
        compatibility; since the order-preserving key codecs, float columns
        radix-cluster exactly, so a non-integer domain no longer changes
        the recommendation.

    Returns
    -------
    Recommendation
        The recommended progressive indexing technique and the reasoning.
    """
    if point_query_workload:
        return Recommendation(
            ProgressiveRadixsortLSD,
            "PLSD",
            "Point-query workloads are accelerated by the LSD intermediate "
            "index from the first queries onwards.",
        )
    if memory_constrained:
        return Recommendation(
            ProgressiveQuicksort,
            "PQ",
            "Progressive Quicksort only allocates the index array itself "
            "(the bucket-based algorithms temporarily hold the data twice), "
            "making it the safe default under memory pressure.",
        )
    if skewed_data:
        return Recommendation(
            ProgressiveBucketsort,
            "PB",
            "Equi-height buckets stay balanced under data skew, giving the "
            "best cumulative times on skewed distributions.",
        )
    return Recommendation(
        ProgressiveRadixsortMSD,
        "PMSD",
        "Radix clustering on the most significant bits converges fastest and "
        "has the best cumulative time on (roughly) uniform data; the "
        "order-preserving key codecs make this exact for float columns too.",
    )
